//! Bounded soak test: 64 simulated tenants hammer a threaded service
//! with a fixed-seed request trace. Run by `scripts/ci.sh` via
//! `cargo test -q -p annolight-serve --release -- soak`.
//!
//! The assertions are conservation laws, valid under any thread
//! interleaving: every accepted request completes, every rejection is
//! counted, and `hits + misses == completed`.

use annolight_core::track::AnnotationMode;
use annolight_core::QualityLevel;
use annolight_display::DeviceProfile;
use annolight_serve::workload::{generate_trace, ScenarioKind, SyntheticCorpus, WorkloadConfig};
use annolight_serve::{
    AnnotationRequest, AnnotationService, ServeError, Service, ServiceConfig, Ticket,
};
use annolight_video::clip::{Clip, ClipSpec, SceneSpec};
use annolight_video::content::ContentKind;
use std::collections::HashMap;

const TENANTS: u64 = 64;
const REQUESTS: usize = 600;
const SEED: u64 = 0xA550_11FE_DCBA_0042;

fn soak_clip(name: &str, seed: u64) -> Clip {
    Clip::new(ClipSpec {
        name: name.to_owned(),
        width: 48,
        height: 32,
        fps: 12.0,
        seed,
        scenes: vec![
            SceneSpec::new(
                ContentKind::Dark { base: 40, spread: 12, highlight_fraction: 0.01, highlight: 240 },
                1.0,
            ),
            SceneSpec::new(ContentKind::Bright { base: 190, spread: 25 }, 1.0),
        ],
    })
    .unwrap()
}

struct Lcg(u64);
impl Lcg {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

#[test]
fn soak_64_tenants_fixed_seed() {
    let svc = AnnotationService::new(ServiceConfig {
        workers: 4,
        cache_shards: 8,
        cache_bytes: 1 << 22,
        tenant_queue_depth: 4,
        ..ServiceConfig::default()
    });
    let clips = ["soak-a", "soak-b", "soak-c", "soak-d"];
    for (i, name) in clips.iter().enumerate() {
        svc.register_clip(soak_clip(name, 100 + i as u64));
    }
    let devices =
        [DeviceProfile::ipaq_5555(), DeviceProfile::ipaq_3650(), DeviceProfile::zaurus_sl5600()];
    let qualities = [QualityLevel::Q5, QualityLevel::Q10, QualityLevel::Q15, QualityLevel::Q20];

    let mut rng = Lcg(SEED);
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..REQUESTS {
        let req = AnnotationRequest {
            tenant: format!("tenant-{:02}", rng.next(TENANTS)),
            clip: clips[rng.next(4) as usize].to_owned(),
            device: devices[rng.next(3) as usize].clone(),
            quality: qualities[rng.next(4) as usize],
            mode: if rng.next(4) == 0 { AnnotationMode::PerFrame } else { AnnotationMode::PerScene },
            policy: annolight_core::PolicyKind::PeakClip,
        };
        match svc.submit(req) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(other) => panic!("soak trace must only see Overloaded, got {other}"),
        }
    }
    svc.run_until_idle();
    let accepted = tickets.len() as u64;
    for t in tickets {
        let resp = t.wait().expect("every accepted request completes");
        assert!(resp.track.frame_count() > 0);
    }
    let report = svc.report();
    assert_eq!(accepted + rejected, REQUESTS as u64, "every request accounted for");
    assert_eq!(report.completed, accepted, "every accepted request completed");
    assert_eq!(report.hits + report.misses, report.completed, "hit/miss conservation");
    assert_eq!(report.overloaded, rejected);
    assert_eq!(report.queue_depth, 0, "nothing left queued after drain");
    // 96 distinct keys exist (4 clips x 3 devices x 4 qualities x 2
    // modes); concurrent dispatches of the same cold key may each miss,
    // so allow modest overshoot but not unbounded recomputation.
    assert!(report.misses >= 1, "a fresh cache must miss");
    assert!(report.misses <= 96 * 4, "misses explode past the keyspace: {}", report.misses);
    assert_eq!(report.profile_count, report.misses, "every miss times exactly one profile");
    assert!(
        report.clip_profiles <= clips.len() as u64,
        "single-flight memo must profile each clip at most once, got {}",
        report.clip_profiles
    );
    assert!(report.resident_entries > 0);
    // The report must serialise and round-trip even at soak scale.
    let back =
        annolight_serve::CountersReport::from_json_string(&report.to_json_string()).unwrap();
    assert_eq!(back, report);
}

/// A small churned workload trace (arriving/departing tenants, skewed
/// per-tenant demand) shared by the churn soaks below.
fn churned_config() -> WorkloadConfig {
    let mut cfg = WorkloadConfig::scenario_small(ScenarioKind::FlashCrowd, SEED);
    cfg.corpus_clips = 96;
    cfg.ticks = 12;
    cfg.base_rate = 30.0;
    cfg
}

/// Threaded churn soak: tenants that arrive mid-run are served, tenants
/// that depart never strand work, and the conservation laws of the
/// fixed-fleet soak keep holding under churn.
#[test]
fn churned_soak_conserves_under_threads() {
    let cfg = churned_config();
    let trace = generate_trace(&cfg);
    // Churn must be visible in the trace: at least one request comes
    // from a tenant that arrived after the initial fleet formed.
    assert!(
        trace.requests.iter().any(|r| r.tenant >= cfg.churn.initial as u64),
        "trace must include requests from arriving tenants"
    );

    let svc = AnnotationService::new(ServiceConfig {
        workers: 4,
        cache_shards: 8,
        cache_bytes: 1 << 22,
        tenant_queue_depth: 4,
        ..ServiceConfig::default()
    });
    let corpus = SyntheticCorpus::new(cfg.corpus_clips);
    corpus.register_all(&svc);
    let devices = DeviceProfile::paper_devices();

    let mut tickets: Vec<Ticket> = Vec::new();
    let mut rejected = 0u64;
    let mut accepted_per_tenant: HashMap<u64, u64> = HashMap::new();
    for req in &trace.requests {
        let r = AnnotationRequest {
            tenant: req.tenant_name(),
            clip: corpus.name(req.clip_rank),
            device: devices[req.device].clone(),
            quality: req.quality,
            mode: if req.per_frame { AnnotationMode::PerFrame } else { AnnotationMode::PerScene },
            policy: annolight_core::PolicyKind::PeakClip,
        };
        match svc.submit(r) {
            Ok(t) => {
                *accepted_per_tenant.entry(req.tenant).or_default() += 1;
                tickets.push(t);
            }
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(other) => panic!("churn soak must only see Overloaded, got {other}"),
        }
    }
    svc.run_until_idle();
    let accepted = tickets.len() as u64;
    for t in tickets {
        t.wait().expect("every accepted request completes, churned or not");
    }
    let report = svc.report();
    assert_eq!(accepted + rejected, trace.requests.len() as u64);
    assert_eq!(report.completed, accepted);
    assert_eq!(report.hits + report.misses, report.completed, "hit/miss conservation");
    assert_eq!(report.overloaded, rejected);
    assert_eq!(report.queue_depth, 0, "departed tenants must not strand queued work");
    // Fairness under churn: late arrivals (ids past the initial fleet)
    // are genuinely served, not starved by the incumbent hot tenants.
    let late_served = accepted_per_tenant
        .iter()
        .filter(|(&id, &n)| id >= cfg.churn.initial as u64 && n > 0)
        .count();
    assert!(late_served > 0, "no arriving tenant ever got a request through");
}

/// No counter drift: replaying the *same request multiset* without its
/// churn structure (tenants collapsed onto a fixed fleet, one request
/// drained at a time so queues never overflow) must land on identical
/// hit/miss/profile totals — tenant identity and churn may shift *who*
/// waits, never *what* is computed.
#[test]
fn churned_counters_match_churn_free_replay_of_same_multiset() {
    let cfg = churned_config();
    let trace = generate_trace(&cfg);
    let devices = DeviceProfile::paper_devices();
    let corpus = SyntheticCorpus::new(cfg.corpus_clips);

    let run = |tenant_of: &dyn Fn(usize, u64) -> String| {
        let svc = AnnotationService::new(ServiceConfig {
            workers: 0, // inline: totals are replay-exact
            tenant_queue_depth: usize::MAX >> 1,
            ..ServiceConfig::default()
        });
        corpus.register_all(&svc);
        for (i, req) in trace.requests.iter().enumerate() {
            svc.call(AnnotationRequest {
                tenant: tenant_of(i, req.tenant),
                clip: corpus.name(req.clip_rank),
                device: devices[req.device].clone(),
                quality: req.quality,
                mode: if req.per_frame {
                    AnnotationMode::PerFrame
                } else {
                    AnnotationMode::PerScene
                },
                policy: annolight_core::PolicyKind::PeakClip,
            })
            .expect("unbounded-queue replay never rejects");
        }
        let r = svc.report();
        (r.hits, r.misses, r.completed, r.profile_count, r.clip_profiles)
    };

    let churned = run(&|_, tenant| format!("t{tenant:04}"));
    let churn_free = run(&|i, _| format!("static-{:02}", i % 64));
    assert_eq!(
        churned, churn_free,
        "collapsing churned tenants onto a fixed fleet drifted the counters"
    );
}
