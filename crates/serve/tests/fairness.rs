//! Fairness acceptance tests: a flooding tenant only ever hurts itself.
//! Its overflow is rejected with [`ServeError::Overloaded`], while a
//! trickling tenant is admitted and served every time.

use annolight_core::track::AnnotationMode;
use annolight_core::QualityLevel;
use annolight_display::DeviceProfile;
use annolight_serve::{
    AnnotationRequest, AnnotationService, ServeError, Service, ServiceConfig, Ticket,
};
use annolight_video::clip::{Clip, ClipSpec, SceneSpec};
use annolight_video::content::ContentKind;

fn test_clip(name: &str, seed: u64) -> Clip {
    Clip::new(ClipSpec {
        name: name.to_owned(),
        width: 48,
        height: 32,
        fps: 12.0,
        seed,
        scenes: vec![
            SceneSpec::new(
                ContentKind::Dark { base: 40, spread: 10, highlight_fraction: 0.01, highlight: 240 },
                1.0,
            ),
            SceneSpec::new(ContentKind::Bright { base: 200, spread: 20 }, 1.0),
        ],
    })
    .unwrap()
}

/// A request made unique (uncacheable) by a custom quality fraction, so
/// every admitted job really occupies the pool.
fn unique_request(tenant: &str, clip: &str, n: u32) -> AnnotationRequest {
    AnnotationRequest {
        tenant: tenant.to_owned(),
        clip: clip.to_owned(),
        device: DeviceProfile::ipaq_5555(),
        quality: QualityLevel::Custom(0.01 + f64::from(n % 400) * 0.002),
        mode: AnnotationMode::PerScene,
        policy: annolight_core::PolicyKind::PeakClip,
    }
}

#[test]
fn flooding_tenant_rejections_never_touch_trickler() {
    let svc = AnnotationService::new(ServiceConfig {
        workers: 2,
        cache_shards: 4,
        cache_bytes: 1 << 22,
        tenant_queue_depth: 4,
        ..ServiceConfig::default()
    });
    svc.register_clip(test_clip("flood-clip", 77));
    svc.register_clip(test_clip("trickle-clip", 88));

    let mut flood_tickets: Vec<Ticket> = Vec::new();
    let mut flood_rejected = 0u32;
    let mut trickle_served = 0u32;
    let mut n = 0u32;
    // Ten trickle rounds; between each, the flooder slams 20 requests.
    for round in 0..10 {
        for _ in 0..20 {
            n += 1;
            match svc.submit(unique_request("flooder", "flood-clip", n)) {
                Ok(t) => flood_tickets.push(t),
                Err(ServeError::Overloaded { tenant }) => {
                    assert_eq!(tenant, "flooder", "only the flooder may be rejected");
                    flood_rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        // The trickler asks once per round and must always be admitted:
        // its own queue is empty.
        let ticket = svc
            .submit(unique_request("trickler", "trickle-clip", 1000 + round))
            .unwrap_or_else(|e| panic!("trickler rejected in round {round}: {e}"));
        ticket.wait().expect("trickler request completes");
        trickle_served += 1;
    }
    svc.run_until_idle();
    for t in flood_tickets {
        t.wait().expect("admitted flood requests still complete");
    }
    assert_eq!(trickle_served, 10, "trickler served every round");
    let report = svc.report();
    assert_eq!(report.overloaded, u64::from(flood_rejected));
    assert_eq!(report.queue_depth, 0, "everything drains");
}

#[test]
fn queue_bound_overflow_is_exact_in_deterministic_mode() {
    // With an inline pool nothing drains between submits, so admission
    // arithmetic is exact: depth 4 admits 4 of 20, rejects 16 — every
    // round, bit-for-bit.
    let svc = AnnotationService::new(ServiceConfig {
        workers: 0,
        cache_shards: 4,
        cache_bytes: 1 << 22,
        tenant_queue_depth: 4,
        ..ServiceConfig::default()
    });
    svc.register_clip(test_clip("flood-clip", 77));
    svc.register_clip(test_clip("trickle-clip", 88));
    let mut n = 0u32;
    for round in 0..3u32 {
        let mut admitted = Vec::new();
        let mut rejected = 0u32;
        for _ in 0..20 {
            n += 1;
            match svc.submit(unique_request("flooder", "flood-clip", n)) {
                Ok(t) => admitted.push(t),
                Err(ServeError::Overloaded { tenant }) => {
                    assert_eq!(tenant, "flooder");
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert_eq!((admitted.len(), rejected), (4, 16), "round {round}");
        // The flooder's full queue does not block the trickler.
        let t = svc.submit(unique_request("trickler", "trickle-clip", 500 + round)).unwrap();
        svc.run_until_idle();
        t.wait().unwrap();
        for a in admitted {
            a.wait().unwrap();
        }
    }
    assert_eq!(svc.report().overloaded, 48);
}

#[test]
fn retrying_flooder_cannot_starve_trickler() {
    // Regression: the blessed Overloaded response is to retry through
    // `call_with_retry` (RetryPolicy::service). A flooder that does so
    // must still not starve a trickling tenant — backoff only ever
    // reschedules the flooder's *own* work.
    use annolight_support::retry::RetryPolicy;
    use annolight_support::rng::SmallRng;

    let svc = AnnotationService::new(ServiceConfig {
        workers: 0,
        cache_shards: 4,
        cache_bytes: 1 << 22,
        tenant_queue_depth: 2,
        ..ServiceConfig::default()
    });
    svc.register_clip(test_clip("flood-clip", 77));
    svc.register_clip(test_clip("trickle-clip", 88));

    let mut rng = SmallRng::stream(0xFA17, 6);
    let policy = RetryPolicy::service();
    let mut n = 0u32;
    let mut flood_served = 0u32;
    let mut flood_backoff_s = 0.0f64;
    for round in 0..5u32 {
        // Fill the flooder's queue to its bound without draining, then
        // push one more through with retry: the first attempt is
        // rejected, the backoff window drains the queue, the retry lands.
        let mut held = Vec::new();
        for _ in 0..2 {
            n += 1;
            held.push(svc.submit(unique_request("flooder", "flood-clip", n)).unwrap());
        }
        n += 1;
        let (_resp, backoff) = svc
            .call_with_retry(unique_request("flooder", "flood-clip", n), &policy, &mut rng)
            .unwrap_or_else(|e| panic!("flooder retry exhausted in round {round}: {e}"));
        assert!(backoff > 0.0, "round {round}: the retry path actually fired");
        flood_backoff_s += backoff;
        for t in held {
            t.wait().unwrap_or_else(|e| panic!("queued flood job failed: {e}"));
        }
        flood_served += 3;
        // The trickler's bare call is admitted first time, no retries:
        // its queue is independent of the flooder's backlog and backoff.
        let resp = svc
            .call(unique_request("trickler", "trickle-clip", 1000 + round))
            .unwrap_or_else(|e| panic!("trickler rejected in round {round}: {e}"));
        assert!(!resp.cache_hit, "each trickle request is unique");
    }
    assert_eq!(flood_served, 15, "every flood request eventually lands");
    let report = svc.report();
    assert_eq!(report.queue_depth, 0, "everything drains");
    assert_eq!(
        report.completed,
        u64::from(flood_served) + 5,
        "all flood + trickle jobs completed"
    );
    assert_eq!(report.overloaded, 5, "exactly one rejection per round, all flooder's");
    assert!(flood_backoff_s > 0.0, "backoff time was accounted (got {flood_backoff_s})");
}

#[test]
fn round_robin_interleaves_two_queued_tenants() {
    // Deterministic pool: queue both tenants' jobs first, then drain and
    // check the service's round-robin alternated between them.
    let svc = AnnotationService::new(ServiceConfig {
        workers: 0,
        cache_shards: 2,
        cache_bytes: 1 << 22,
        tenant_queue_depth: 16,
        ..ServiceConfig::default()
    });
    svc.register_clip(test_clip("a", 1));
    let mut tickets = Vec::new();
    for i in 0..4u32 {
        tickets.push(("even", svc.submit(unique_request("even", "a", i * 2)).unwrap()));
        tickets.push(("odd", svc.submit(unique_request("odd", "a", i * 2 + 1)).unwrap()));
    }
    assert_eq!(svc.queue_depth(), 8);
    svc.run_until_idle();
    assert_eq!(svc.queue_depth(), 0);
    for (tenant, t) in tickets {
        let resp = t.wait().unwrap_or_else(|e| panic!("{tenant} job failed: {e}"));
        assert!(!resp.cache_hit, "all 8 requests are unique qualities");
    }
    assert_eq!(svc.report().misses, 8);
}
