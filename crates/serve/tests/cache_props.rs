//! Property tests for the sharded annotation cache, driven by
//! [`annolight_support::check`]: random operation tapes, deterministic
//! seeds, replayable via `ANNOLIGHT_CHECK_SEED`.

use annolight_core::track::{AnnotationEntry, AnnotationMode, AnnotationTrack};
use annolight_core::QualityLevel;
use annolight_display::BacklightLevel;
use annolight_serve::{AnnotationCache, CacheKey};
use std::sync::Arc;

/// A small but size-varied annotation track (`entries` controls the
/// resident byte cost).
fn track(frames: u32, entries: u32) -> Arc<AnnotationTrack> {
    let step = (frames / entries.max(1)).max(1);
    let entries: Vec<AnnotationEntry> = (0..entries)
        .map(|i| AnnotationEntry {
            start_frame: i * step,
            backlight: BacklightLevel((40 + i * 7 % 200) as u8),
            compensation: 1.0 + (i as f32) * 0.01,
            effective_max_luma: 200,
        })
        .take_while(|e| e.start_frame < frames)
        .collect();
    Arc::new(
        AnnotationTrack::new(
            "ipaq-5555",
            QualityLevel::Q10,
            AnnotationMode::PerScene,
            12.0,
            frames,
            entries,
        )
        .unwrap(),
    )
}

fn key(n: u64) -> CacheKey {
    CacheKey::new(
        n,
        "ipaq-5555",
        QualityLevel::Q10,
        AnnotationMode::PerScene,
        annolight_core::PolicyKind::PeakClip,
    )
}

annolight_support::check! {
    /// After touching a key (insert, or get that hits), that key is
    /// resident: eviction never drops the most-recently-hit entry, no
    /// matter how tight the byte budget or how keys land on shards.
    fn eviction_never_drops_most_recent_hit(g) {
        let shards = g.draw(1usize..=4);
        let unit = track(60, 6).resident_bytes();
        // Budgets from "smaller than one entry" up to ~6 entries/shard.
        let budget = g.draw(unit / 2..unit * 6) * shards;
        let cache = AnnotationCache::new(shards, budget);
        let universe: u64 = g.draw(2u64..=12);
        for _ in 0..g.draw(10usize..80) {
            let k = g.draw(0..universe);
            if g.any::<bool>() {
                cache.insert(key(k), track(60, g.draw(1u32..=10)));
                assert!(
                    cache.contains(&key(k)),
                    "key {k} evicted by its own insert (budget {budget}, {shards} shards)"
                );
            } else if cache.get(&key(k)).is_some() {
                assert!(
                    cache.contains(&key(k)),
                    "key {k} evicted immediately after a hit"
                );
            }
        }
    }

    /// The running byte counter always equals the recomputed sum of
    /// `resident_bytes()` over resident tracks — replacements and
    /// evictions never leak or double-count.
    fn byte_accounting_matches_recount(g) {
        let shards = g.draw(1usize..=4);
        let unit = track(60, 6).resident_bytes();
        let budget = g.draw(unit..unit * 5) * shards;
        let cache = AnnotationCache::new(shards, budget);
        for _ in 0..g.draw(10usize..60) {
            let k = g.draw(0u64..8);
            if g.any::<bool>() {
                cache.insert(key(k), track(60, g.draw(1u32..=10)));
            } else {
                let _ = cache.get(&key(k));
            }
            let stats = cache.stats();
            assert_eq!(
                stats.resident_bytes,
                cache.recount_resident_bytes(),
                "byte accounting drifted after touching key {k}"
            );
            assert!(
                stats.resident_bytes <= budget.div_ceil(shards) * shards + unit * 10,
                "resident bytes wildly over budget"
            );
        }
    }

    /// Hits + misses equals the number of lookups, and eviction count
    /// never exceeds insert count.
    fn counter_conservation(g) {
        let cache = AnnotationCache::new(2, track(60, 6).resident_bytes() * 4);
        let mut lookups = 0u64;
        let mut inserts = 0u64;
        for _ in 0..g.draw(5usize..50) {
            let k = g.draw(0u64..6);
            if g.any::<bool>() {
                cache.insert(key(k), track(60, 4));
                inserts += 1;
            } else {
                let _ = cache.get(&key(k));
                lookups += 1;
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, lookups);
        assert!(stats.evictions <= inserts);
    }
}
