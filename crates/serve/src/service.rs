//! The admission / fairness front-end: the `Service` the thin clients
//! (and the stream server/proxy tiers) actually talk to.
//!
//! The paper's architecture (Fig. 1) concentrates profiling and
//! annotation at the server or proxy so that "the only computation
//! required at the client is a multiplication and a table look-up".
//! That concentration only works if the shared tier degrades
//! gracefully: one greedy tenant must not starve the others, and an
//! overloaded service must *reject* rather than queue without bound.
//!
//! * **Bounded per-tenant queues.** Each tenant gets its own FIFO of at
//!   most [`ServiceConfig::tenant_queue_depth`] pending jobs; a tenant
//!   that floods past its bound receives [`ServeError::Overloaded`]
//!   while every other tenant's queue is untouched.
//! * **Round-robin dispatch.** Workers pull the next job by rotating
//!   over tenant queues, so a trickling tenant is served in its turn no
//!   matter how deep a flooding tenant's queue is.
//! * **Cache-first.** A request whose `(clip digest, device, quality,
//!   mode)` key is resident is answered at submission without touching
//!   the pool at all; the dispatch path double-checks the cache so that
//!   N queued requests for the same key cost one profile, not N.
//! * **Deterministic mode.** With `workers == 0` the pool runs inline
//!   ([`WorkerPool::run_until_idle`]), so identical request traces
//!   produce identical hit/miss sequences *and* identical counter
//!   reports — the property the determinism tests pin down.

use crate::cache::{AnnotationCache, CacheKey};
use crate::counters::{Counters, CountersReport};
use crate::pool::WorkerPool;
use annolight_core::track::{AnnotationMode, AnnotationTrack};
use annolight_core::{clip_digest, Annotator, LuminanceProfile, PolicyKind, QualityLevel};
use annolight_display::DeviceProfile;
use annolight_support::channel::{self, Receiver, Sender};
use annolight_support::retry::RetryPolicy;
use annolight_support::rng::SmallRng;
use annolight_support::sync::{Condvar, Mutex};
use annolight_video::clip::Clip;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Errors surfaced by the service. All variants are expected operating
/// conditions, not bugs; callers are meant to match on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The requested clip name is not in the service catalogue.
    UnknownClip(String),
    /// The tenant's queue is full; retry later (backpressure). The
    /// blessed retry schedule is
    /// [`RetryPolicy::service`](annolight_support::retry::RetryPolicy::service)
    /// — truncated exponential backoff with jitter, implemented by
    /// [`AnnotationService::call_with_retry`] — so rejected tenants
    /// spread their retries instead of stampeding in lock-step.
    Overloaded {
        /// The tenant whose queue bound was hit.
        tenant: String,
    },
    /// The pipeline failed internally (e.g. a degenerate clip).
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownClip(name) => write!(f, "unknown clip {name:?}"),
            ServeError::Overloaded { tenant } => {
                write!(f, "tenant {tenant:?} queue full; request rejected")
            }
            ServeError::Internal(msg) => write!(f, "internal service error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Tuning knobs for [`AnnotationService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the profiling pool. `0` selects deterministic
    /// inline execution (see [`WorkerPool::new`]).
    pub workers: usize,
    /// Shard count for the annotation cache.
    pub cache_shards: usize,
    /// Total cache byte budget across all shards.
    pub cache_bytes: usize,
    /// Maximum queued (not yet dispatched) jobs per tenant.
    pub tenant_queue_depth: usize,
    /// Intra-clip worker threads used *inside* one profiling/planning
    /// job ([`annolight_core::parallel::ParallelConfig`]). `0` keeps the
    /// serial reference pipeline; any value yields byte-identical
    /// annotations (the parallel pipeline's headline guarantee).
    pub intra_workers: usize,
    /// Raw-sample capacity of the cold-latency histogram's exact
    /// reservoir ([`LatencyHistogram::with_exact_samples`]). `0` (the
    /// default) keeps the lock-free bucket-only hot path; the SLO
    /// harness sets this so p50/p99/p999 are exact, not
    /// bucket-resolution.
    ///
    /// [`LatencyHistogram::with_exact_samples`]: crate::counters::LatencyHistogram::with_exact_samples
    pub latency_reservoir: usize,
}

impl Default for ServiceConfig {
    /// Deterministic defaults: inline execution, 4 shards, 8 MiB of
    /// cache, 16 queued jobs per tenant.
    fn default() -> Self {
        Self {
            workers: 0,
            cache_shards: 4,
            cache_bytes: 8 << 20,
            tenant_queue_depth: 16,
            intra_workers: 0,
            latency_reservoir: 0,
        }
    }
}

/// One annotation request, as a tenant submits it.
#[derive(Debug, Clone)]
pub struct AnnotationRequest {
    /// Fairness domain: requests from the same tenant share one queue.
    pub tenant: String,
    /// Catalogue name of the clip to annotate.
    pub clip: String,
    /// Target device profile.
    pub device: DeviceProfile,
    /// Quality level for the backlight plan.
    pub quality: QualityLevel,
    /// Per-scene or per-frame annotation.
    pub mode: AnnotationMode,
    /// Annotation-policy backend to plan with (keyed into the cache, so
    /// tracks never cross policies).
    pub policy: PolicyKind,
}

/// The service's answer: a shared annotation track plus provenance.
#[derive(Debug, Clone)]
pub struct AnnotationResponse {
    /// The (cached, shared) annotation sidecar.
    pub track: Arc<AnnotationTrack>,
    /// Whether the answer came from the cache without profiling.
    pub cache_hit: bool,
    /// Content digest of the clip the track annotates.
    pub clip_digest: u64,
}

/// Anything that can answer an [`AnnotationRequest`]. The stream
/// server/proxy tiers program against this trait so tests can swap in
/// stubs.
pub trait Service {
    /// Submits `req` and blocks until the response (or error) is ready.
    fn call(&self, req: AnnotationRequest) -> Result<AnnotationResponse, ServeError>;
}

type Reply = Result<AnnotationResponse, ServeError>;

/// A submitted request's handle: either already answered (cache hit or
/// rejection) or pending on the pool.
#[derive(Debug)]
pub enum Ticket {
    /// Answered at submission time.
    Ready(Reply),
    /// Will be answered by a pool worker; wait on the channel.
    Pending(Receiver<Reply>),
}

impl Ticket {
    /// Blocks until the response is available. In deterministic mode the
    /// caller must drain the pool first (see
    /// [`AnnotationService::run_until_idle`]); [`AnnotationService::call`]
    /// does this automatically.
    ///
    /// # Errors
    ///
    /// Propagates the service's [`ServeError`]; a disconnected worker
    /// (service dropped mid-flight) maps to [`ServeError::Internal`].
    pub fn wait(self) -> Reply {
        match self {
            Ticket::Ready(reply) => reply,
            Ticket::Pending(rx) => rx
                .recv()
                .unwrap_or_else(|_| Err(ServeError::Internal("service dropped in flight".into()))),
        }
    }

    /// Whether the ticket was answered at submission time.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        matches!(self, Ticket::Ready(_))
    }
}

/// One queued unit of profiling work.
struct PendingJob {
    key: CacheKey,
    clip: Arc<Clip>,
    digest: u64,
    device: DeviceProfile,
    quality: QualityLevel,
    mode: AnnotationMode,
    policy: PolicyKind,
    reply: Sender<Reply>,
}

/// Tenant queues + round-robin cursor. `tenants` is a Vec (not a map)
/// so dispatch order is a pure function of first-submission order —
/// deterministic, never HashMap iteration order.
#[derive(Default)]
struct SchedState {
    tenants: Vec<(String, VecDeque<PendingJob>)>,
    /// Next tenant index to serve.
    rr: usize,
    /// Jobs queued across all tenants (invariant: sum of queue lens).
    queued: usize,
}

struct CatalogueEntry {
    clip: Arc<Clip>,
    digest: u64,
}

/// State of one content digest in the profile memo.
enum ProfileSlot {
    /// Some worker is profiling this clip right now; wait on
    /// [`ProfileMemo::ready`].
    InFlight,
    /// Profile available.
    Ready(Arc<LuminanceProfile>),
}

/// Single-flight memo of luminance profiles, one per content digest.
///
/// Profiling is by far the most expensive step of a cold request (it
/// touches every pixel of every frame), and one clip is typically
/// requested for several `(device, quality, mode)` keys at once. The
/// memo guarantees each digest is profiled **exactly once** even under
/// a threaded pool: the first worker marks the slot in-flight and
/// computes outside the lock; racing workers block on the condvar
/// instead of duplicating the work.
struct ProfileMemo {
    slots: Mutex<HashMap<u64, ProfileSlot>>,
    ready: Condvar,
}

impl ProfileMemo {
    fn new() -> Self {
        Self { slots: Mutex::new(HashMap::new()), ready: Condvar::new() }
    }
}

/// The sharded, multi-tenant annotation service. Construct with
/// [`AnnotationService::new`], register clips, then [`Service::call`]
/// (or [`AnnotationService::submit`] for async use).
pub struct AnnotationService {
    catalogue: Mutex<HashMap<String, CatalogueEntry>>,
    /// Single-flight memoised luminance profiles: one per content
    /// digest, shared across every (device, quality, mode) that
    /// annotates the clip.
    profiles: ProfileMemo,
    cache: AnnotationCache,
    pool: WorkerPool,
    sched: Mutex<SchedState>,
    counters: Counters,
    tenant_queue_depth: usize,
    /// Intra-clip parallelism applied inside each profiling/planning job.
    intra: annolight_core::ParallelConfig,
}

impl fmt::Debug for AnnotationService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnnotationService")
            .field("catalogue", &self.catalogue.lock().len())
            .field("cache", &self.cache.stats())
            .field("pool", &self.pool)
            .finish_non_exhaustive()
    }
}

impl AnnotationService {
    /// Builds a service from `config`. Returned in an [`Arc`] because
    /// dispatch jobs capture a handle to the service.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Arc<Self> {
        Arc::new(Self {
            catalogue: Mutex::new(HashMap::new()),
            profiles: ProfileMemo::new(),
            cache: AnnotationCache::new(config.cache_shards.max(1), config.cache_bytes),
            pool: WorkerPool::new(config.workers),
            sched: Mutex::new(SchedState::default()),
            counters: Counters {
                profile_latency: crate::counters::LatencyHistogram::with_exact_samples(
                    config.latency_reservoir,
                ),
                ..Counters::default()
            },
            tenant_queue_depth: config.tenant_queue_depth.max(1),
            intra: annolight_core::ParallelConfig::with_workers(config.intra_workers),
        })
    }

    /// Registers `clip` under its own name, returning its content
    /// digest. Re-registering a name replaces the entry (and, because
    /// keys are content-addressed, changed bytes can never alias the old
    /// track).
    pub fn register_clip(&self, clip: Clip) -> u64 {
        let digest = clip_digest(&clip);
        self.catalogue
            .lock()
            .insert(clip.name().to_owned(), CatalogueEntry { clip: Arc::new(clip), digest });
        digest
    }

    /// Names currently in the catalogue, sorted.
    #[must_use]
    pub fn catalogue_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalogue.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// The content digest of a registered clip, if present.
    #[must_use]
    pub fn clip_digest_of(&self, name: &str) -> Option<u64> {
        self.catalogue.lock().get(name).map(|e| e.digest)
    }

    /// Whether the pool executes inline and FIFO (see [`WorkerPool`]).
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        self.pool.is_deterministic()
    }

    /// Drains all queued work inline (deterministic mode) or blocks
    /// until workers go idle (threaded mode).
    pub fn run_until_idle(&self) {
        self.pool.run_until_idle();
    }

    /// Jobs admitted but not yet dispatched, across all tenants.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.sched.lock().queued
    }

    /// Submits a request without blocking on the answer.
    ///
    /// Fast path: a resident cache entry answers immediately
    /// ([`Ticket::Ready`]). Otherwise the request is admitted to the
    /// tenant's bounded queue and a dispatch token is spawned on the
    /// pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownClip`] for names outside the catalogue;
    /// [`ServeError::Overloaded`] when the tenant's queue is full.
    pub fn submit(self: &Arc<Self>, req: AnnotationRequest) -> Result<Ticket, ServeError> {
        let (clip, digest) = {
            let cat = self.catalogue.lock();
            let entry = cat
                .get(&req.clip)
                .ok_or_else(|| ServeError::UnknownClip(req.clip.clone()))?;
            (Arc::clone(&entry.clip), entry.digest)
        };
        let key = CacheKey::new(digest, req.device.name(), req.quality, req.mode, req.policy);
        if let Some(track) = self.cache.get(&key) {
            Counters::bump(&self.counters.hits);
            Counters::bump(&self.counters.completed);
            return Ok(Ticket::Ready(Ok(AnnotationResponse {
                track,
                cache_hit: true,
                clip_digest: digest,
            })));
        }
        let (tx, rx) = channel::unbounded();
        let job = PendingJob {
            key,
            clip,
            digest,
            device: req.device,
            quality: req.quality,
            mode: req.mode,
            policy: req.policy,
            reply: tx,
        };
        {
            let mut sched = self.sched.lock();
            let queue = match sched.tenants.iter_mut().position(|(t, _)| *t == req.tenant) {
                Some(i) => &mut sched.tenants[i].1,
                None => {
                    sched.tenants.push((req.tenant.clone(), VecDeque::new()));
                    let last = sched.tenants.len() - 1;
                    &mut sched.tenants[last].1
                }
            };
            if queue.len() >= self.tenant_queue_depth {
                Counters::bump(&self.counters.overloaded);
                return Err(ServeError::Overloaded { tenant: req.tenant });
            }
            queue.push_back(job);
            sched.queued += 1;
        }
        let svc = Arc::clone(self);
        self.pool.spawn(move || svc.dispatch_one());
        Ok(Ticket::Pending(rx))
    }

    /// Pops the next job round-robin across tenant queues and runs it.
    fn dispatch_one(&self) {
        let job = {
            let mut sched = self.sched.lock();
            let n = sched.tenants.len();
            let mut picked = None;
            for off in 0..n {
                let idx = (sched.rr + off) % n;
                if let Some(job) = sched.tenants[idx].1.pop_front() {
                    // Advance past the tenant we just served so the next
                    // dispatch starts at its successor.
                    sched.rr = (idx + 1) % n;
                    sched.queued -= 1;
                    picked = Some(job);
                    break;
                }
            }
            match picked {
                Some(job) => job,
                None => return, // token outlived its job (another worker took it)
            }
        };
        // Double-check: an earlier dispatch may have populated the key
        // while this job sat queued. N queued misses for one key then
        // cost one profile, not N.
        if let Some(track) = self.cache.get(&job.key) {
            Counters::bump(&self.counters.hits);
            Counters::bump(&self.counters.completed);
            let _ = job.reply.send(Ok(AnnotationResponse {
                track,
                cache_hit: true,
                clip_digest: job.digest,
            }));
            return;
        }
        let started = Instant::now();
        let result = self.compute(&job);
        match result {
            Ok(track) => {
                self.counters.profile_latency.record(started.elapsed());
                self.cache.insert(job.key, Arc::clone(&track));
                Counters::bump(&self.counters.misses);
                Counters::bump(&self.counters.completed);
                let _ = job.reply.send(Ok(AnnotationResponse {
                    track,
                    cache_hit: false,
                    clip_digest: job.digest,
                }));
            }
            Err(err) => {
                let _ = job.reply.send(Err(err));
            }
        }
    }

    /// Cold path: memoised luminance profile, then plan + annotate.
    fn compute(&self, job: &PendingJob) -> Result<Arc<AnnotationTrack>, ServeError> {
        let profile = self.profile_of(job.digest, &job.clip)?;
        let annotated = Annotator::new(job.device.clone(), job.quality)
            .with_mode(job.mode)
            .with_policy(job.policy)
            .with_parallelism(self.intra)
            .annotate_profile(&profile)
            .map_err(|e| ServeError::Internal(e.to_string()))?;
        Ok(Arc::new(annotated.track().clone()))
    }

    /// Returns the memoised luminance profile for `digest`, computing it
    /// on first use. Single-flight: a digest is profiled at most once
    /// service-wide — racing workers wait for the in-flight computation
    /// instead of duplicating the scan (which would make a wider pool
    /// *slower* on same-clip, many-device workloads).
    fn profile_of(&self, digest: u64, clip: &Clip) -> Result<Arc<LuminanceProfile>, ServeError> {
        {
            let mut slots = self.profiles.slots.lock();
            loop {
                match slots.get(&digest) {
                    Some(ProfileSlot::Ready(p)) => return Ok(Arc::clone(p)),
                    Some(ProfileSlot::InFlight) => {
                        slots = self.profiles.ready.wait(slots);
                    }
                    None => {
                        slots.insert(digest, ProfileSlot::InFlight);
                        break;
                    }
                }
            }
        }
        // Compute outside the lock; we own the in-flight slot. The scan
        // itself is chunked over the intra-clip pool (byte-identical to
        // `LuminanceProfile::of_clip` for every worker count).
        let computed = annolight_core::parallel::profile_clip(clip, &self.intra)
            .map(Arc::new)
            .map_err(|e| ServeError::Internal(e.to_string()));
        let mut slots = self.profiles.slots.lock();
        match computed {
            Ok(profile) => {
                Counters::bump(&self.counters.clip_profiles);
                slots.insert(digest, ProfileSlot::Ready(Arc::clone(&profile)));
                self.profiles.ready.notify_all();
                Ok(profile)
            }
            Err(e) => {
                // Clear the marker so a later request can retry.
                slots.remove(&digest);
                self.profiles.ready.notify_all();
                Err(e)
            }
        }
    }

    /// The memoised luminance profile of a registered clip, profiling it
    /// now if no request has needed it yet. Server tiers use this for
    /// profile-derived extras (e.g. DVFS hints) without re-profiling.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownClip`] for unregistered names;
    /// [`ServeError::Internal`] if profiling fails.
    pub fn profile_for(&self, name: &str) -> Result<Arc<LuminanceProfile>, ServeError> {
        let (clip, digest) = {
            let cat = self.catalogue.lock();
            let entry = cat.get(name).ok_or_else(|| ServeError::UnknownClip(name.to_owned()))?;
            (Arc::clone(&entry.clip), entry.digest)
        };
        self.profile_of(digest, &clip)
    }

    /// Synchronous, catalogue-free entry for proxy tiers that already
    /// hold a [`LuminanceProfile`] (e.g. computed from a transcoded
    /// stream). Hits the same cache under the same content-addressed
    /// keys and feeds the same counters.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] if annotation fails.
    pub fn annotate_profile(
        &self,
        content_digest: u64,
        profile: &LuminanceProfile,
        device: &DeviceProfile,
        quality: QualityLevel,
        mode: AnnotationMode,
        policy: PolicyKind,
    ) -> Result<AnnotationResponse, ServeError> {
        let key = CacheKey::new(content_digest, device.name(), quality, mode, policy);
        if let Some(track) = self.cache.get(&key) {
            Counters::bump(&self.counters.hits);
            Counters::bump(&self.counters.completed);
            return Ok(AnnotationResponse { track, cache_hit: true, clip_digest: content_digest });
        }
        let started = Instant::now();
        let annotated = Annotator::new(device.clone(), quality)
            .with_mode(mode)
            .with_policy(policy)
            .with_parallelism(self.intra)
            .annotate_profile(profile)
            .map_err(|e| ServeError::Internal(e.to_string()))?;
        self.counters.profile_latency.record(started.elapsed());
        let track = Arc::new(annotated.track().clone());
        self.cache.insert(key, Arc::clone(&track));
        Counters::bump(&self.counters.misses);
        Counters::bump(&self.counters.completed);
        Ok(AnnotationResponse { track, cache_hit: false, clip_digest: content_digest })
    }

    /// The cold-latency histogram, for harnesses that need exact
    /// quantiles ([`LatencyHistogram::quantile_us`]) beyond what
    /// [`CountersReport`] carries. Exact mode requires
    /// [`ServiceConfig::latency_reservoir`] `> 0`.
    ///
    /// [`LatencyHistogram::quantile_us`]: crate::counters::LatencyHistogram::quantile_us
    #[must_use]
    pub fn profile_latency(&self) -> &crate::counters::LatencyHistogram {
        &self.counters.profile_latency
    }

    /// A point-in-time counters report (serialisable via
    /// [`CountersReport::to_json_string`]).
    #[must_use]
    pub fn report(&self) -> CountersReport {
        let cache = self.cache.stats();
        let (uppers, counts) = self.counters.profile_latency.snapshot();
        CountersReport {
            hits: Counters::read(&self.counters.hits),
            misses: Counters::read(&self.counters.misses),
            overloaded: Counters::read(&self.counters.overloaded),
            completed: Counters::read(&self.counters.completed),
            queue_depth: self.queue_depth(),
            evictions: cache.evictions,
            resident_entries: cache.resident,
            resident_bytes: cache.resident_bytes,
            profile_count: self.counters.profile_latency.count(),
            clip_profiles: Counters::read(&self.counters.clip_profiles),
            profile_latency_mean_us: self.counters.profile_latency.mean_us(),
            profile_latency_max_us: self.counters.profile_latency.max_us(),
            latency_bucket_upper_us: uppers,
            latency_bucket_counts: counts,
        }
    }

    /// [`Service::call`] with the blessed backpressure response: on
    /// [`ServeError::Overloaded`], back off per `policy` (normally
    /// [`RetryPolicy::service`](annolight_support::retry::RetryPolicy::service)
    /// — truncated exponential with jitter) and try again, giving the
    /// service a chance to drain between attempts.
    ///
    /// Backoff time is *accounted*, not slept: the simulated elapsed
    /// time feeds `policy.next_delay_s`, so deterministic tests replay
    /// the exact schedule without wall-clock sleeps. In deterministic
    /// mode each retry drains the inline pool first, mirroring what a
    /// real deployment's workers would do during the backoff window.
    ///
    /// Returns the accumulated simulated backoff alongside the
    /// response so callers (e.g. the energy accounting in
    /// `annolight-stream`) can charge the waiting time.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] once the policy's retry budget is
    /// exhausted; any non-backpressure error is returned immediately
    /// without retrying.
    pub fn call_with_retry(
        self: &Arc<Self>,
        req: AnnotationRequest,
        policy: &RetryPolicy,
        rng: &mut SmallRng,
    ) -> Result<(AnnotationResponse, f64), ServeError> {
        let mut elapsed = 0.0f64;
        let mut attempt = 0u32;
        loop {
            match self.call(req.clone()) {
                Err(ServeError::Overloaded { tenant }) => {
                    let Some(delay) = policy.next_delay_s(attempt, elapsed, rng) else {
                        return Err(ServeError::Overloaded { tenant });
                    };
                    elapsed += delay;
                    attempt += 1;
                    // A real deployment's workers drain queues during the
                    // backoff window; in deterministic mode we do that
                    // draining explicitly so the retry can succeed.
                    self.run_until_idle();
                }
                Err(other) => return Err(other),
                Ok(resp) => return Ok((resp, elapsed)),
            }
        }
    }
}

impl Service for Arc<AnnotationService> {
    fn call(&self, req: AnnotationRequest) -> Result<AnnotationResponse, ServeError> {
        let ticket = self.submit(req)?;
        if self.is_deterministic() && !ticket.is_ready() {
            self.pool.run_until_idle();
        }
        ticket.wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_video::clip::{ClipSpec, SceneSpec};
    use annolight_video::content::ContentKind;

    fn test_clip(name: &str, seed: u64) -> Clip {
        Clip::new(ClipSpec {
            name: name.to_owned(),
            width: 48,
            height: 32,
            fps: 12.0,
            seed,
            scenes: vec![
                SceneSpec::new(
                    ContentKind::Dark {
                        base: 40,
                        spread: 10,
                        highlight_fraction: 0.01,
                        highlight: 240,
                    },
                    1.0,
                ),
                SceneSpec::new(ContentKind::Bright { base: 200, spread: 20 }, 1.0),
            ],
        })
        .unwrap()
    }

    fn request(tenant: &str, clip: &str) -> AnnotationRequest {
        AnnotationRequest {
            tenant: tenant.to_owned(),
            clip: clip.to_owned(),
            device: DeviceProfile::ipaq_5555(),
            quality: QualityLevel::Q10,
            mode: AnnotationMode::PerScene,
            policy: PolicyKind::PeakClip,
        }
    }

    #[test]
    fn unknown_clip_is_typed_error() {
        let svc = AnnotationService::new(ServiceConfig::default());
        let err = svc.call(request("t0", "nope")).unwrap_err();
        assert_eq!(err, ServeError::UnknownClip("nope".into()));
    }

    #[test]
    fn miss_then_hit_shares_one_track() {
        let svc = AnnotationService::new(ServiceConfig::default());
        svc.register_clip(test_clip("a", 7));
        let first = svc.call(request("t0", "a")).unwrap();
        assert!(!first.cache_hit);
        let second = svc.call(request("t1", "a")).unwrap();
        assert!(second.cache_hit);
        assert!(Arc::ptr_eq(&first.track, &second.track), "hit shares the cached Arc");
        let report = svc.report();
        assert_eq!((report.hits, report.misses, report.completed), (1, 1, 2));
        assert_eq!(report.profile_count, 1);
    }

    #[test]
    fn distinct_devices_do_not_share() {
        let svc = AnnotationService::new(ServiceConfig::default());
        svc.register_clip(test_clip("a", 7));
        let mut req = request("t0", "a");
        let first = svc.call(req.clone()).unwrap();
        req.device = DeviceProfile::zaurus_sl5600();
        let second = svc.call(req).unwrap();
        assert!(!second.cache_hit);
        assert_ne!(first.track.device_name(), second.track.device_name());
    }

    #[test]
    fn distinct_policies_do_not_share() {
        // Same bytes, device, quality and mode — only the policy differs.
        // Each backend must miss and then hit its own entry, and the HEBS
        // track must actually differ from the peak-clip one (dimmer
        // levels on dark content), proving the key really separates them.
        let svc = AnnotationService::new(ServiceConfig::default());
        svc.register_clip(test_clip("a", 7));
        let mut tracks = Vec::new();
        for p in PolicyKind::ALL {
            let mut req = request("t0", "a");
            req.policy = p;
            let cold = svc.call(req.clone()).unwrap();
            assert!(!cold.cache_hit, "{p:?} first call must miss");
            let warm = svc.call(req).unwrap();
            assert!(warm.cache_hit, "{p:?} second call must hit");
            assert!(Arc::ptr_eq(&cold.track, &warm.track));
            tracks.push(cold.track);
        }
        // One shared pixel scan across all three policies' cold plans.
        assert_eq!(svc.report().clip_profiles, 1);
        let (peak, hebs) = (&tracks[0], &tracks[1]);
        assert!(
            peak.entries().iter().zip(hebs.entries()).any(|(a, b)| a.backlight != b.backlight),
            "hebs must dim at least one entry below peak-clip"
        );
    }

    #[test]
    fn tenant_queue_bound_rejects_flooder_only() {
        let svc = AnnotationService::new(ServiceConfig {
            tenant_queue_depth: 2,
            ..ServiceConfig::default()
        });
        svc.register_clip(test_clip("a", 7));
        // Flood tenant f with distinct uncacheable requests (different
        // qualities) without draining the pool.
        let mut tickets = Vec::new();
        let mut rejected = 0;
        for i in 0..5 {
            let mut req = request("flood", "a");
            req.quality = QualityLevel::Custom(0.01 + f64::from(i) * 0.02);
            match svc.submit(req) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Overloaded { tenant }) => {
                    assert_eq!(tenant, "flood");
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert_eq!(rejected, 3, "queue depth 2 admits 2 of 5");
        // The trickling tenant is still admitted.
        let trickle = svc.submit(request("trickle", "a")).expect("trickler admitted");
        tickets.push(trickle);
        svc.run_until_idle();
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(svc.report().overloaded, 3);
    }

    #[test]
    fn call_with_retry_backs_off_then_succeeds() {
        let svc = AnnotationService::new(ServiceConfig {
            tenant_queue_depth: 2,
            ..ServiceConfig::default()
        });
        svc.register_clip(test_clip("a", 7));
        // Fill the tenant's queue without draining the inline pool.
        let mut tickets = Vec::new();
        for i in 0..2 {
            let mut req = request("flood", "a");
            req.quality = QualityLevel::Custom(0.01 + f64::from(i) * 0.02);
            tickets.push(svc.submit(req).unwrap());
        }
        // A bare call is rejected outright…
        let err = svc.call(request("flood", "a")).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { tenant: "flood".into() });
        // …while call_with_retry backs off, lets the pool drain, and lands.
        let mut rng = SmallRng::seed_from_u64(9);
        let (resp, backoff_s) = svc
            .call_with_retry(request("flood", "a"), &RetryPolicy::service(), &mut rng)
            .expect("retry succeeds after the queue drains");
        assert!(backoff_s > 0.0, "at least one backoff interval was charged");
        assert_eq!(resp.track.device_name(), DeviceProfile::ipaq_5555().name());
        for t in tickets {
            t.wait().unwrap();
        }
    }

    #[test]
    fn call_with_retry_exhausts_cleanly_and_skips_non_backpressure_errors() {
        let svc = AnnotationService::new(ServiceConfig::default());
        let mut rng = SmallRng::seed_from_u64(9);
        // Non-backpressure errors are returned immediately, never retried.
        let err = svc
            .call_with_retry(request("t0", "nope"), &RetryPolicy::service(), &mut rng)
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownClip("nope".into()));
        // A zero-retry policy surfaces Overloaded after one attempt.
        let svc = AnnotationService::new(ServiceConfig {
            tenant_queue_depth: 1,
            ..ServiceConfig::default()
        });
        svc.register_clip(test_clip("a", 7));
        let _held = svc.submit(request("flood", "a")).unwrap();
        let none = RetryPolicy { max_retries: 0, ..RetryPolicy::service() };
        let err = svc
            .call_with_retry(request("flood", "a"), &none, &mut rng)
            .unwrap_err();
        assert_eq!(err, ServeError::Overloaded { tenant: "flood".into() });
    }

    #[test]
    fn queued_duplicates_cost_one_profile() {
        let svc = AnnotationService::new(ServiceConfig::default());
        svc.register_clip(test_clip("a", 7));
        let t1 = svc.submit(request("t0", "a")).unwrap();
        let t2 = svc.submit(request("t1", "a")).unwrap();
        svc.run_until_idle();
        let r1 = t1.wait().unwrap();
        let r2 = t2.wait().unwrap();
        assert!(!r1.cache_hit);
        assert!(r2.cache_hit, "second queued request double-checks into a hit");
        assert_eq!(svc.report().profile_count, 1);
    }

    #[test]
    fn proxy_entry_shares_cache_with_catalogue_path() {
        let svc = AnnotationService::new(ServiceConfig::default());
        let clip = test_clip("a", 7);
        let digest = svc.register_clip(clip.clone());
        let first = svc.call(request("t0", "a")).unwrap();
        let profile = LuminanceProfile::of_clip(&clip).unwrap();
        let via_proxy = svc
            .annotate_profile(
                digest,
                &profile,
                &DeviceProfile::ipaq_5555(),
                QualityLevel::Q10,
                AnnotationMode::PerScene,
                PolicyKind::PeakClip,
            )
            .unwrap();
        assert!(via_proxy.cache_hit, "proxy path hits the catalogue path's entry");
        assert!(Arc::ptr_eq(&first.track, &via_proxy.track));
    }

    #[test]
    fn same_clip_profiles_once_across_devices_even_threaded() {
        // Single-flight: three devices annotate the same clip through a
        // threaded pool, yet the clip's pixels are scanned exactly once.
        let svc = AnnotationService::new(ServiceConfig { workers: 4, ..ServiceConfig::default() });
        svc.register_clip(test_clip("shared", 7));
        let devices =
            [DeviceProfile::ipaq_5555(), DeviceProfile::ipaq_3650(), DeviceProfile::zaurus_sl5600()];
        let tickets: Vec<Ticket> = devices
            .into_iter()
            .map(|device| {
                svc.submit(AnnotationRequest {
                    tenant: device.name().to_owned(),
                    clip: "shared".into(),
                    device,
                    quality: QualityLevel::Q10,
                    mode: AnnotationMode::PerScene,
                    policy: PolicyKind::PeakClip,
                })
                .unwrap()
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let report = svc.report();
        assert_eq!(report.clip_profiles, 1, "one profile for three device keys");
        assert_eq!(report.completed, 3);
        assert_eq!(report.hits + report.misses, 3);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let svc = AnnotationService::new(ServiceConfig::default());
        svc.register_clip(test_clip("a", 7));
        svc.call(request("t0", "a")).unwrap();
        let report = svc.report();
        let back = CountersReport::from_json_string(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
    }
}
