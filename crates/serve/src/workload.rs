//! Trace-driven planetary workload model + SLO replay harness.
//!
//! The paper evaluates annotation savings one clip at a time; the
//! serving tier is judged by what happens when a *fleet* hits it. This
//! module builds that fleet synthetically, under the workspace's
//! determinism discipline (`FaultyChannel`-style: one
//! [`SmallRng::stream`] per concern, so tuning one knob never shifts
//! the draws any other concern sees):
//!
//! * [`ZipfSampler`] — clip popularity over a ~10k-clip synthetic
//!   corpus follows a Zipf law, like every real video catalogue;
//! * [`DiurnalCurve`] — request intensity over a simulated day: a
//!   raised-cosine diurnal swing plus optional [`FlashCrowd`] spikes
//!   (Hann-windowed bursts — a premiere, a viral event);
//! * tenant churn — tenants arrive and depart over the day
//!   ([`ChurnConfig`]), and per-tenant demand is itself skewed
//!   (a Zipf pick over the active set), so flash crowds concentrate on
//!   hot tenants and exercise the bounded-queue admission path;
//! * device-mix / quality-mix / mode-mix draws over the paper's device
//!   set and quality levels.
//!
//! [`generate_trace`] turns a seeded [`WorkloadConfig`] into a
//! [`WorkloadTrace`] — a flat, replayable request list with a content
//! digest. The same seed always yields the identical trace, byte for
//! byte (the digest is the CI double-run guard's handle on this).
//!
//! [`replay_trace`] then drives the trace against a deterministic
//! (inline-pool) [`AnnotationService`], one simulated tick at a time:
//! all of a tick's arrivals are submitted (filling bounded tenant
//! queues; floods are rejected with `Overloaded`), then the pool drains
//! — modelling workers that keep up between ticks. The outcome is a
//! [`ScenarioReport`]: cache hit-rate, rejection rate, and exact
//! p50/p99/p999 cold/warm latency (via
//! [`LatencyHistogram::with_exact_samples`]), judged against explicit
//! [`SloThresholds`]. Counters and the trace digest are deterministic
//! per seed; wall-clock latency quantiles are measured, not simulated,
//! and are excluded from [`ScenarioReport::deterministic_summary`] —
//! the part CI compares byte-for-byte across double runs.

use crate::counters::LatencyHistogram;
use crate::service::{
    AnnotationRequest, AnnotationService, ServeError, ServiceConfig, Ticket,
};
use annolight_core::digest::Digester;
use annolight_core::track::AnnotationMode;
use annolight_core::QualityLevel;
use annolight_display::DeviceProfile;
use annolight_support::rng::SmallRng;
use annolight_video::clip::{Clip, ClipSpec, SceneSpec};
use annolight_video::content::ContentKind;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Seed of the synthetic corpus contents (clip specs). Deliberately a
/// constant, independent of the scenario seed: every scenario and every
/// PR replays against the *same* catalogue, so `BENCH_serve.json`
/// trajectories compare like for like.
pub const CORPUS_SEED: u64 = 0x1000_C11F_5EED_2006;

/// RNG stream ids, one per workload concern (the `FaultyChannel`
/// discipline: enabling or tuning one concern never shifts another's
/// draws).
mod streams {
    pub const ARRIVALS: u64 = 1;
    pub const CLIP: u64 = 2;
    pub const DEVICE: u64 = 3;
    pub const QUALITY: u64 = 4;
    pub const MODE: u64 = 5;
    pub const CHURN: u64 = 6;
    pub const TENANT: u64 = 7;
}

// ---------------------------------------------------------------------
// Zipf popularity
// ---------------------------------------------------------------------

/// A Zipf(s) sampler over ranks `0..n` (rank 0 most popular):
/// `P(rank k) ∝ 1 / (k+1)^s`. Sampling is one uniform draw plus a
/// binary search over the precomputed CDF — O(log n), deterministic in
/// draw count.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `s ≥ 0`
    /// (`s == 0` is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `s` is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty rank set");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent {s} must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard the top against float rounding: the last entry must
        // catch every u in [0, 1).
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf, exponent: s }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the rank set is empty (never true — `new` rejects 0).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The configured exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The probability mass of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn probability(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Draws one rank. Consumes exactly one `u64` of `rng` state.
    #[must_use]
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u = rng.gen_f64();
        // First index whose CDF entry exceeds u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite")) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

// ---------------------------------------------------------------------
// Diurnal curve + flash crowds
// ---------------------------------------------------------------------

/// One flash-crowd spike: a Hann-windowed intensity burst riding on the
/// diurnal base curve. Position and width are fractions of the day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Spike onset, as a fraction of the day in `[0, 1)`.
    pub start_frac: f64,
    /// Spike width, as a fraction of the day (`> 0`).
    pub duration_frac: f64,
    /// Peak added intensity (multiples of the base rate).
    pub magnitude: f64,
}

annolight_support::impl_json!(struct FlashCrowd { start_frac, duration_frac, magnitude });

impl FlashCrowd {
    /// The spike's added intensity at day-fraction `frac` — a Hann
    /// window: 0 at the edges, `magnitude` at the spike centre. The
    /// window's mean over its support is `magnitude / 2`, so the
    /// spike's total added mass is exactly
    /// `magnitude * duration_frac / 2` (the conservation property the
    /// `check!` tier pins).
    #[must_use]
    pub fn intensity_at(&self, frac: f64) -> f64 {
        let x = (frac - self.start_frac) / self.duration_frac;
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        self.magnitude * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * x).cos())
    }

    /// Total mass the spike adds over the day (analytic).
    #[must_use]
    pub fn mass(&self) -> f64 {
        self.magnitude * self.duration_frac * 0.5
    }
}

/// Request intensity over one simulated day: a raised-cosine diurnal
/// swing around mean 1.0 plus flash-crowd spikes.
///
/// Invariants (property-tested in `workload_props`):
/// * **mass conservation** — the base curve's mean over the day is
///   exactly 1.0, so the day's total traffic is `base_rate × ticks`
///   plus the analytic spike masses, regardless of amplitude or phase;
/// * **bounds** — intensity stays within
///   `[1 - amplitude, 1 + amplitude + Σ magnitudes]` and is never
///   negative (`new` rejects `amplitude ≥ 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalCurve {
    /// Peak-to-mean swing of the diurnal cosine, in `[0, 1)`.
    pub amplitude: f64,
    /// Day-fraction at which the diurnal base peaks.
    pub peak_frac: f64,
    /// Flash-crowd spikes riding on the base curve.
    pub spikes: Vec<FlashCrowd>,
}

annolight_support::impl_json!(struct DiurnalCurve { amplitude, peak_frac, spikes });

impl DiurnalCurve {
    /// A flat curve (intensity 1.0 all day, no spikes).
    #[must_use]
    pub fn steady() -> Self {
        Self { amplitude: 0.0, peak_frac: 0.0, spikes: Vec::new() }
    }

    /// Builds a curve, validating the invariants.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is outside `[0, 1)` or any spike has a
    /// non-positive duration or negative magnitude.
    #[must_use]
    pub fn new(amplitude: f64, peak_frac: f64, spikes: Vec<FlashCrowd>) -> Self {
        assert!((0.0..1.0).contains(&amplitude), "amplitude {amplitude} outside [0, 1)");
        for s in &spikes {
            assert!(s.duration_frac > 0.0, "spike duration must be positive");
            assert!(s.magnitude >= 0.0, "spike magnitude must be non-negative");
        }
        Self { amplitude, peak_frac, spikes }
    }

    /// Intensity at day-fraction `frac ∈ [0, 1)` (multiples of the
    /// base rate).
    #[must_use]
    pub fn intensity_at(&self, frac: f64) -> f64 {
        let base = 1.0
            + self.amplitude
                * (2.0 * std::f64::consts::PI * (frac - self.peak_frac)).cos();
        base + self.spikes.iter().map(|s| s.intensity_at(frac)).sum::<f64>()
    }

    /// The analytic mean intensity over the day: `1 + Σ spike masses`.
    #[must_use]
    pub fn mean_intensity(&self) -> f64 {
        1.0 + self.spikes.iter().map(FlashCrowd::mass).sum::<f64>()
    }

    /// Upper bound on intensity anywhere in the day.
    #[must_use]
    pub fn max_intensity_bound(&self) -> f64 {
        1.0 + self.amplitude + self.spikes.iter().map(|s| s.magnitude).sum::<f64>()
    }
}

// ---------------------------------------------------------------------
// Tenant churn
// ---------------------------------------------------------------------

/// Arrival/departure process for the tenant population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Tenants active at day start.
    pub initial: usize,
    /// Expected new-tenant arrivals per tick (fractional: the fraction
    /// is a Bernoulli draw).
    pub arrivals_per_tick: f64,
    /// Per-tick probability that each active tenant departs.
    pub departure_prob: f64,
    /// Hard cap on the active population.
    pub max_active: usize,
}

annolight_support::impl_json!(struct ChurnConfig { initial, arrivals_per_tick, departure_prob, max_active });

impl ChurnConfig {
    /// No churn: a fixed population of `n` tenants.
    #[must_use]
    pub fn fixed(n: usize) -> Self {
        Self { initial: n, arrivals_per_tick: 0.0, departure_prob: 0.0, max_active: n }
    }
}

/// Live churn state during trace generation. Tenant ids are assigned
/// in arrival order, so the active set — and therefore every tenant
/// name in the trace — is a pure function of the churn stream.
#[derive(Debug)]
struct ChurnState {
    active: Vec<u64>,
    next_id: u64,
    max_active: usize,
}

impl ChurnState {
    fn new(cfg: &ChurnConfig) -> Self {
        let initial = cfg.initial.max(1);
        Self {
            active: (0..initial as u64).collect(),
            next_id: initial as u64,
            max_active: cfg.max_active.max(initial),
        }
    }

    /// One tick of arrivals and departures.
    fn step(&mut self, cfg: &ChurnConfig, rng: &mut SmallRng) {
        let mut arrivals = cfg.arrivals_per_tick.floor() as u64;
        if rng.gen_bool(cfg.arrivals_per_tick.fract()) {
            arrivals += 1;
        }
        for _ in 0..arrivals {
            if self.active.len() < self.max_active {
                self.active.push(self.next_id);
                self.next_id += 1;
            }
        }
        if cfg.departure_prob > 0.0 {
            // Deterministic: one draw per active tenant, in order.
            let p = cfg.departure_prob;
            let mut survivors = Vec::with_capacity(self.active.len());
            for &t in &self.active {
                if !rng.gen_bool(p) {
                    survivors.push(t);
                }
            }
            if survivors.is_empty() {
                // Never let the fleet die out entirely.
                survivors.push(self.next_id);
                self.next_id += 1;
            }
            self.active = survivors;
        }
    }
}

// ---------------------------------------------------------------------
// Scenario configuration
// ---------------------------------------------------------------------

/// The three canonical fleet scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Flat intensity, fixed tenant population.
    Steady,
    /// Raised-cosine day/night swing with moderate churn.
    Diurnal,
    /// Diurnal base plus two flash-crowd spikes concentrated on hot
    /// tenants (the admission-control stress case).
    FlashCrowd,
}

annolight_support::impl_json!(enum ScenarioKind { Steady, Diurnal, FlashCrowd });

impl ScenarioKind {
    /// All scenarios, in canonical report order.
    pub const ALL: [ScenarioKind; 3] =
        [ScenarioKind::Steady, ScenarioKind::Diurnal, ScenarioKind::FlashCrowd];

    /// Stable lowercase name used in reports and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Steady => "steady",
            ScenarioKind::Diurnal => "diurnal",
            ScenarioKind::FlashCrowd => "flash_crowd",
        }
    }
}

/// Everything that determines a workload trace. Two equal configs
/// always generate byte-identical traces.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Which canonical scenario shape to generate.
    pub scenario: ScenarioKind,
    /// Master seed; every concern derives its own stream from it.
    pub seed: u64,
    /// Clips in the synthetic corpus (ranks of the Zipf law).
    pub corpus_clips: usize,
    /// Zipf exponent of clip popularity (≈1.0–1.3 for real catalogues).
    pub zipf_exponent: f64,
    /// Ticks in the simulated day.
    pub ticks: u32,
    /// Mean requests per tick at intensity 1.0.
    pub base_rate: f64,
    /// Zipf exponent of per-tenant demand over the active set
    /// (0 = uniform; higher concentrates load on hot tenants).
    pub tenant_zipf_exponent: f64,
    /// Tenant arrival/departure process.
    pub churn: ChurnConfig,
    /// Relative weights of the paper's three devices
    /// ([`DeviceProfile::paper_devices`] order).
    pub device_weights: [f64; 3],
    /// Quality levels and their relative weights.
    pub quality_weights: Vec<(QualityLevel, f64)>,
    /// Fraction of requests asking for per-frame annotation.
    pub per_frame_fraction: f64,
}

impl WorkloadConfig {
    /// The canonical preset for `kind` under `seed` — the configuration
    /// the SLO tier and `BENCH_serve.json` use.
    #[must_use]
    pub fn scenario(kind: ScenarioKind, seed: u64) -> Self {
        let churn = match kind {
            ScenarioKind::Steady => ChurnConfig::fixed(64),
            ScenarioKind::Diurnal => ChurnConfig {
                initial: 48,
                arrivals_per_tick: 2.0,
                departure_prob: 0.03,
                max_active: 160,
            },
            ScenarioKind::FlashCrowd => ChurnConfig {
                initial: 48,
                arrivals_per_tick: 3.0,
                departure_prob: 0.05,
                max_active: 200,
            },
        };
        let tenant_zipf_exponent = match kind {
            ScenarioKind::Steady => 0.0,
            ScenarioKind::Diurnal => 0.8,
            ScenarioKind::FlashCrowd => 1.5,
        };
        Self {
            scenario: kind,
            seed,
            corpus_clips: 10_000,
            zipf_exponent: 1.2,
            ticks: 48,
            base_rate: 60.0,
            tenant_zipf_exponent,
            churn,
            device_weights: [0.5, 0.3, 0.2],
            quality_weights: vec![
                (QualityLevel::Q5, 0.3),
                (QualityLevel::Q10, 0.4),
                (QualityLevel::Q15, 0.2),
                (QualityLevel::Q20, 0.1),
            ],
            per_frame_fraction: 0.2,
        }
    }

    /// The same preset scaled down for the test tier: a smaller corpus
    /// and day so 3 seeds × 3 scenarios replay in seconds, with every
    /// qualitative feature (skew, churn, spikes, rejections) intact.
    #[must_use]
    pub fn scenario_small(kind: ScenarioKind, seed: u64) -> Self {
        Self {
            corpus_clips: 2_000,
            ticks: 24,
            base_rate: 40.0,
            ..Self::scenario(kind, seed)
        }
    }

    /// The intensity curve for this scenario.
    #[must_use]
    pub fn curve(&self) -> DiurnalCurve {
        match self.scenario {
            ScenarioKind::Steady => DiurnalCurve::steady(),
            ScenarioKind::Diurnal => DiurnalCurve::new(0.6, 0.58, Vec::new()),
            ScenarioKind::FlashCrowd => DiurnalCurve::new(
                0.5,
                0.58,
                vec![
                    FlashCrowd { start_frac: 0.30, duration_frac: 0.05, magnitude: 4.0 },
                    FlashCrowd { start_frac: 0.70, duration_frac: 0.08, magnitude: 2.5 },
                ],
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Synthetic corpus
// ---------------------------------------------------------------------

/// A ~10k-clip synthetic catalogue: rank `k`'s clip is a deterministic
/// function of `(corpus seed, k)` — tiny (32×16, half a second) so a
/// cold profile is cheap, but spread across the content classes so
/// profiles, plans and track sizes genuinely differ per clip.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticCorpus {
    /// Number of clips (Zipf ranks).
    pub clips: usize,
    /// Content seed (normally [`CORPUS_SEED`]).
    pub seed: u64,
}

impl SyntheticCorpus {
    /// The canonical corpus of `clips` clips.
    #[must_use]
    pub fn new(clips: usize) -> Self {
        Self { clips, seed: CORPUS_SEED }
    }

    /// Catalogue name of rank `k`.
    #[must_use]
    pub fn name(&self, rank: usize) -> String {
        format!("wl-{rank:05}")
    }

    /// The clip at rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.clips`.
    #[must_use]
    pub fn clip(&self, rank: usize) -> Clip {
        assert!(rank < self.clips, "rank {rank} outside corpus of {}", self.clips);
        let mut mix = self.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let r = annolight_support::rng::splitmix64(&mut mix);
        let b = |shift: u32, span: u64| -> u8 { ((r >> shift) % span) as u8 };
        let content = match rank % 6 {
            0 => ContentKind::Dark {
                base: 30 + b(0, 40),
                spread: 8 + b(8, 8),
                highlight_fraction: 0.005 + f64::from(b(16, 20)) * 0.001,
                highlight: 220 + b(24, 30),
            },
            1 => ContentKind::Bright { base: 170 + b(0, 60), spread: 12 + b(8, 16) },
            2 => ContentKind::Mid {
                base: 90 + b(0, 60),
                spread: 15 + b(8, 20),
                highlight_fraction: 0.01 + f64::from(b(16, 30)) * 0.001,
            },
            3 => ContentKind::GradientPan {
                lo: 20 + b(0, 40),
                hi: 180 + b(8, 60),
                speed: 1 + u32::from(b(16, 3)),
            },
            4 => ContentKind::Credits {
                text: 200 + b(0, 50),
                background: 5 + b(8, 20),
                density: 0.02 + f64::from(b(16, 30)) * 0.002,
            },
            _ => ContentKind::Fade { from: 10 + b(0, 60), to: 150 + b(8, 100) },
        };
        Clip::new(ClipSpec {
            name: self.name(rank),
            width: 32,
            height: 16,
            fps: 8.0,
            seed: r,
            scenes: vec![SceneSpec::new(content, 0.5)],
        })
        .expect("synthetic corpus specs are valid by construction")
    }

    /// Registers every clip with `svc`.
    pub fn register_all(&self, svc: &AnnotationService) {
        for rank in 0..self.clips {
            svc.register_clip(self.clip(rank));
        }
    }
}

// ---------------------------------------------------------------------
// Trace generation
// ---------------------------------------------------------------------

/// One request of a generated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRequest {
    /// Simulated tick the request arrives in.
    pub tick: u32,
    /// Tenant id (arrival-ordered; the request uses `t{id:04}`).
    pub tenant: u64,
    /// Zipf rank of the requested clip.
    pub clip_rank: usize,
    /// Index into [`DeviceProfile::paper_devices`].
    pub device: usize,
    /// Requested quality level.
    pub quality: QualityLevel,
    /// `true` for per-frame annotation, else per-scene.
    pub per_frame: bool,
}

impl TraceRequest {
    /// The tenant's wire name.
    #[must_use]
    pub fn tenant_name(&self) -> String {
        format!("t{:04}", self.tenant)
    }
}

/// A generated, replayable request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    /// The requests, in arrival order.
    pub requests: Vec<TraceRequest>,
    /// Distinct tenants that issued at least one request.
    pub tenants: u64,
    /// Distinct clip ranks requested.
    pub distinct_clips: u64,
    /// FNV-1a digest over every request tuple — the determinism
    /// handle: same config ⇒ same digest, byte for byte.
    pub digest: u64,
}

/// Quality level → stable digest byte (Custom folds in its bits).
fn quality_code(q: QualityLevel) -> u64 {
    match q {
        QualityLevel::Q0 => 0,
        QualityLevel::Q5 => 1,
        QualityLevel::Q10 => 2,
        QualityLevel::Q15 => 3,
        QualityLevel::Q20 => 4,
        QualityLevel::Custom(f) => 5u64 ^ f.to_bits(),
        // QualityLevel is #[non_exhaustive]; unknown future levels
        // digest by their clipping fraction.
        other => 6u64 ^ other.clip_fraction().to_bits(),
    }
}

/// Generates the full request trace for `cfg`. Pure: equal configs
/// yield equal traces.
#[must_use]
pub fn generate_trace(cfg: &WorkloadConfig) -> WorkloadTrace {
    let curve = cfg.curve();
    let zipf = ZipfSampler::new(cfg.corpus_clips, cfg.zipf_exponent);
    let mut arrivals_rng = SmallRng::stream(cfg.seed, streams::ARRIVALS);
    let mut clip_rng = SmallRng::stream(cfg.seed, streams::CLIP);
    let mut device_rng = SmallRng::stream(cfg.seed, streams::DEVICE);
    let mut quality_rng = SmallRng::stream(cfg.seed, streams::QUALITY);
    let mut mode_rng = SmallRng::stream(cfg.seed, streams::MODE);
    let mut churn_rng = SmallRng::stream(cfg.seed, streams::CHURN);
    let mut tenant_rng = SmallRng::stream(cfg.seed, streams::TENANT);

    let device_cdf = cumulative(&cfg.device_weights);
    let quality_w: Vec<f64> = cfg.quality_weights.iter().map(|&(_, w)| w).collect();
    let quality_cdf = cumulative(&quality_w);

    let mut churn = ChurnState::new(&cfg.churn);
    // Tenant-pick Zipf samplers are rebuilt when the active population
    // size changes (cheap: O(active) once per tick at most).
    let mut tenant_zipf = ZipfSampler::new(churn.active.len(), cfg.tenant_zipf_exponent);

    let mut requests = Vec::new();
    let mut tenants_seen = HashSet::new();
    let mut clips_seen = HashSet::new();
    let mut digester = Digester::new();
    digester.write_u64(cfg.seed).write_u64(cfg.corpus_clips as u64);

    for tick in 0..cfg.ticks {
        churn.step(&cfg.churn, &mut churn_rng);
        if tenant_zipf.len() != churn.active.len() {
            tenant_zipf = ZipfSampler::new(churn.active.len(), cfg.tenant_zipf_exponent);
        }
        let frac = (f64::from(tick) + 0.5) / f64::from(cfg.ticks);
        let expected = cfg.base_rate * curve.intensity_at(frac);
        let mut n = expected.floor() as u64;
        if arrivals_rng.gen_bool(expected.fract()) {
            n += 1;
        }
        for _ in 0..n {
            let tenant = churn.active[tenant_zipf.sample(&mut tenant_rng)];
            let clip_rank = zipf.sample(&mut clip_rng);
            let device = pick(&device_cdf, &mut device_rng);
            let quality = cfg.quality_weights[pick(&quality_cdf, &mut quality_rng)].0;
            let per_frame = mode_rng.gen_bool(cfg.per_frame_fraction);
            tenants_seen.insert(tenant);
            clips_seen.insert(clip_rank);
            digester
                .write_u32(tick)
                .write_u64(tenant)
                .write_u64(clip_rank as u64)
                .write_u64(device as u64)
                .write_u64(quality_code(quality))
                .write(&[u8::from(per_frame)]);
            requests.push(TraceRequest { tick, tenant, clip_rank, device, quality, per_frame });
        }
    }
    WorkloadTrace {
        requests,
        tenants: tenants_seen.len() as u64,
        distinct_clips: clips_seen.len() as u64,
        digest: digester.finish(),
    }
}

fn cumulative(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "mix weights must sum to a positive value");
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect();
    *cdf.last_mut().expect("non-empty mix") = 1.0;
    cdf
}

fn pick(cdf: &[f64], rng: &mut SmallRng) -> usize {
    let u = rng.gen_f64();
    match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite")) {
        Ok(i) | Err(i) => i.min(cdf.len() - 1),
    }
}

// ---------------------------------------------------------------------
// Replay + SLO harness
// ---------------------------------------------------------------------

/// Service-side knobs of a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Bounded per-tenant queue depth (small enough that flash crowds
    /// genuinely overflow it).
    pub tenant_queue_depth: usize,
    /// Annotation-cache byte budget.
    pub cache_bytes: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Exact-sample reservoir capacity for latency quantiles.
    pub latency_reservoir: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            tenant_queue_depth: 8,
            cache_bytes: 4 << 20,
            cache_shards: 4,
            latency_reservoir: 4096,
        }
    }
}

/// Explicit service-level objectives a scenario is judged against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloThresholds {
    /// Minimum acceptable cache hit rate over completed requests.
    pub min_hit_rate: f64,
    /// Maximum acceptable admission-rejection rate over all requests.
    pub max_reject_rate: f64,
    /// Cold (profile + annotate) latency ceilings, µs.
    pub max_cold_p50_us: u64,
    /// p99 ceiling for cold latency, µs.
    pub max_cold_p99_us: u64,
    /// p999 ceiling for cold latency, µs.
    pub max_cold_p999_us: u64,
    /// p99 ceiling for warm (cache-hit-at-submit) latency, µs.
    pub max_warm_p99_us: u64,
}

annolight_support::impl_json!(struct SloThresholds {
    min_hit_rate, max_reject_rate, max_cold_p50_us, max_cold_p99_us,
    max_cold_p999_us, max_warm_p99_us
});

impl SloThresholds {
    /// The checked-in objectives for `kind`. Latency ceilings are
    /// deliberately loose (CI machines are noisy); rate objectives are
    /// the real regression tripwires.
    #[must_use]
    pub fn for_scenario(kind: ScenarioKind) -> Self {
        let (min_hit_rate, max_reject_rate) = match kind {
            ScenarioKind::Steady => (0.25, 0.02),
            ScenarioKind::Diurnal => (0.25, 0.10),
            ScenarioKind::FlashCrowd => (0.25, 0.35),
        };
        Self {
            min_hit_rate,
            max_reject_rate,
            max_cold_p50_us: 50_000,
            max_cold_p99_us: 200_000,
            max_cold_p999_us: 500_000,
            max_warm_p99_us: 10_000,
        }
    }

    /// Judges `report`, returning every violated objective.
    #[must_use]
    pub fn violations(&self, report: &ScenarioReport) -> Vec<String> {
        let mut v = Vec::new();
        let mut check = |ok: bool, msg: String| {
            if !ok {
                v.push(msg);
            }
        };
        check(
            report.hit_rate >= self.min_hit_rate,
            format!("hit_rate {:.4} < {:.4}", report.hit_rate, self.min_hit_rate),
        );
        check(
            report.reject_rate <= self.max_reject_rate,
            format!("reject_rate {:.4} > {:.4}", report.reject_rate, self.max_reject_rate),
        );
        check(
            report.cold_p50_us <= self.max_cold_p50_us,
            format!("cold p50 {} µs > {} µs", report.cold_p50_us, self.max_cold_p50_us),
        );
        check(
            report.cold_p99_us <= self.max_cold_p99_us,
            format!("cold p99 {} µs > {} µs", report.cold_p99_us, self.max_cold_p99_us),
        );
        check(
            report.cold_p999_us <= self.max_cold_p999_us,
            format!("cold p999 {} µs > {} µs", report.cold_p999_us, self.max_cold_p999_us),
        );
        check(
            report.warm_p99_us <= self.max_warm_p99_us,
            format!("warm p99 {} µs > {} µs", report.warm_p99_us, self.max_warm_p99_us),
        );
        v
    }
}

/// The outcome of replaying one scenario: deterministic counters plus
/// measured latency quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name ([`ScenarioKind::name`]).
    pub scenario: String,
    /// Master seed of the trace.
    pub seed: u64,
    /// Requests in the trace.
    pub requests: u64,
    /// Requests admitted (completed).
    pub accepted: u64,
    /// Requests rejected `Overloaded` at admission.
    pub rejected: u64,
    /// Distinct tenants that issued requests.
    pub tenants: u64,
    /// Distinct clips requested.
    pub distinct_clips: u64,
    /// Cache hits (at-submit + dispatch double-check).
    pub hits: u64,
    /// Cold computes.
    pub misses: u64,
    /// Luminance profiles computed (single-flight: ≤ distinct clips).
    pub clip_profiles: u64,
    /// Cache evictions during the replay.
    pub evictions: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
    /// `rejected / requests`.
    pub reject_rate: f64,
    /// Trace content digest (determinism handle).
    pub trace_digest: u64,
    /// Exact cold-latency quantiles, µs (wall-clock; excluded from the
    /// deterministic summary).
    pub cold_p50_us: u64,
    /// Cold p99, µs.
    pub cold_p99_us: u64,
    /// Cold p999, µs.
    pub cold_p999_us: u64,
    /// Mean cold latency, µs.
    pub cold_mean_us: f64,
    /// Warm (hit-at-submit) p50, µs.
    pub warm_p50_us: u64,
    /// Warm p99, µs.
    pub warm_p99_us: u64,
    /// Warm p999, µs.
    pub warm_p999_us: u64,
    /// Whether every SLO held.
    pub slo_pass: bool,
}

annolight_support::impl_json!(struct ScenarioReport {
    scenario, seed, requests, accepted, rejected, tenants, distinct_clips,
    hits, misses, clip_profiles, evictions, hit_rate, reject_rate,
    trace_digest, cold_p50_us, cold_p99_us, cold_p999_us, cold_mean_us,
    warm_p50_us, warm_p99_us, warm_p999_us, slo_pass
});

/// The deterministic projection of a [`ScenarioReport`]: everything a
/// same-seed double run must reproduce byte for byte (no wall-clock
/// fields). CI serialises this and `cmp`s across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicSummary {
    /// Scenario name.
    pub scenario: String,
    /// Master seed.
    pub seed: u64,
    /// Trace content digest.
    pub trace_digest: u64,
    /// Requests in the trace.
    pub requests: u64,
    /// Requests admitted.
    pub accepted: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Distinct tenants.
    pub tenants: u64,
    /// Distinct clips requested.
    pub distinct_clips: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cold computes.
    pub misses: u64,
    /// Profiles computed.
    pub clip_profiles: u64,
    /// Cache evictions.
    pub evictions: u64,
}

annolight_support::impl_json!(struct DeterministicSummary {
    scenario, seed, trace_digest, requests, accepted, rejected, tenants,
    distinct_clips, hits, misses, clip_profiles, evictions
});

impl ScenarioReport {
    /// The deterministic (wall-clock-free) projection of this report.
    #[must_use]
    pub fn deterministic_summary(&self) -> DeterministicSummary {
        DeterministicSummary {
            scenario: self.scenario.clone(),
            seed: self.seed,
            trace_digest: self.trace_digest,
            requests: self.requests,
            accepted: self.accepted,
            rejected: self.rejected,
            tenants: self.tenants,
            distinct_clips: self.distinct_clips,
            hits: self.hits,
            misses: self.misses,
            clip_profiles: self.clip_profiles,
            evictions: self.evictions,
        }
    }
}

/// Replays `trace` against a fresh deterministic service over the
/// corpus `cfg` describes, tick by tick: a tick's arrivals are all
/// submitted (bounded queues reject floods), then the inline pool
/// drains — the worker fleet catching up between ticks.
///
/// Counters in the returned report are a pure function of the trace;
/// latency quantiles are measured wall-clock.
///
/// # Panics
///
/// Panics if the service returns an error other than `Overloaded`
/// (the corpus registers every clip, so `UnknownClip` is a bug).
#[must_use]
pub fn replay_trace(
    cfg: &WorkloadConfig,
    replay: &ReplayConfig,
    trace: &WorkloadTrace,
) -> ScenarioReport {
    let corpus = SyntheticCorpus::new(cfg.corpus_clips);
    let svc = AnnotationService::new(ServiceConfig {
        workers: 0, // inline: counters are replay-exact
        cache_shards: replay.cache_shards,
        cache_bytes: replay.cache_bytes,
        tenant_queue_depth: replay.tenant_queue_depth,
        intra_workers: 0,
        latency_reservoir: replay.latency_reservoir,
    });
    corpus.register_all(&svc);
    let devices = DeviceProfile::paper_devices();
    let warm = LatencyHistogram::with_exact_samples(replay.latency_reservoir);

    let mut rejected = 0u64;
    let mut pending: Vec<Ticket> = Vec::new();
    let mut tick_cursor = 0u32;
    let drain = |pending: &mut Vec<Ticket>, svc: &Arc<AnnotationService>| {
        svc.run_until_idle();
        for t in pending.drain(..) {
            t.wait().expect("admitted requests complete");
        }
    };
    for req in &trace.requests {
        if req.tick != tick_cursor {
            drain(&mut pending, &svc);
            tick_cursor = req.tick;
        }
        let request = AnnotationRequest {
            tenant: req.tenant_name(),
            clip: corpus.name(req.clip_rank),
            device: devices[req.device].clone(),
            quality: req.quality,
            mode: if req.per_frame { AnnotationMode::PerFrame } else { AnnotationMode::PerScene },
            policy: annolight_core::PolicyKind::PeakClip,
        };
        let started = Instant::now();
        match svc.submit(request) {
            Ok(Ticket::Ready(reply)) => {
                warm.record(started.elapsed());
                reply.expect("ready tickets are cache hits");
            }
            Ok(ticket) => pending.push(ticket),
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(other) => panic!("workload replay hit a non-backpressure error: {other}"),
        }
    }
    drain(&mut pending, &svc);

    let counters = svc.report();
    assert_eq!(counters.overloaded, rejected, "harness and service agree on rejections");
    let requests = trace.requests.len() as u64;
    let cold = svc.profile_latency();
    let mut report = ScenarioReport {
        scenario: cfg.scenario.name().to_owned(),
        seed: cfg.seed,
        requests,
        accepted: requests - rejected,
        rejected,
        tenants: trace.tenants,
        distinct_clips: trace.distinct_clips,
        hits: counters.hits,
        misses: counters.misses,
        clip_profiles: counters.clip_profiles,
        evictions: counters.evictions,
        hit_rate: counters.hit_rate(),
        reject_rate: if requests == 0 { 0.0 } else { rejected as f64 / requests as f64 },
        trace_digest: trace.digest,
        cold_p50_us: cold.quantile_us(0.5),
        cold_p99_us: cold.quantile_us(0.99),
        cold_p999_us: cold.quantile_us(0.999),
        cold_mean_us: cold.mean_us(),
        warm_p50_us: warm.quantile_us(0.5),
        warm_p99_us: warm.quantile_us(0.99),
        warm_p999_us: warm.quantile_us(0.999),
        slo_pass: false,
    };
    report.slo_pass = SloThresholds::for_scenario(cfg.scenario).violations(&report).is_empty();
    report
}

/// Generates and replays `cfg` in one call.
#[must_use]
pub fn run_scenario(cfg: &WorkloadConfig, replay: &ReplayConfig) -> ScenarioReport {
    replay_trace(cfg, replay, &generate_trace(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_probabilities_are_normalised_and_monotone() {
        let z = ZipfSampler::new(100, 1.1);
        let total: f64 = (0..100).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for k in 1..100 {
            assert!(
                z.probability(k) <= z.probability(k - 1),
                "rank {k} more popular than rank {}",
                k - 1
            );
        }
        // Uniform degenerate case.
        let u = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((u.probability(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_is_deterministic_and_in_range() {
        let z = ZipfSampler::new(1000, 1.2);
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..500).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(7);
        assert_eq!(a, draw(7));
        assert!(a.iter().all(|&r| r < 1000));
        // Rank 0 dominates any individual deep rank.
        let top = a.iter().filter(|&&r| r == 0).count();
        assert!(top >= 10, "rank 0 drew only {top}/500 at s=1.2");
    }

    #[test]
    fn curve_mean_matches_analytic_mass() {
        let curve = WorkloadConfig::scenario(ScenarioKind::FlashCrowd, 1).curve();
        let n = 100_000;
        let mean = (0..n)
            .map(|i| curve.intensity_at((i as f64 + 0.5) / n as f64))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - curve.mean_intensity()).abs() < 1e-3,
            "numeric mean {mean} vs analytic {}",
            curve.mean_intensity()
        );
        for i in 0..n {
            let v = curve.intensity_at((i as f64 + 0.5) / n as f64);
            assert!(v >= 0.0 && v <= curve.max_intensity_bound() + 1e-9);
        }
    }

    #[test]
    fn trace_generation_is_seed_deterministic() {
        let cfg = WorkloadConfig::scenario_small(ScenarioKind::FlashCrowd, 42);
        let a = generate_trace(&cfg);
        let b = generate_trace(&cfg);
        assert_eq!(a, b, "same config must yield the identical trace");
        let other = generate_trace(&WorkloadConfig::scenario_small(ScenarioKind::FlashCrowd, 43));
        assert_ne!(a.digest, other.digest, "different seeds must diverge");
        assert!(!a.requests.is_empty());
        assert!(a.tenants > 1);
    }

    #[test]
    fn tuning_one_stream_leaves_others_unshifted() {
        // The FaultyChannel discipline: changing the mode mix must not
        // change which clips/tenants/devices any request draws.
        let base = WorkloadConfig::scenario_small(ScenarioKind::Diurnal, 9);
        let mut tweaked = base.clone();
        tweaked.per_frame_fraction = 0.9;
        let a = generate_trace(&base);
        let b = generate_trace(&tweaked);
        assert_eq!(a.requests.len(), b.requests.len());
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(
                (x.tick, x.tenant, x.clip_rank, x.device, x.quality),
                (y.tick, y.tenant, y.clip_rank, y.device, y.quality),
                "mode tuning shifted an unrelated draw"
            );
        }
    }

    #[test]
    fn corpus_is_deterministic_and_distinct() {
        let corpus = SyntheticCorpus::new(64);
        for rank in [0usize, 1, 5, 63] {
            assert_eq!(
                corpus.clip(rank).to_json_spec(),
                corpus.clip(rank).to_json_spec(),
                "rank {rank} must regenerate identically"
            );
        }
        assert_ne!(corpus.clip(0).to_json_spec(), corpus.clip(6).to_json_spec());
    }

    #[test]
    fn tiny_replay_is_counter_deterministic() {
        let mut cfg = WorkloadConfig::scenario_small(ScenarioKind::Steady, 5);
        cfg.corpus_clips = 64;
        cfg.ticks = 6;
        cfg.base_rate = 20.0;
        let replay = ReplayConfig::default();
        let a = run_scenario(&cfg, &replay);
        let b = run_scenario(&cfg, &replay);
        assert_eq!(
            a.deterministic_summary(),
            b.deterministic_summary(),
            "same seed must replay identical counters"
        );
        assert_eq!(a.hits + a.misses, a.accepted, "hit/miss conservation");
        assert!(a.clip_profiles <= a.distinct_clips);
        assert!(a.cold_p50_us <= a.cold_p99_us && a.cold_p99_us <= a.cold_p999_us);
    }
}
