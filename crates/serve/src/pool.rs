//! A work-stealing worker pool for server-side profiling jobs.
//!
//! The paper pushes all profiling/annotation work to the server or proxy
//! tier (Fig. 1) precisely so it can be amortised across many thin
//! clients; this pool is that tier's execution engine. Design:
//!
//! * **Per-worker deques.** Submitted jobs are distributed round-robin
//!   over per-worker deques; a worker pops from the *front* of its own
//!   deque (FIFO for fairness of admission order) and, when empty,
//!   steals from the *back* of a sibling's deque — the classic
//!   Arora/Blumofe/Plaxton shape, built entirely on the in-tree
//!   [`annolight_support::sync`] primitives (hermetic: no registry
//!   dependencies).
//! * **Deterministic single-thread mode.** A pool created with
//!   `threads == 0` spawns nothing; jobs queue in submission order and
//!   [`WorkerPool::run_until_idle`] executes them inline, FIFO. Two
//!   identical request traces then execute in identical order — the
//!   mode every determinism test in this crate uses.
//! * **Graceful drain.** Dropping the pool (or calling
//!   [`WorkerPool::shutdown`]) lets workers finish every queued job
//!   before exiting; no job is ever silently discarded.

use annolight_support::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters describing pool activity (monotonic since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs fully executed.
    pub executed: u64,
    /// Jobs a worker took from a sibling's deque rather than its own.
    pub stolen: u64,
    /// Jobs currently queued (not yet started).
    pub queued: usize,
    /// Jobs currently executing.
    pub active: usize,
}

#[derive(Debug, Default)]
struct State {
    /// Jobs pushed but not yet popped, across all deques.
    queued: usize,
    /// Jobs currently executing on some worker.
    active: usize,
    /// Monotonic count of completed jobs.
    executed: u64,
    /// Monotonic count of cross-deque steals.
    stolen: u64,
    /// Set once; workers drain remaining work, then exit.
    shutdown: bool,
}

struct Shared {
    /// One deque per worker (exactly one in deterministic mode).
    deques: Vec<Mutex<VecDeque<Job>>>,
    state: Mutex<State>,
    /// Workers park here when every deque is empty.
    work: Condvar,
    /// `wait_idle` callers park here.
    idle: Condvar,
}

impl Shared {
    /// Pops `worker`'s own deque front, else steals the back of the
    /// nearest non-empty sibling. Returns the job and whether it was
    /// stolen.
    fn take(&self, worker: usize) -> Option<(Job, bool)> {
        if let Some(job) = self.deques[worker].lock().pop_front() {
            return Some((job, false));
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            if let Some(job) = self.deques[victim].lock().pop_back() {
                return Some((job, true));
            }
        }
        None
    }
}

/// The work-stealing pool. See the module docs for the design.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Round-robin cursor for distributing submissions over deques.
    next: AtomicUsize,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` workers. `threads == 0` selects the
    /// deterministic single-thread mode: one deque, no OS threads, jobs
    /// run inline via [`WorkerPool::run_until_idle`].
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let deques = (0..threads.max(1)).map(|_| Mutex::new(VecDeque::new())).collect();
        let shared = Arc::new(Shared {
            deques,
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("annolight-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("worker thread spawns")
            })
            .collect();
        Self { shared, handles, next: AtomicUsize::new(0), threads }
    }

    /// Number of OS worker threads (0 in deterministic mode).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool runs jobs inline and in deterministic FIFO order.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        self.threads == 0
    }

    /// Submits a job, distributing round-robin over worker deques.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.deques.len();
        self.spawn_pinned(slot, job);
    }

    /// Submits a job onto a specific worker's deque (siblings may still
    /// steal it). Useful for tests and for callers with placement hints.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn spawn_pinned(&self, worker: usize, job: impl FnOnce() + Send + 'static) {
        assert!(worker < self.shared.deques.len(), "worker {worker} out of range");
        // Count first, then publish: a worker that observes `queued > 0`
        // may scan before the push lands and simply re-scan, whereas the
        // reverse order could underflow the count.
        self.shared.state.lock().queued += 1;
        self.shared.deques[worker].lock().push_back(Box::new(job));
        self.shared.work.notify_one();
    }

    /// Runs queued jobs inline, FIFO, until none remain (including jobs
    /// spawned by the jobs themselves). This is the execution step of
    /// deterministic mode; on a threaded pool it is equivalent to
    /// [`WorkerPool::wait_idle`].
    pub fn run_until_idle(&self) {
        if self.threads > 0 {
            self.wait_idle();
            return;
        }
        loop {
            let Some(job) = self.shared.deques[0].lock().pop_front() else { break };
            {
                let mut st = self.shared.state.lock();
                st.queued -= 1;
                st.active += 1;
            }
            job();
            let mut st = self.shared.state.lock();
            st.active -= 1;
            st.executed += 1;
        }
    }

    /// Blocks until no job is queued or executing. In deterministic mode
    /// this drains the queue inline first.
    pub fn wait_idle(&self) {
        if self.threads == 0 {
            self.run_until_idle();
            return;
        }
        let guard = self.shared.state.lock();
        let _guard = self.shared.idle.wait_while(guard, |st| st.queued > 0 || st.active > 0);
    }

    /// Current pool counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let st = self.shared.state.lock();
        PoolStats { executed: st.executed, stolen: st.stolen, queued: st.queued, active: st.active }
    }

    /// Drains all queued work, then stops and joins every worker.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.threads == 0 {
            self.run_until_idle();
            return;
        }
        self.shared.state.lock().shutdown = true;
        self.shared.work.notify_all();
        let me = thread::current().id();
        for h in self.handles.drain(..) {
            if h.thread().id() == me {
                // A worker can run this drop itself when a job closure
                // held the last owner of the pool (e.g. the service Arc a
                // dispatch captured). Joining the current thread would
                // EDEADLK; detach it instead — it has already finished
                // its job and will observe `shutdown` and exit.
                drop(h);
            } else {
                let _ = h.join();
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        match shared.take(worker) {
            Some((job, stolen)) => {
                {
                    let mut st = shared.state.lock();
                    st.queued -= 1;
                    st.active += 1;
                    if stolen {
                        st.stolen += 1;
                    }
                }
                job();
                let mut st = shared.state.lock();
                st.active -= 1;
                st.executed += 1;
                if st.queued == 0 && st.active == 0 {
                    shared.idle.notify_all();
                }
            }
            None => {
                let mut st = shared.state.lock();
                // Re-check under the lock: a push may have raced our scan.
                if st.queued > 0 {
                    continue;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st);
                drop(st);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn threaded_pool_runs_every_job() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..200 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        let stats = pool.stats();
        assert_eq!(stats.executed, 200);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.active, 0);
    }

    #[test]
    fn pinned_imbalance_forces_steals() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        // Everything lands on worker 0's deque; with slow-ish jobs the
        // other three workers can only make progress by stealing.
        for _ in 0..64 {
            let c = Arc::clone(&counter);
            pool.spawn_pinned(0, move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert!(pool.stats().stolen > 0, "expected cross-deque steals, got {:?}", pool.stats());
    }

    #[test]
    fn deterministic_mode_is_fifo_and_inline() {
        let pool = WorkerPool::new(0);
        assert!(pool.is_deterministic());
        let order = Arc::new(StdMutex::new(Vec::new()));
        for i in 0..10 {
            let o = Arc::clone(&order);
            pool.spawn(move || o.lock().unwrap().push(i));
        }
        assert!(order.lock().unwrap().is_empty(), "nothing runs before the drain");
        pool.run_until_idle();
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
        assert_eq!(pool.stats().executed, 10);
    }

    #[test]
    fn jobs_may_spawn_jobs() {
        let pool = Arc::new(WorkerPool::new(0));
        let counter = Arc::new(AtomicU64::new(0));
        let (p2, c2) = (Arc::clone(&pool), Arc::clone(&counter));
        pool.spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
            let c3 = Arc::clone(&c2);
            p2.spawn(move || {
                c3.fetch_add(10, Ordering::Relaxed);
            });
        });
        pool.run_until_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let counter = Arc::new(AtomicU64::new(0));
        let pool = WorkerPool::new(2);
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown(); // must not discard queued jobs
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn worker_holding_last_pool_reference_shuts_down_cleanly() {
        // Regression: if a job closure owns the last Arc to the pool, the
        // worker thread itself runs the pool's Drop. Joining its own
        // handle there would EDEADLK ("Resource deadlock avoided").
        let pool = Arc::new(WorkerPool::new(2));
        let done = Arc::new(AtomicU64::new(0));
        let (p2, d2) = (Arc::clone(&pool), Arc::clone(&done));
        pool.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            d2.fetch_add(1, Ordering::Relaxed);
            drop(p2); // often the last owner by now
        });
        drop(pool);
        for _ in 0..200 {
            if done.load(Ordering::Relaxed) == 1 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("job never completed after pool handle was dropped");
    }

    #[test]
    fn wait_idle_on_fresh_pool_returns_immediately() {
        let pool = WorkerPool::new(2);
        pool.wait_idle();
        assert_eq!(pool.stats().executed, 0);
    }
}
