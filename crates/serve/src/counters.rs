//! Service observability: hit/miss/overload counters and a profiling
//! latency histogram, exportable as a JSON report via
//! [`annolight_support::json`].
//!
//! The counters are lock-free (relaxed atomics): they sit on the serve
//! hot path and must never serialise workers. Exactness still holds —
//! every increment is unconditional, so in deterministic single-thread
//! mode the report matches the observed hit/miss sequence bit-for-bit
//! (an acceptance test of this crate).

use annolight_support::rng::SmallRng;
use annolight_support::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets: bucket `i` counts samples in
/// `[2^(i-1), 2^i)` µs (bucket 0 is `< 1 µs`), and the last bucket is
/// open-ended.
pub const LATENCY_BUCKETS: usize = 22;

/// Bounded sample store behind [`LatencyHistogram`]'s exact-quantile
/// mode: the first `cap` samples are kept verbatim; past saturation the
/// store degrades to Vitter's algorithm R (uniform reservoir sampling)
/// with a seeded [`SmallRng`], so the kept set stays an unbiased —
/// and, given one record order, fully deterministic — sample of the
/// whole stream.
#[derive(Debug)]
struct Reservoir {
    cap: usize,
    /// Samples offered so far (may exceed `samples.len()`).
    seen: u64,
    samples: Vec<u64>,
    rng: SmallRng,
}

/// A log₂-bucketed latency histogram over microseconds.
///
/// Log₂ buckets are perfect for the lock-free hot path but cannot
/// report a tail quantile more precisely than "somewhere in a 2×-wide
/// bucket". Harnesses that must state p999 honestly (the SLO tier)
/// construct the histogram with [`LatencyHistogram::with_exact_samples`],
/// which additionally retains a bounded reservoir of raw samples and
/// makes [`LatencyHistogram::quantile_us`] exact while the reservoir is
/// unsaturated.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
    reservoir: Option<Mutex<Reservoir>>,
}

impl LatencyHistogram {
    /// Fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A histogram that additionally retains up to `cap` raw samples so
    /// quantiles are exact (not bucket-resolution) until the stream
    /// exceeds `cap`, after which the retained set is an unbiased
    /// seeded reservoir. `cap == 0` is the plain bucket-only mode.
    #[must_use]
    pub fn with_exact_samples(cap: usize) -> Self {
        let reservoir = (cap > 0).then(|| {
            Mutex::new(Reservoir {
                cap,
                seen: 0,
                samples: Vec::new(),
                // Fixed seed: sampling decisions are a pure function of
                // the record order, which the deterministic replay tier
                // already pins.
                rng: SmallRng::seed_from_u64(0x5A10_BEEF_0CA5_CADE),
            })
        });
        Self { reservoir, ..Self::default() }
    }

    /// Records one duration.
    pub fn record(&self, duration: std::time::Duration) {
        let us = u64::try_from(duration.as_micros()).unwrap_or(u64::MAX);
        let bucket = (64 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
        if let Some(res) = &self.reservoir {
            let mut res = res.lock();
            res.seen += 1;
            if res.samples.len() < res.cap {
                res.samples.push(us);
            } else {
                // Algorithm R: keep with probability cap/seen.
                let bound = res.seen;
                let j = res.rng.below(bound) as usize;
                if j < res.cap {
                    res.samples[j] = us;
                }
            }
        }
    }

    /// Whether this histogram retains exact samples (and if so, whether
    /// the reservoir has overflowed into sampling mode).
    #[must_use]
    pub fn exactness(&self) -> Exactness {
        match &self.reservoir {
            None => Exactness::BucketsOnly,
            Some(res) => {
                let res = res.lock();
                if res.seen <= res.cap as u64 {
                    Exactness::Exact
                } else {
                    Exactness::Sampled
                }
            }
        }
    }

    /// The quantile `q ∈ [0, 1]` of recorded latencies, microseconds.
    ///
    /// With exact samples retained this is the nearest-rank quantile of
    /// the sample set (exact for the whole stream while the reservoir is
    /// unsaturated, an unbiased estimate after). Without, it falls back
    /// to the log₂ buckets and returns the upper bound of the bucket the
    /// quantile lands in — coarse but never an under-estimate beyond
    /// the recorded maximum. Returns 0 on an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if let Some(res) = &self.reservoir {
            let res = res.lock();
            if !res.samples.is_empty() {
                let mut sorted = res.samples.clone();
                sorted.sort_unstable();
                return sorted[nearest_rank_index(q, sorted.len())];
            }
        }
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Bucket fallback: find the bucket holding the nearest-rank
        // sample and report its upper bound, clamped to the true max.
        let rank = (nearest_rank_index(q, n as usize) + 1) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                let upper = 1u64 << i;
                return upper.min(self.max_us());
            }
        }
        self.max_us()
    }

    /// The retained exact/reservoir samples, sorted ascending (`None`
    /// in bucket-only mode).
    #[must_use]
    pub fn exact_samples(&self) -> Option<Vec<u64>> {
        self.reservoir.as_ref().map(|res| {
            let mut s = res.lock().samples.clone();
            s.sort_unstable();
            s
        })
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshot of the histogram for reporting.
    #[must_use]
    pub fn snapshot(&self) -> (Vec<u64>, Vec<u64>) {
        let uppers = (0..LATENCY_BUCKETS as u32).map(|i| 1u64 << i).collect();
        let counts = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        (uppers, counts)
    }

    /// Mean latency in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Maximum recorded latency in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }
}

/// How trustworthy [`LatencyHistogram::quantile_us`] currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exactness {
    /// No sample store: quantiles come from log₂ buckets (upper bounds).
    BucketsOnly,
    /// Every recorded sample is retained: quantiles are exact.
    Exact,
    /// The reservoir saturated: quantiles are unbiased estimates over a
    /// uniform sample of the stream.
    Sampled,
}

/// Nearest-rank index into a sorted sample set of length `n ≥ 1`:
/// `max(1, ceil(q·n)) - 1`. p50 of 1..=1000 is 500, p99 is 990, p999
/// is 999 — the convention the golden-value tests pin.
fn nearest_rank_index(q: f64, n: usize) -> usize {
    let rank = (q * n as f64).ceil() as usize;
    rank.clamp(1, n) - 1
}

/// The service's live counters.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests answered from the annotation cache.
    pub hits: AtomicU64,
    /// Requests that had to compute a fresh track.
    pub misses: AtomicU64,
    /// Requests rejected with `ServeError::Overloaded`.
    pub overloaded: AtomicU64,
    /// Requests fully completed (hit or computed).
    pub completed: AtomicU64,
    /// Luminance profiles actually computed (single-flight: at most one
    /// per content digest, however many keys request the clip).
    pub clip_profiles: AtomicU64,
    /// Cold profile+annotate latency distribution.
    pub profile_latency: LatencyHistogram,
}

impl Counters {
    /// Fresh, zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Relaxed-increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    #[must_use]
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// A point-in-time, serialisable service report. Build one with
/// [`crate::AnnotationService::report`]; serialise with
/// [`CountersReport::to_json_string`].
#[derive(Debug, Clone, PartialEq)]
pub struct CountersReport {
    /// Requests answered from cache.
    pub hits: u64,
    /// Requests that computed a fresh track.
    pub misses: u64,
    /// Requests rejected at admission.
    pub overloaded: u64,
    /// Requests completed (hits + misses that finished).
    pub completed: u64,
    /// Requests sitting in tenant queues right now.
    pub queue_depth: usize,
    /// Cache evictions since construction.
    pub evictions: u64,
    /// Tracks resident in the cache.
    pub resident_entries: usize,
    /// Bytes resident in the cache.
    pub resident_bytes: usize,
    /// Cold profiles measured.
    pub profile_count: u64,
    /// Luminance profiles computed (≤ distinct clips ever requested,
    /// thanks to the single-flight memo).
    pub clip_profiles: u64,
    /// Mean cold-profile latency, µs.
    pub profile_latency_mean_us: f64,
    /// Max cold-profile latency, µs.
    pub profile_latency_max_us: u64,
    /// Upper bound (µs) of each latency bucket, ascending powers of two.
    pub latency_bucket_upper_us: Vec<u64>,
    /// Sample count per latency bucket.
    pub latency_bucket_counts: Vec<u64>,
}

annolight_support::impl_json!(struct CountersReport {
    hits, misses, overloaded, completed, queue_depth, evictions,
    resident_entries, resident_bytes, profile_count, clip_profiles,
    profile_latency_mean_us, profile_latency_max_us,
    latency_bucket_upper_us, latency_bucket_counts
});

impl CountersReport {
    /// The report as pretty-printed JSON.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        annolight_support::json::to_string_pretty(self)
    }

    /// Parses a report back from JSON (round-trip tooling).
    ///
    /// # Errors
    ///
    /// Returns the JSON error message for malformed input.
    pub fn from_json_string(json: &str) -> Result<Self, String> {
        annolight_support::json::from_str(json).map_err(|e| e.to_string())
    }

    /// Cache hit rate in `[0, 1]` (0 when nothing completed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_buckets_by_log2_microseconds() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(0)); // bucket 0
        h.record(Duration::from_micros(1)); // bucket 1: [1, 2)
        h.record(Duration::from_micros(3)); // bucket 2: [2, 4)
        h.record(Duration::from_micros(1000)); // bucket 10: [512, 1024)
        let (uppers, counts) = h.snapshot();
        assert_eq!(uppers[0], 1);
        assert_eq!(uppers[1], 2);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[10], 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_us(), 1000);
        assert!((h.mean_us() - 251.0).abs() < 1e-9);
    }

    #[test]
    fn exact_quantiles_golden_values_on_known_distributions() {
        // Uniform 1..=1000 µs, recorded in a scrambled (but fixed) order:
        // nearest-rank p50/p99/p999 are exactly 500/990/999.
        let h = LatencyHistogram::with_exact_samples(2048);
        for i in 0..1000u64 {
            let v = (i * 7919) % 1000 + 1; // 7919 coprime to 1000: a permutation
            h.record(Duration::from_micros(v));
        }
        assert_eq!(h.exactness(), Exactness::Exact);
        assert_eq!(h.quantile_us(0.5), 500);
        assert_eq!(h.quantile_us(0.99), 990);
        assert_eq!(h.quantile_us(0.999), 999);
        assert_eq!(h.quantile_us(0.0), 1);
        assert_eq!(h.quantile_us(1.0), 1000);

        // Two-point distribution: 990 fast samples at 10 µs, 10 slow at
        // 9000 µs. p50/p99 sit in the fast mass, p999 must surface the
        // slow tail — the case log₂ buckets alone get wrong.
        let h = LatencyHistogram::with_exact_samples(2048);
        for _ in 0..990 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(9000));
        }
        assert_eq!(h.quantile_us(0.5), 10);
        assert_eq!(h.quantile_us(0.99), 10);
        assert_eq!(h.quantile_us(0.999), 9000);

        // Bucket-only mode on the same two-point stream: p999 is only
        // locatable to its bucket's upper bound (clamped to the max).
        let coarse = LatencyHistogram::new();
        for _ in 0..990 {
            coarse.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            coarse.record(Duration::from_micros(9000));
        }
        assert_eq!(coarse.exactness(), Exactness::BucketsOnly);
        assert_eq!(coarse.quantile_us(0.5), 16, "bucket upper bound for 10 µs");
        assert_eq!(coarse.quantile_us(0.999), 9000, "upper bound clamps to true max");
    }

    #[test]
    fn saturated_reservoir_is_deterministic_and_bounded() {
        let run = || {
            let h = LatencyHistogram::with_exact_samples(64);
            for i in 0..10_000u64 {
                h.record(Duration::from_micros(i % 777));
            }
            (h.exactness(), h.exact_samples().unwrap())
        };
        let (ex_a, a) = run();
        let (_, b) = run();
        assert_eq!(ex_a, Exactness::Sampled);
        assert_eq!(a.len(), 64, "reservoir never exceeds its cap");
        assert_eq!(a, b, "same record order must keep the same sample set");
        // The estimate stays inside the recorded value range.
        let p99 = {
            let h = LatencyHistogram::with_exact_samples(64);
            for i in 0..10_000u64 {
                h.record(Duration::from_micros(i % 777));
            }
            h.quantile_us(0.99)
        };
        assert!(p99 <= 776);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        assert_eq!(LatencyHistogram::new().quantile_us(0.5), 0);
        assert_eq!(LatencyHistogram::with_exact_samples(8).quantile_us(0.999), 0);
    }

    #[test]
    fn histogram_clamps_huge_samples_into_last_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(3600));
        let (_, counts) = h.snapshot();
        assert_eq!(counts[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn report_json_roundtrip() {
        let report = CountersReport {
            hits: 10,
            misses: 3,
            overloaded: 2,
            completed: 13,
            queue_depth: 0,
            evictions: 1,
            resident_entries: 3,
            resident_bytes: 4096,
            profile_count: 3,
            clip_profiles: 2,
            profile_latency_mean_us: 812.5,
            profile_latency_max_us: 2000,
            latency_bucket_upper_us: vec![1, 2, 4],
            latency_bucket_counts: vec![0, 1, 2],
        };
        let json = report.to_json_string();
        let back = CountersReport::from_json_string(&json).unwrap();
        assert_eq!(back, report);
        assert!((back.hit_rate() - 10.0 / 13.0).abs() < 1e-12);
    }
}
