//! Service observability: hit/miss/overload counters and a profiling
//! latency histogram, exportable as a JSON report via
//! [`annolight_support::json`].
//!
//! The counters are lock-free (relaxed atomics): they sit on the serve
//! hot path and must never serialise workers. Exactness still holds —
//! every increment is unconditional, so in deterministic single-thread
//! mode the report matches the observed hit/miss sequence bit-for-bit
//! (an acceptance test of this crate).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets: bucket `i` counts samples in
/// `[2^(i-1), 2^i)` µs (bucket 0 is `< 1 µs`), and the last bucket is
/// open-ended.
pub const LATENCY_BUCKETS: usize = 22;

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    /// Fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&self, duration: std::time::Duration) {
        let us = u64::try_from(duration.as_micros()).unwrap_or(u64::MAX);
        let bucket = (64 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshot of the histogram for reporting.
    #[must_use]
    pub fn snapshot(&self) -> (Vec<u64>, Vec<u64>) {
        let uppers = (0..LATENCY_BUCKETS as u32).map(|i| 1u64 << i).collect();
        let counts = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        (uppers, counts)
    }

    /// Mean latency in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Maximum recorded latency in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }
}

/// The service's live counters.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests answered from the annotation cache.
    pub hits: AtomicU64,
    /// Requests that had to compute a fresh track.
    pub misses: AtomicU64,
    /// Requests rejected with `ServeError::Overloaded`.
    pub overloaded: AtomicU64,
    /// Requests fully completed (hit or computed).
    pub completed: AtomicU64,
    /// Luminance profiles actually computed (single-flight: at most one
    /// per content digest, however many keys request the clip).
    pub clip_profiles: AtomicU64,
    /// Cold profile+annotate latency distribution.
    pub profile_latency: LatencyHistogram,
}

impl Counters {
    /// Fresh, zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Relaxed-increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    #[must_use]
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// A point-in-time, serialisable service report. Build one with
/// [`crate::AnnotationService::report`]; serialise with
/// [`CountersReport::to_json_string`].
#[derive(Debug, Clone, PartialEq)]
pub struct CountersReport {
    /// Requests answered from cache.
    pub hits: u64,
    /// Requests that computed a fresh track.
    pub misses: u64,
    /// Requests rejected at admission.
    pub overloaded: u64,
    /// Requests completed (hits + misses that finished).
    pub completed: u64,
    /// Requests sitting in tenant queues right now.
    pub queue_depth: usize,
    /// Cache evictions since construction.
    pub evictions: u64,
    /// Tracks resident in the cache.
    pub resident_entries: usize,
    /// Bytes resident in the cache.
    pub resident_bytes: usize,
    /// Cold profiles measured.
    pub profile_count: u64,
    /// Luminance profiles computed (≤ distinct clips ever requested,
    /// thanks to the single-flight memo).
    pub clip_profiles: u64,
    /// Mean cold-profile latency, µs.
    pub profile_latency_mean_us: f64,
    /// Max cold-profile latency, µs.
    pub profile_latency_max_us: u64,
    /// Upper bound (µs) of each latency bucket, ascending powers of two.
    pub latency_bucket_upper_us: Vec<u64>,
    /// Sample count per latency bucket.
    pub latency_bucket_counts: Vec<u64>,
}

annolight_support::impl_json!(struct CountersReport {
    hits, misses, overloaded, completed, queue_depth, evictions,
    resident_entries, resident_bytes, profile_count, clip_profiles,
    profile_latency_mean_us, profile_latency_max_us,
    latency_bucket_upper_us, latency_bucket_counts
});

impl CountersReport {
    /// The report as pretty-printed JSON.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        annolight_support::json::to_string_pretty(self)
    }

    /// Parses a report back from JSON (round-trip tooling).
    ///
    /// # Errors
    ///
    /// Returns the JSON error message for malformed input.
    pub fn from_json_string(json: &str) -> Result<Self, String> {
        annolight_support::json::from_str(json).map_err(|e| e.to_string())
    }

    /// Cache hit rate in `[0, 1]` (0 when nothing completed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_buckets_by_log2_microseconds() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(0)); // bucket 0
        h.record(Duration::from_micros(1)); // bucket 1: [1, 2)
        h.record(Duration::from_micros(3)); // bucket 2: [2, 4)
        h.record(Duration::from_micros(1000)); // bucket 10: [512, 1024)
        let (uppers, counts) = h.snapshot();
        assert_eq!(uppers[0], 1);
        assert_eq!(uppers[1], 2);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[10], 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_us(), 1000);
        assert!((h.mean_us() - 251.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_clamps_huge_samples_into_last_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(3600));
        let (_, counts) = h.snapshot();
        assert_eq!(counts[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn report_json_roundtrip() {
        let report = CountersReport {
            hits: 10,
            misses: 3,
            overloaded: 2,
            completed: 13,
            queue_depth: 0,
            evictions: 1,
            resident_entries: 3,
            resident_bytes: 4096,
            profile_count: 3,
            clip_profiles: 2,
            profile_latency_mean_us: 812.5,
            profile_latency_max_us: 2000,
            latency_bucket_upper_us: vec![1, 2, 4],
            latency_bucket_counts: vec![0, 1, 2],
        };
        let json = report.to_json_string();
        let back = CountersReport::from_json_string(&json).unwrap();
        assert_eq!(back, report);
        assert!((back.hit_rate() - 10.0 / 13.0).abs() < 1e-12);
    }
}
