//! The content-addressed annotation cache.
//!
//! §4 of the paper: "the video clips available for streaming at the
//! servers are first profiled, processed and annotated" — i.e. the
//! expensive work happens once per *(content, device class, quality,
//! mode)* and is reused across every client that matches. This cache is
//! that reuse made explicit:
//!
//! * **Content-addressed keys.** [`CacheKey`] starts from a clip
//!   *digest* ([`annolight_core::digest::clip_digest`]), not a name: two
//!   tenants streaming the same bytes share one entry, and re-registered
//!   content can never serve a stale track.
//! * **Sharded N ways.** Each shard is an independently locked map, and
//!   a key's shard is a pure function of its hash, so concurrent workers
//!   rarely contend on the same [`Mutex`].
//! * **LRU + byte budget.** Every resident [`AnnotationTrack`] is
//!   accounted at [`AnnotationTrack::resident_bytes`]; when a shard
//!   exceeds its share of the byte budget the least-recently-*hit* entry
//!   is evicted. The most recently hit entry is never evicted (even a
//!   single over-budget entry stays: evicting the thing just asked for
//!   would guarantee thrashing).

use annolight_core::track::{AnnotationMode, AnnotationTrack};
use annolight_core::{PolicyKind, QualityLevel};
use annolight_support::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The full identity of a cached annotation track.
///
/// Quality is keyed by its clip fraction in fixed point (`⌊fraction ·
/// 10⁴⌋`, the same resolution as the RLE wire format), so `Q10` and
/// `Custom(0.10)` — identical requests — share an entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content digest of the clip (see [`annolight_core::digest`]).
    pub clip_digest: u64,
    /// Device profile name the track was computed for.
    pub device: String,
    /// Quality level in fixed point (fraction × 10⁴).
    pub quality_key: u16,
    /// Per-scene or per-frame annotation.
    pub mode: AnnotationMode,
    /// Annotation-policy backend the track was planned with. Part of the
    /// key so cached tracks never cross policies: a HEBS track and a
    /// peak-clip track for the same bytes are different artefacts.
    pub policy: PolicyKind,
}

impl CacheKey {
    /// Builds a key from request parameters.
    #[must_use]
    pub fn new(
        clip_digest: u64,
        device: &str,
        quality: QualityLevel,
        mode: AnnotationMode,
        policy: PolicyKind,
    ) -> Self {
        Self {
            clip_digest,
            device: device.to_owned(),
            quality_key: (quality.clip_fraction() * 10_000.0).round() as u16,
            mode,
            policy,
        }
    }

    /// Deterministic 64-bit hash of the key (FNV-1a; stable across runs,
    /// unlike `DefaultHasher`). Drives shard selection.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut d = annolight_core::digest::Digester::new();
        d.write_u64(self.clip_digest)
            .write(self.device.as_bytes())
            .write_u32(u32::from(self.quality_key))
            .write_u32(match self.mode {
                AnnotationMode::PerScene => 0,
                AnnotationMode::PerFrame => 1,
            })
            .write_u32(u32::from(self.policy.id()));
        d.finish()
    }
}

#[derive(Debug)]
struct Entry {
    track: Arc<AnnotationTrack>,
    /// Cost charged against the shard's byte budget.
    bytes: usize,
    /// Shard tick at the last hit (or insertion).
    last_hit: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<CacheKey, Entry>,
    /// Monotonic recency clock; bumped on every touch.
    tick: u64,
    /// Bytes currently resident in this shard.
    bytes: usize,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts least-recently-hit entries until `bytes <= budget`, never
    /// evicting the entry whose tick is the current maximum (the most
    /// recently hit one). Returns the number of evictions.
    fn evict_to(&mut self, budget: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget && self.entries.len() > 1 {
            let key = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_hit)
                .map(|(k, _)| k.clone())
                .expect("non-empty shard has a minimum");
            let entry = self.entries.remove(&key).expect("key just observed");
            self.bytes -= entry.bytes;
            evicted += 1;
        }
        evicted
    }
}

/// Aggregate cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub resident: usize,
    /// Bytes currently resident (sum of entry costs).
    pub resident_bytes: usize,
}

/// The sharded LRU cache. Cheap to share (`Arc`) across workers.
#[derive(Debug)]
pub struct AnnotationCache {
    shards: Vec<Mutex<Shard>>,
    /// Byte budget per shard (total budget / shard count, rounded up).
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl AnnotationCache {
    /// Creates a cache with `shards` independent shards and a total byte
    /// budget of `byte_budget` split evenly across them.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(shards: usize, byte_budget: usize) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: byte_budget.div_ceil(shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.digest() % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<AnnotationTrack>> {
        let mut shard = self.shard_of(key).lock();
        let tick = shard.touch();
        match shard.entries.get_mut(key) {
            Some(entry) => {
                entry.last_hit = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.track))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) an entry, charging
    /// [`AnnotationTrack::resident_bytes`] against the shard budget and
    /// evicting least-recently-hit entries as needed.
    pub fn insert(&self, key: CacheKey, track: Arc<AnnotationTrack>) {
        let bytes = track.resident_bytes();
        let mut shard = self.shard_of(&key).lock();
        let tick = shard.touch();
        if let Some(old) = shard.entries.insert(key, Entry { track, bytes, last_hit: tick }) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        let evicted = shard.evict_to(self.shard_budget);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Whether `key` is resident *without* touching recency or counters
    /// (for tests and introspection).
    #[must_use]
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.shard_of(key).lock().entries.contains_key(key)
    }

    /// Aggregate statistics across all shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut resident = 0;
        let mut resident_bytes = 0;
        for s in &self.shards {
            let s = s.lock();
            resident += s.entries.len();
            resident_bytes += s.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident,
            resident_bytes,
        }
    }

    /// Sum of `resident_bytes()` over every resident track, recomputed
    /// from the entries themselves (not the running counter). Tests
    /// compare this against [`CacheStats::resident_bytes`] to prove the
    /// accounting never drifts.
    #[must_use]
    pub fn recount_resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().entries.values().map(|e| e.track.resident_bytes()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_core::track::AnnotationEntry;
    use annolight_display::BacklightLevel;

    fn track(frames: u32, entries: u32) -> Arc<AnnotationTrack> {
        let step = (frames / entries.max(1)).max(1);
        let entries: Vec<AnnotationEntry> = (0..entries)
            .map(|i| AnnotationEntry {
                start_frame: i * step,
                backlight: BacklightLevel((40 + i * 7 % 200) as u8),
                compensation: 1.0 + (i as f32) * 0.01,
                effective_max_luma: 200,
            })
            .take_while(|e| e.start_frame < frames)
            .collect();
        Arc::new(
            AnnotationTrack::new(
                "ipaq-5555",
                QualityLevel::Q10,
                AnnotationMode::PerScene,
                12.0,
                frames,
                entries,
            )
            .unwrap(),
        )
    }

    fn key(n: u64) -> CacheKey {
        CacheKey::new(n, "ipaq-5555", QualityLevel::Q10, AnnotationMode::PerScene, PolicyKind::PeakClip)
    }

    #[test]
    fn hit_after_insert() {
        let cache = AnnotationCache::new(4, 1 << 20);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), track(100, 4));
        let got = cache.get(&key(1)).expect("resident");
        assert_eq!(got.frame_count(), 100);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.resident), (1, 1, 1));
    }

    #[test]
    fn distinct_dimensions_are_distinct_entries() {
        let cache = AnnotationCache::new(4, 1 << 20);
        let base = key(1);
        cache.insert(base.clone(), track(100, 4));
        let other_device = CacheKey::new(
            1, "zaurus-sl5600", QualityLevel::Q10, AnnotationMode::PerScene, PolicyKind::PeakClip,
        );
        let other_quality = CacheKey::new(
            1, "ipaq-5555", QualityLevel::Q20, AnnotationMode::PerScene, PolicyKind::PeakClip,
        );
        let other_mode = CacheKey::new(
            1, "ipaq-5555", QualityLevel::Q10, AnnotationMode::PerFrame, PolicyKind::PeakClip,
        );
        assert!(cache.get(&other_device).is_none());
        assert!(cache.get(&other_quality).is_none());
        assert!(cache.get(&other_mode).is_none());
        assert!(cache.get(&base).is_some());
    }

    #[test]
    fn policy_keyed_entries_never_collide() {
        // Tentpole guarantee: a cached track can never be served to a
        // request planned under a different policy backend.
        let cache = AnnotationCache::new(4, 1 << 20);
        for p in PolicyKind::ALL {
            let k = CacheKey::new(7, "ipaq-5555", QualityLevel::Q10, AnnotationMode::PerScene, p);
            assert!(cache.get(&k).is_none());
            cache.insert(k, track(100, 4));
        }
        assert_eq!(cache.stats().resident, 3, "one entry per policy");
        for p in PolicyKind::ALL {
            for q in PolicyKind::ALL {
                let kp = CacheKey::new(7, "ipaq-5555", QualityLevel::Q10, AnnotationMode::PerScene, p);
                let kq = CacheKey::new(7, "ipaq-5555", QualityLevel::Q10, AnnotationMode::PerScene, q);
                assert_eq!(kp == kq, p == q);
                assert_eq!(kp.digest() == kq.digest(), p == q, "{p:?} vs {q:?}");
            }
        }
    }

    #[test]
    fn named_and_custom_quality_share_an_entry() {
        let cache = AnnotationCache::new(2, 1 << 20);
        cache.insert(key(9), track(50, 2));
        let custom = CacheKey::new(
            9, "ipaq-5555", QualityLevel::Custom(0.10), AnnotationMode::PerScene, PolicyKind::PeakClip,
        );
        assert!(cache.get(&custom).is_some(), "Q10 and Custom(0.10) must alias");
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let one = track(100, 8);
        let unit = one.resident_bytes();
        // Budget for ~3 tracks in one shard.
        let cache = AnnotationCache::new(1, unit * 3 + unit / 2);
        for i in 0..4 {
            cache.insert(key(i), track(100, 8));
        }
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident, 3);
        assert!(!cache.contains(&key(0)), "oldest entry evicted");
        assert!(cache.contains(&key(3)), "newest entry resident");
        assert!(s.resident_bytes <= unit * 3 + unit / 2);
    }

    #[test]
    fn hit_refreshes_recency() {
        let unit = track(100, 8).resident_bytes();
        let cache = AnnotationCache::new(1, unit * 2 + unit / 2);
        cache.insert(key(0), track(100, 8));
        cache.insert(key(1), track(100, 8));
        assert!(cache.get(&key(0)).is_some()); // 0 is now most recent
        cache.insert(key(2), track(100, 8)); // must evict 1, not 0
        assert!(cache.contains(&key(0)));
        assert!(!cache.contains(&key(1)));
        assert!(cache.contains(&key(2)));
    }

    #[test]
    fn single_oversize_entry_stays_resident() {
        let cache = AnnotationCache::new(1, 8); // absurdly small budget
        cache.insert(key(5), track(200, 16));
        assert!(cache.contains(&key(5)), "the only (most-recent) entry is never evicted");
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn replacement_does_not_leak_bytes() {
        let cache = AnnotationCache::new(1, 1 << 20);
        cache.insert(key(1), track(100, 8));
        cache.insert(key(1), track(100, 8));
        let s = cache.stats();
        assert_eq!(s.resident, 1);
        assert_eq!(s.resident_bytes, cache.recount_resident_bytes());
    }

    #[test]
    fn sharding_spreads_keys() {
        let cache = AnnotationCache::new(8, 1 << 24);
        for i in 0..64 {
            cache.insert(key(i), track(20, 2));
        }
        let populated = cache
            .shards
            .iter()
            .filter(|s| !s.lock().entries.is_empty())
            .count();
        assert!(populated >= 4, "64 keys should touch most of 8 shards, got {populated}");
    }
}
