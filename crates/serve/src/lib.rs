//! # annolight-serve — the annotation service tier
//!
//! The paper's deployment model (Fig. 1) performs profiling and
//! annotation **away from the battery**: at a streaming server or a
//! proxy, where one expensive pass over a clip is amortised across
//! every thin client that later plays it. This crate is that tier as a
//! real subsystem rather than an inline call:
//!
//! | module | role |
//! |---|---|
//! | [`pool`] | work-stealing worker pool (per-worker deques, deterministic single-thread mode) |
//! | [`cache`] | sharded, content-addressed LRU cache of [`AnnotationTrack`](annolight_core::AnnotationTrack) sidecars with a byte budget |
//! | [`service`] | admission/backpressure front-end: bounded per-tenant queues, round-robin fairness, typed [`ServeError::Overloaded`] |
//! | [`counters`] | hit/miss/overload counters + profile-latency histogram (exact-quantile reservoir mode), exported as JSON |
//! | [`workload`] | trace-driven planetary workload model (Zipf popularity, diurnal/flash-crowd curves, tenant churn) + SLO replay harness |
//! | [`reactor`] | admission flows as resumable tasks on the deterministic reactor ([`AdmissionDriver`]): overload backoff as virtual-time sleeps, pending tickets as channel waits |
//!
//! Everything is hermetic: the only dependencies are sibling workspace
//! crates, and concurrency is built on [`annolight_support::sync`] and
//! [`annolight_support::channel`].
//!
//! ## Example
//!
//! ```
//! use annolight_serve::{AnnotationRequest, AnnotationService, Service, ServiceConfig};
//! use annolight_core::{track::AnnotationMode, QualityLevel};
//! use annolight_display::DeviceProfile;
//! use annolight_video::ClipLibrary;
//!
//! let svc = AnnotationService::new(ServiceConfig::default()); // deterministic
//! svc.register_clip(ClipLibrary::paper_clip("shrek2").unwrap().preview(2.0));
//! let req = AnnotationRequest {
//!     tenant: "handheld-0".into(),
//!     clip: "shrek2".into(),
//!     device: DeviceProfile::ipaq_5555(),
//!     quality: QualityLevel::Q10,
//!     mode: AnnotationMode::PerScene,
//!     policy: annolight_core::PolicyKind::PeakClip,
//! };
//! let cold = svc.call(req.clone()).unwrap();
//! let warm = svc.call(req).unwrap();
//! assert!(!cold.cache_hit);
//! assert!(warm.cache_hit);
//! assert_eq!(svc.report().misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod counters;
pub mod pool;
pub mod reactor;
pub mod service;
pub mod workload;

pub use cache::{AnnotationCache, CacheKey, CacheStats};
pub use counters::{Counters, CountersReport, Exactness, LatencyHistogram};
pub use pool::{PoolStats, WorkerPool};
pub use reactor::{AdmissionDriver, AdmissionOutcome};
pub use service::{
    AnnotationRequest, AnnotationResponse, AnnotationService, ServeError, Service, ServiceConfig,
    Ticket,
};
pub use workload::{
    generate_trace, replay_trace, run_scenario, ChurnConfig, DeterministicSummary, DiurnalCurve,
    FlashCrowd, ReplayConfig, ScenarioKind, ScenarioReport, SloThresholds, SyntheticCorpus,
    TraceRequest, WorkloadConfig, WorkloadTrace, ZipfSampler,
};
