//! Reactor-hosted admission: annotation requests as resumable tasks.
//!
//! [`AnnotationService::call_with_retry`] is the blessed blocking
//! client — it parks an OS thread through every backoff window and
//! every pending ticket. This module re-hosts that exact discipline as
//! a cooperative [`Task`] so one reactor drives thousands of admission
//! flows on one thread:
//!
//! * [`ServeError::Overloaded`] → the task consumes the **same**
//!   [`RetryPolicy::service`] schedule (same RNG draws, same truncated
//!   exponential) but spends the backoff as a virtual-time
//!   [`Step::Sleep`] instead of simulated inline elapsed time;
//! * [`Ticket::Pending`] → the task parks on the ticket's reply channel
//!   via [`PollRx`] ([`Step::Wait`]) and is resumed when a pool worker
//!   answers — no thread blocks in `recv`.
//!
//! **Determinism contract.** Tasks sharing one [`AnnotationService`]
//! mutate shared cache/queue state, so a deterministic schedule needs
//! `workers == 1` on the reactor (the reactor's worker-invariance
//! guarantee only covers non-interacting tasks). With the service's
//! deterministic inline pool (`ServiceConfig::workers == 0`), a driver
//! drains the pool during its own step — mirroring what
//! `call_with_retry` does between attempts — so identical traces replay
//! identical hit/miss/backoff sequences.

use crate::service::{
    AnnotationRequest, AnnotationResponse, AnnotationService, ServeError, Ticket,
};
use annolight_support::reactor::{Context, PollRx, Step, Task};
use annolight_support::retry::RetryPolicy;
use annolight_support::rng::SmallRng;
use annolight_support::wheel::ticks_from_secs;
use std::sync::Arc;

/// What one admission flow reports when it resolves.
#[derive(Debug, Clone)]
pub struct AdmissionOutcome {
    /// The service's answer (or the error that ended the flow).
    pub result: Result<AnnotationResponse, ServeError>,
    /// Backoff attempts consumed before resolution.
    pub attempts: u32,
    /// Simulated backoff charged across those attempts, seconds.
    pub backoff_s: f64,
}

enum DriverState {
    /// Submit (or re-submit after backoff) on the next step.
    Submit,
    /// Parked on a pending ticket's reply channel.
    Awaiting(PollRx<Result<AnnotationResponse, ServeError>>),
    /// Outcome delivered.
    Finished,
}

/// One annotation request driven to completion as a reactor task:
/// submit → (backoff-sleep on overload)* → (wait on pending ticket)? →
/// report. The outcome arrives on `out` as `(index, outcome)`.
pub struct AdmissionDriver {
    service: Arc<AnnotationService>,
    request: AnnotationRequest,
    policy: RetryPolicy,
    rng: SmallRng,
    state: DriverState,
    attempts: u32,
    backoff_s: f64,
    index: usize,
    out: annolight_support::channel::Sender<(usize, AdmissionOutcome)>,
}

impl AdmissionDriver {
    /// A driver for `request` against `service`, retrying overload per
    /// `policy` with jitter drawn from the seeded `rng`, reporting as
    /// flow `index` on `out`.
    #[must_use]
    pub fn new(
        service: Arc<AnnotationService>,
        request: AnnotationRequest,
        policy: RetryPolicy,
        rng: SmallRng,
        index: usize,
        out: annolight_support::channel::Sender<(usize, AdmissionOutcome)>,
    ) -> Self {
        Self {
            service,
            request,
            policy,
            rng,
            state: DriverState::Submit,
            attempts: 0,
            backoff_s: 0.0,
            index,
            out,
        }
    }

    fn finish(&mut self, result: Result<AnnotationResponse, ServeError>) -> Step {
        self.state = DriverState::Finished;
        let _ = self.out.send((
            self.index,
            AdmissionOutcome { result, attempts: self.attempts, backoff_s: self.backoff_s },
        ));
        Step::Done
    }
}

impl Task for AdmissionDriver {
    fn step(&mut self, cx: &Context) -> Step {
        match std::mem::replace(&mut self.state, DriverState::Submit) {
            DriverState::Submit => match self.service.submit(self.request.clone()) {
                Ok(Ticket::Ready(reply)) => self.finish(reply),
                Ok(Ticket::Pending(rx)) => {
                    let poll = PollRx::new(rx);
                    if self.service.is_deterministic() {
                        // An inline pool's readiness never changes on
                        // its own — re-step next round and drain there.
                        self.state = DriverState::Awaiting(poll);
                        Step::Yield
                    } else {
                        let source = poll.source();
                        self.state = DriverState::Awaiting(poll);
                        Step::Wait(Box::new(source))
                    }
                }
                Err(ServeError::Overloaded { tenant }) => {
                    let Some(delay) =
                        self.policy.next_delay_s(self.attempts, self.backoff_s, &mut self.rng)
                    else {
                        return self.finish(Err(ServeError::Overloaded { tenant }));
                    };
                    self.attempts += 1;
                    self.backoff_s += delay;
                    if self.service.is_deterministic() {
                        // Real workers drain queues during the backoff
                        // window; inline mode drains explicitly, exactly
                        // as `call_with_retry` does.
                        self.service.run_until_idle();
                    }
                    // state is already Submit: re-submit after the
                    // virtual backoff elapses.
                    Step::Sleep(cx.now_ticks.saturating_add(ticks_from_secs(delay)))
                }
                Err(other) => self.finish(Err(other)),
            },
            DriverState::Awaiting(poll) => {
                if let Some(reply) = poll.try_take() {
                    return self.finish(reply);
                }
                if self.service.is_deterministic() {
                    // Mirror `Service::call`: the inline pool only runs
                    // when someone drains it. Doing so here (not at
                    // submission) preserves real admission pressure —
                    // every submit in a round lands before any drain.
                    self.service.run_until_idle();
                    if let Some(reply) = poll.try_take() {
                        return self.finish(reply);
                    }
                }
                if poll.is_closed() {
                    return self
                        .finish(Err(ServeError::Internal("service dropped in flight".into())));
                }
                if self.service.is_deterministic() {
                    self.state = DriverState::Awaiting(poll);
                    Step::Yield
                } else {
                    let source = poll.source();
                    self.state = DriverState::Awaiting(poll);
                    Step::Wait(Box::new(source))
                }
            }
            DriverState::Finished => Step::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use annolight_core::track::AnnotationMode;
    use annolight_core::QualityLevel;
    use annolight_display::DeviceProfile;
    use annolight_support::channel;
    use annolight_support::reactor::{Reactor, ReactorConfig};
    use annolight_video::clip::{Clip, ClipSpec, SceneSpec};
    use annolight_video::content::ContentKind;

    fn test_clip(name: &str, seed: u64) -> Clip {
        Clip::new(ClipSpec {
            name: name.to_owned(),
            width: 48,
            height: 32,
            fps: 12.0,
            seed,
            scenes: vec![
                SceneSpec::new(ContentKind::Bright { base: 200, spread: 20 }, 1.0),
                SceneSpec::new(
                    ContentKind::Dark {
                        base: 40,
                        spread: 10,
                        highlight_fraction: 0.01,
                        highlight: 240,
                    },
                    1.0,
                ),
            ],
        })
        .unwrap()
    }

    fn request(tenant: &str, clip: &str, q: QualityLevel) -> AnnotationRequest {
        AnnotationRequest {
            tenant: tenant.to_owned(),
            clip: clip.to_owned(),
            device: DeviceProfile::ipaq_5555(),
            quality: q,
            mode: AnnotationMode::PerScene,
            policy: annolight_core::PolicyKind::PeakClip,
        }
    }

    fn drive(
        svc: &Arc<AnnotationService>,
        requests: Vec<AnnotationRequest>,
        seed: u64,
    ) -> (Vec<AdmissionOutcome>, u64) {
        let (tx, rx) = channel::unbounded();
        let mut reactor = Reactor::with_config(ReactorConfig { seed, ..ReactorConfig::default() });
        for (i, req) in requests.into_iter().enumerate() {
            reactor.spawn(Box::new(AdmissionDriver::new(
                Arc::clone(svc),
                req,
                RetryPolicy::service(),
                SmallRng::stream(seed, i as u64),
                i,
                tx.clone(),
            )));
        }
        drop(tx);
        let report = reactor.run();
        let mut out: Vec<(usize, AdmissionOutcome)> = rx.iter().collect();
        out.sort_by_key(|(i, _)| *i);
        (out.into_iter().map(|(_, o)| o).collect(), report.digest.value())
    }

    #[test]
    fn reactor_admission_resolves_hits_misses_and_overload() {
        let svc = AnnotationService::new(ServiceConfig {
            tenant_queue_depth: 2,
            ..ServiceConfig::default()
        });
        svc.register_clip(test_clip("a", 7));
        // 6 distinct qualities from one tenant: depth 2 forces overload
        // backoff; every flow must still land via retries.
        let requests: Vec<AnnotationRequest> = (0..6)
            .map(|i| request("flood", "a", QualityLevel::Custom(0.01 + f64::from(i) * 0.02)))
            .collect();
        let (outcomes, _) = drive(&svc, requests, 11);
        assert_eq!(outcomes.len(), 6);
        for o in &outcomes {
            o.result.as_ref().expect("every flow resolves");
        }
        assert!(
            outcomes.iter().any(|o| o.attempts > 0 && o.backoff_s > 0.0),
            "queue depth 2 must force at least one backoff"
        );
        assert_eq!(svc.report().completed, 6);
    }

    #[test]
    fn reactor_admission_replays_deterministically() {
        let run = |seed: u64| {
            let svc = AnnotationService::new(ServiceConfig {
                tenant_queue_depth: 1,
                ..ServiceConfig::default()
            });
            svc.register_clip(test_clip("a", 7));
            let requests: Vec<AnnotationRequest> = (0..4)
                .map(|i| request("t", "a", QualityLevel::Custom(0.05 + f64::from(i) * 0.03)))
                .collect();
            let (outcomes, digest) = drive(&svc, requests, seed);
            let trace: Vec<(bool, u32, u64)> = outcomes
                .iter()
                .map(|o| (o.result.is_ok(), o.attempts, o.backoff_s.to_bits()))
                .collect();
            (trace, digest)
        };
        assert_eq!(run(5), run(5), "same seed must replay the same admission trace");
        let ((_, d5), (_, d6)) = (run(5), run(6));
        assert_ne!(d5, d6, "different seeds must shuffle differently");
    }

    #[test]
    fn unknown_clip_fails_fast_without_retries() {
        let svc = AnnotationService::new(ServiceConfig::default());
        let (outcomes, _) = drive(&svc, vec![request("t", "nope", QualityLevel::Q10)], 3);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(
            outcomes[0].result.as_ref().unwrap_err(),
            &ServeError::UnknownClip("nope".into())
        );
        assert_eq!(outcomes[0].attempts, 0);
    }
}
