//! Battery model: turning power savings into battery life.
//!
//! The paper's motivation is battery life ("battery life still remains a
//! major limitation of portable devices"); this module converts the
//! measured power numbers into the quantity a user feels — minutes of
//! playback per charge. The iPAQ 5555 ships a 1250 mAh / 3.7 V Li-ion
//! pack.


/// A simple energy-capacity battery model with a usable-fraction derating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Rated capacity, milliamp-hours.
    pub capacity_mah: f64,
    /// Nominal pack voltage, volts.
    pub voltage_v: f64,
    /// Fraction of the rated capacity usable before shutdown, `(0, 1]`.
    pub usable_fraction: f64,
}

annolight_support::impl_json!(struct Battery { capacity_mah, voltage_v, usable_fraction });

impl Battery {
    /// The iPAQ 5555's stock pack: 1250 mAh Li-ion at 3.7 V, ~92 % usable
    /// before the low-voltage cutoff.
    pub fn ipaq_5555() -> Self {
        Self { capacity_mah: 1250.0, voltage_v: 3.7, usable_fraction: 0.92 }
    }

    /// Creates a battery model.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are positive and
    /// `usable_fraction ≤ 1`.
    pub fn new(capacity_mah: f64, voltage_v: f64, usable_fraction: f64) -> Self {
        assert!(capacity_mah > 0.0, "capacity {capacity_mah} must be positive");
        assert!(voltage_v > 0.0, "voltage {voltage_v} must be positive");
        assert!(
            usable_fraction > 0.0 && usable_fraction <= 1.0,
            "usable fraction {usable_fraction} outside (0, 1]"
        );
        Self { capacity_mah, voltage_v, usable_fraction }
    }

    /// Usable energy, joules.
    pub fn usable_energy_j(&self) -> f64 {
        self.capacity_mah / 1000.0 * 3600.0 * self.voltage_v * self.usable_fraction
    }

    /// Continuous runtime at a constant draw, seconds.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive power draw.
    pub fn runtime_s(&self, power_w: f64) -> f64 {
        assert!(power_w > 0.0, "power draw {power_w} must be positive");
        self.usable_energy_j() / power_w
    }

    /// Extra runtime bought by a fractional power saving, seconds: the
    /// difference between running at `(1 − saving)·power` and at `power`.
    ///
    /// ```
    /// use annolight_power::Battery;
    /// // An 18% saving at 3.2 W buys roughly a quarter hour of playback.
    /// let extra = Battery::ipaq_5555().extra_runtime_s(3.2, 0.18);
    /// assert!(extra > 10.0 * 60.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ saving < 1` and `power_w > 0`.
    pub fn extra_runtime_s(&self, power_w: f64, saving: f64) -> f64 {
        assert!((0.0..1.0).contains(&saving), "saving {saving} outside [0, 1)");
        self.runtime_s(power_w * (1.0 - saving)) - self.runtime_s(power_w)
    }
}

impl Battery {
    /// Peukert-corrected runtime: real cells deliver less usable charge at
    /// higher discharge currents. `exponent` is the Peukert exponent
    /// (1.0 = ideal; Li-ion packs of the era ≈ 1.03–1.08). The reference
    /// current is the 1C rate.
    ///
    /// # Panics
    ///
    /// Panics unless `power_w > 0` and `exponent ≥ 1`.
    pub fn runtime_s_peukert(&self, power_w: f64, exponent: f64) -> f64 {
        assert!(power_w > 0.0, "power draw {power_w} must be positive");
        assert!(exponent >= 1.0, "Peukert exponent {exponent} must be >= 1");
        let current_a = power_w / self.voltage_v;
        let c_rate = self.capacity_mah / 1000.0; // 1C current in amps
        let ideal = self.runtime_s(power_w);
        // t = t_ideal · (I_ref / I)^(k-1)
        ideal * (c_rate / current_a).powf(exponent - 1.0)
    }
}

/// Live charge state: the quantity the closed-loop quality governor
/// reads at every per-scene decision point.
///
/// Wraps a [`Battery`] with a running joule drain, clamped at empty —
/// draining can never go negative, and a session budget is always
/// derated to what the pack can actually deliver
/// ([`BatteryState::budget_clamp_j`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryState {
    battery: Battery,
    remaining_j: f64,
}

impl BatteryState {
    /// A fully charged pack.
    #[must_use]
    pub fn full(battery: Battery) -> Self {
        Self { remaining_j: battery.usable_energy_j(), battery }
    }

    /// A pack at `fraction` of its usable energy (clamped to `[0, 1]`).
    #[must_use]
    pub fn at_fraction(battery: Battery, fraction: f64) -> Self {
        let f = fraction.clamp(0.0, 1.0);
        Self { remaining_j: battery.usable_energy_j() * f, battery }
    }

    /// The underlying pack model.
    #[must_use]
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Usable energy remaining, joules.
    #[must_use]
    pub fn remaining_j(&self) -> f64 {
        self.remaining_j
    }

    /// Remaining charge as a fraction of the pack's usable energy.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        self.remaining_j / self.battery.usable_energy_j()
    }

    /// Whether the pack is exhausted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining_j <= 0.0
    }

    /// Drains `energy_j` joules, clamped at empty; returns the energy
    /// actually delivered.
    ///
    /// # Panics
    ///
    /// Panics for a negative drain (charging is not modelled).
    pub fn drain_j(&mut self, energy_j: f64) -> f64 {
        assert!(energy_j >= 0.0, "drain {energy_j} must be non-negative");
        let delivered = energy_j.min(self.remaining_j);
        self.remaining_j -= delivered;
        delivered
    }

    /// Derates a session joule budget to what the pack can deliver:
    /// `max(0, min(budget, remaining))`. This is the governor's budget
    /// at every decision point — a budget larger than the charge (or a
    /// negative one) never over-promises.
    #[must_use]
    pub fn budget_clamp_j(&self, budget_j: f64) -> f64 {
        budget_j.min(self.remaining_j).max(0.0)
    }

    /// Fraction of the pack's usable energy a projected spend would
    /// consume (0 for a zero-length clip; can exceed 1 when the
    /// projection outruns the pack).
    #[must_use]
    pub fn projected_drain_fraction(&self, energy_j: f64) -> f64 {
        energy_j / self.battery.usable_energy_j()
    }

    /// Remaining runtime at a constant draw, seconds.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive power draw.
    #[must_use]
    pub fn runtime_at_w(&self, power_w: f64) -> f64 {
        assert!(power_w > 0.0, "power draw {power_w} must be positive");
        self.remaining_j / power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peukert_one_is_ideal() {
        let b = Battery::ipaq_5555();
        assert!((b.runtime_s_peukert(3.0, 1.0) - b.runtime_s(3.0)).abs() < 1e-9);
    }

    #[test]
    fn peukert_penalises_high_draw() {
        let b = Battery::ipaq_5555();
        // Streaming draws ~0.86 A, well above the 1.25 A·h pack's... no:
        // 3.2 W / 3.7 V ≈ 0.86 A < 1C (1.25 A) — mild *bonus* below 1C,
        // penalty above. Check both sides of the 1C point.
        let below_1c = 3.2; // 0.86 A
        let above_1c = 6.0; // 1.62 A
        assert!(b.runtime_s_peukert(below_1c, 1.05) >= b.runtime_s(below_1c));
        assert!(b.runtime_s_peukert(above_1c, 1.05) < b.runtime_s(above_1c));
    }

    #[test]
    fn peukert_monotone_in_exponent_above_1c() {
        let b = Battery::ipaq_5555();
        let p = 6.0;
        assert!(b.runtime_s_peukert(p, 1.08) < b.runtime_s_peukert(p, 1.03));
    }

    #[test]
    fn stock_pack_energy_is_plausible() {
        // 1250 mAh · 3.7 V ≈ 16.6 kJ; ~92% usable ≈ 15.3 kJ.
        let e = Battery::ipaq_5555().usable_energy_j();
        assert!((15_000.0..16_000.0).contains(&e), "{e} J");
    }

    #[test]
    fn runtime_at_streaming_power() {
        // ~3.2 W streaming: a bit over an hour — matches period reviews
        // of WiFi video playback on the hardware class.
        let rt = Battery::ipaq_5555().runtime_s(3.2);
        assert!((3500.0..6000.0).contains(&rt), "{rt} s");
    }

    #[test]
    fn extra_runtime_from_savings() {
        let b = Battery::ipaq_5555();
        // An 18% total saving at 3.2 W buys roughly 17 extra minutes.
        let extra_min = b.extra_runtime_s(3.2, 0.18) / 60.0;
        assert!((12.0..25.0).contains(&extra_min), "{extra_min} min");
    }

    #[test]
    fn zero_saving_buys_nothing() {
        assert_eq!(Battery::ipaq_5555().extra_runtime_s(3.0, 0.0), 0.0);
    }

    #[test]
    fn runtime_monotone_in_power() {
        let b = Battery::ipaq_5555();
        assert!(b.runtime_s(2.0) > b.runtime_s(3.0));
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn rejects_bad_usable_fraction() {
        Battery::new(1000.0, 3.7, 1.5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_power() {
        Battery::ipaq_5555().runtime_s(0.0);
    }

    // --- Golden values at the governor's decision points ---------------
    //
    // The closed-loop governor reads `BatteryState` every scene; these
    // pin the exact numbers it sees, including the usable-fraction
    // derating edge cases.

    /// 1250 mAh · 3.7 V · 0.92 usable = 1.25 · 3600 · 3.7 · 0.92 J.
    const IPAQ_USABLE_J: f64 = 15318.0;

    #[test]
    fn golden_ipaq_usable_energy_is_exact() {
        assert_eq!(Battery::ipaq_5555().usable_energy_j(), IPAQ_USABLE_J);
        assert_eq!(BatteryState::full(Battery::ipaq_5555()).remaining_j(), IPAQ_USABLE_J);
    }

    #[test]
    fn golden_fractional_charge_and_drain() {
        let mut s = BatteryState::at_fraction(Battery::ipaq_5555(), 0.5);
        assert_eq!(s.remaining_j(), 7659.0);
        assert_eq!(s.fraction(), 0.5);
        assert_eq!(s.drain_j(659.0), 659.0);
        assert_eq!(s.remaining_j(), 7000.0);
    }

    #[test]
    fn golden_empty_battery_clamps_everything_to_zero() {
        let mut s = BatteryState::at_fraction(Battery::ipaq_5555(), 0.0);
        assert!(s.is_empty());
        assert_eq!(s.remaining_j(), 0.0);
        // A governor budget against an empty pack is exactly zero...
        assert_eq!(s.budget_clamp_j(100.0), 0.0);
        // ...and draining delivers nothing rather than going negative.
        assert_eq!(s.drain_j(10.0), 0.0);
        assert_eq!(s.remaining_j(), 0.0);
    }

    #[test]
    fn golden_budget_larger_than_capacity_derates_to_the_pack() {
        let s = BatteryState::full(Battery::ipaq_5555());
        assert_eq!(s.budget_clamp_j(1.0e9), IPAQ_USABLE_J);
        assert_eq!(s.budget_clamp_j(-5.0), 0.0);
        assert_eq!(s.budget_clamp_j(1000.0), 1000.0);
    }

    #[test]
    fn golden_overdrain_delivers_only_the_charge() {
        let mut s = BatteryState::at_fraction(Battery::ipaq_5555(), 0.001);
        let charge = s.remaining_j();
        assert_eq!(s.drain_j(1.0e6), charge);
        assert!(s.is_empty());
    }

    #[test]
    fn golden_zero_length_clip_projects_zero_drain() {
        let mut s = BatteryState::full(Battery::ipaq_5555());
        // A zero-length clip projects zero energy: no drain, no
        // projected fraction, state untouched.
        assert_eq!(s.projected_drain_fraction(0.0), 0.0);
        assert_eq!(s.drain_j(0.0), 0.0);
        assert_eq!(s.remaining_j(), IPAQ_USABLE_J);
        assert_eq!(s.fraction(), 1.0);
    }

    #[test]
    fn fraction_is_clamped_and_runtime_tracks_charge() {
        let s = BatteryState::at_fraction(Battery::ipaq_5555(), 1.7);
        assert_eq!(s.fraction(), 1.0);
        let half = BatteryState::at_fraction(Battery::ipaq_5555(), 0.5);
        assert_eq!(half.runtime_at_w(3.0), 7659.0 / 3.0);
        // Over-projection is visible, not hidden.
        assert!(half.projected_drain_fraction(20_000.0) > 1.0);
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn rejects_negative_drain() {
        BatteryState::full(Battery::ipaq_5555()).drain_j(-1.0);
    }
}
