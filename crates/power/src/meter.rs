//! Thread-safe energy accounting for the streaming pipeline.

use annolight_support::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Accumulates energy per named component across threads.
///
/// The server, proxy and client of the streaming model each run on their
/// own thread and attribute consumed energy here; the session report then
/// breaks energy down per component.
///
/// # Example
///
/// ```
/// use annolight_power::EnergyMeter;
/// let meter = EnergyMeter::new();
/// meter.add("backlight", 1.5);
/// meter.add("cpu", 2.0);
/// meter.add("backlight", 0.5);
/// assert_eq!(meter.component_j("backlight"), 2.0);
/// assert_eq!(meter.total_j(), 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    inner: Arc<Mutex<BTreeMap<String, f64>>>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `joules` to `component`.
    ///
    /// # Panics
    ///
    /// Panics for negative or non-finite energy.
    pub fn add(&self, component: &str, joules: f64) {
        assert!(joules.is_finite() && joules >= 0.0, "energy {joules} must be non-negative");
        *self.inner.lock().entry(component.to_owned()).or_insert(0.0) += joules;
    }

    /// Energy recorded for one component, joules (0 if never seen).
    pub fn component_j(&self, component: &str) -> f64 {
        self.inner.lock().get(component).copied().unwrap_or(0.0)
    }

    /// Total energy across all components, joules.
    pub fn total_j(&self) -> f64 {
        self.inner.lock().values().sum()
    }

    /// Snapshot of all components and their energies.
    pub fn breakdown(&self) -> BTreeMap<String, f64> {
        self.inner.lock().clone()
    }

    /// Resets the meter.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn accumulates_per_component() {
        let m = EnergyMeter::new();
        m.add("a", 1.0);
        m.add("b", 2.0);
        m.add("a", 3.0);
        assert_eq!(m.component_j("a"), 4.0);
        assert_eq!(m.component_j("b"), 2.0);
        assert_eq!(m.component_j("c"), 0.0);
        assert_eq!(m.total_j(), 6.0);
    }

    #[test]
    fn clones_share_state() {
        let m = EnergyMeter::new();
        let m2 = m.clone();
        m2.add("x", 5.0);
        assert_eq!(m.component_j("x"), 5.0);
    }

    #[test]
    fn concurrent_adds_are_not_lost() {
        let m = EnergyMeter::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        m.add("cpu", 0.001);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!((m.component_j("cpu") - 8.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_and_clear() {
        let m = EnergyMeter::new();
        m.add("a", 1.0);
        let b = m.breakdown();
        assert_eq!(b.len(), 1);
        m.clear();
        assert_eq!(m.total_j(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_energy() {
        EnergyMeter::new().add("a", -1.0);
    }
}
