//! Simulated power measurement for the `annolight` workspace.
//!
//! §5 of the paper: "The batteries were removed from the iPAQ during the
//! experiment. A PCI DAQ board was used to sample voltage drops across a
//! resistor and the iPAQ, and sampled the voltages at 2K samples/sec."
//!
//! This crate provides:
//!
//! * [`SystemPowerModel`] — a whole-device power model (CPU, WNIC, base
//!   system; the backlight term is supplied by `annolight-display`),
//!   calibrated so the backlight is 25–30 % of total streaming power as
//!   the paper states;
//! * [`DaqBoard`] — the sense-resistor sampling rig, integrating energy
//!   from a power trace exactly as the physical setup would;
//! * [`EnergyMeter`] — a thread-safe accumulator used by the streaming
//!   pipeline to attribute energy to components.
//!
//! # Example
//!
//! ```
//! use annolight_power::{DaqBoard, SystemPowerModel};
//!
//! let model = SystemPowerModel::ipaq_5555();
//! // Decoding video over WiFi at full backlight:
//! let p = model.power_w(0.8, true, 0.85);
//! assert!(p > 2.0 && p < 4.0);
//!
//! // Measure a constant 2 W load for 10 s with the DAQ:
//! let m = DaqBoard::paper_setup().measure(10.0, |_t| 2.0);
//! assert!((m.energy_j - 20.0).abs() < 0.05); // within ADC quantisation
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod daq;
pub mod meter;
pub mod model;

pub use battery::{Battery, BatteryState};
pub use daq::{DaqBoard, Measurement};
pub use meter::EnergyMeter;
pub use model::SystemPowerModel;
