//! The DAQ sampling rig.
//!
//! The physical setup: the PDA is powered through a small sense resistor;
//! the DAQ samples the voltage drop across the resistor (→ current) and
//! across the device (→ voltage) at 2 k samples/s, and energy is the
//! integral of their product. We simulate exactly that: a power trace
//! `p(t)` is converted to `(v_device, v_sense)` sample pairs and
//! re-integrated, including the quantisation of the ADC.


/// The simulated DAQ board plus sense-resistor harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaqBoard {
    /// Sampling rate, samples per second.
    pub sample_rate_hz: f64,
    /// Supply voltage, volts.
    pub supply_v: f64,
    /// Sense resistor, ohms.
    pub sense_ohm: f64,
    /// ADC least-significant-bit size, volts (quantisation granularity).
    pub adc_lsb_v: f64,
}

annolight_support::impl_json!(struct DaqBoard { sample_rate_hz, supply_v, sense_ohm, adc_lsb_v });

impl DaqBoard {
    /// The paper's setup: 2 k samples/s; 5 V supply and a 0.1 Ω sense
    /// resistor. The sense channel uses the DAQ's small differential
    /// input range (±0.2 V on a 12-bit converter), as any sane harness
    /// would — the drop across 0.1 Ω is only tens of millivolts.
    pub fn paper_setup() -> Self {
        Self {
            sample_rate_hz: 2_000.0,
            supply_v: 5.0,
            sense_ohm: 0.1,
            adc_lsb_v: 0.4 / 4096.0,
        }
    }

    /// Measures the power trace `p(t)` (watts, `t` in seconds) for
    /// `duration_s`, returning the integrated measurement.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not positive and finite.
    pub fn measure(&self, duration_s: f64, p: impl Fn(f64) -> f64) -> Measurement {
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "duration {duration_s} must be positive"
        );
        let n = (duration_s * self.sample_rate_hz).round().max(1.0) as usize;
        let dt = duration_s / n as f64;
        let mut energy = 0.0f64;
        let mut peak = 0.0f64;
        let mut samples = Vec::with_capacity(n.min(1 << 22));
        for i in 0..n {
            let t = (i as f64 + 0.5) * dt;
            let power = p(t).max(0.0);
            // Through the harness: current, then the two ADC channels.
            // The bench supply is sense-regulated at the device terminals,
            // so the device sees `supply_v` and the resistor drop rides on
            // top; the DAQ reads both channels through the ADC.
            let current = power / self.supply_v;
            let v_sense = self.quantise(current * self.sense_ohm);
            let v_device = self.quantise(self.supply_v);
            let measured_power = (v_sense / self.sense_ohm) * v_device;
            energy += measured_power * dt;
            peak = peak.max(measured_power);
            samples.push(measured_power);
        }
        Measurement {
            duration_s,
            energy_j: energy,
            avg_power_w: energy / duration_s,
            peak_power_w: peak,
            samples,
        }
    }

    fn quantise(&self, v: f64) -> f64 {
        (v / self.adc_lsb_v).round() * self.adc_lsb_v
    }
}

/// The result of one DAQ measurement run.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Wall-clock duration measured, seconds.
    pub duration_s: f64,
    /// Integrated energy, joules.
    pub energy_j: f64,
    /// Mean power, watts.
    pub avg_power_w: f64,
    /// Peak sampled power, watts.
    pub peak_power_w: f64,
    /// The per-sample power trace, watts.
    pub samples: Vec<f64>,
}

annolight_support::impl_json!(struct Measurement { duration_s, energy_j, avg_power_w, peak_power_w, samples });

impl Measurement {
    /// Fractional saving of this measurement versus a baseline one.
    ///
    /// # Panics
    ///
    /// Panics if the baseline consumed zero energy.
    pub fn savings_vs(&self, baseline: &Measurement) -> f64 {
        assert!(baseline.energy_j > 0.0, "baseline energy must be positive");
        1.0 - self.energy_j / baseline.energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_load_integrates_exactly() {
        let m = DaqBoard::paper_setup().measure(5.0, |_| 2.5);
        assert!((m.energy_j - 12.5).abs() < 0.05, "energy {}", m.energy_j);
        assert!((m.avg_power_w - 2.5).abs() < 0.01);
        assert_eq!(m.samples.len(), 10_000);
    }

    #[test]
    fn ramp_load_matches_closed_form() {
        // p(t) = t over 4 s → energy = 8 J.
        let m = DaqBoard::paper_setup().measure(4.0, |t| t);
        assert!((m.energy_j - 8.0).abs() < 0.05, "energy {}", m.energy_j);
    }

    #[test]
    fn step_load_peak_detected() {
        let m = DaqBoard::paper_setup().measure(2.0, |t| if t < 1.0 { 1.0 } else { 3.0 });
        assert!((m.peak_power_w - 3.0).abs() < 0.05);
        assert!((m.energy_j - 4.0).abs() < 0.05);
    }

    #[test]
    fn adc_quantisation_is_bounded() {
        // A 12-bit ADC introduces bounded error, not bias blow-up.
        let fine = DaqBoard { adc_lsb_v: 1e-9, ..DaqBoard::paper_setup() };
        let coarse = DaqBoard::paper_setup();
        let ef = fine.measure(3.0, |_| 2.0).energy_j;
        let ec = coarse.measure(3.0, |_| 2.0).energy_j;
        assert!((ef - ec).abs() / ef < 0.02, "fine {ef} coarse {ec}");
    }

    #[test]
    fn savings_vs_baseline() {
        let board = DaqBoard::paper_setup();
        let base = board.measure(10.0, |_| 3.0);
        let opt = board.measure(10.0, |_| 2.4);
        assert!((opt.savings_vs(&base) - 0.2).abs() < 0.01);
    }

    #[test]
    fn negative_power_clamped() {
        let m = DaqBoard::paper_setup().measure(1.0, |_| -5.0);
        assert!(m.energy_j.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_duration_rejected() {
        DaqBoard::paper_setup().measure(0.0, |_| 1.0);
    }
}
