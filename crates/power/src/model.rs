//! Whole-device power model.
//!
//! The iPAQ 5555 the paper instruments has a 400 MHz XScale CPU, an
//! 802.11b CF card and the LED-backlit transflective display. We model the
//! total as
//!
//! `P = base + cpu_idle + busy·(cpu_active − cpu_idle) + wnic + backlight`
//!
//! with the backlight wattage supplied externally (it is a function of the
//! backlight level, owned by `annolight-display`). Constants are set so a
//! full-backlight streaming session draws ≈ 3.2 W with the backlight at
//! 26 % of the total — inside the paper's "25–30 %" statement (§4).


/// Power model of everything in the device except the backlight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemPowerModel {
    /// Always-on board power (memory, LCD logic, audio, regulators), W.
    pub base_w: f64,
    /// CPU power when idle, W.
    pub cpu_idle_w: f64,
    /// CPU power when fully busy at maximum frequency, W.
    pub cpu_active_w: f64,
    /// WNIC power while receiving a stream, W.
    pub wnic_rx_w: f64,
    /// WNIC power while associated but idle, W.
    pub wnic_idle_w: f64,
    /// WNIC power while transmitting (ACK/NACK and retransmit requests),
    /// W. 802.11b CF cards draw more on tx than rx.
    pub wnic_tx_w: f64,
}

annolight_support::impl_json!(struct SystemPowerModel { base_w, cpu_idle_w, cpu_active_w, wnic_rx_w, wnic_idle_w, wnic_tx_w });

impl SystemPowerModel {
    /// Fraction of a data-packet airtime slot a NACK/retransmit request
    /// occupies on the uplink (control frames are tiny).
    const NACK_AIRTIME_FRAC: f64 = 0.10;

    /// The iPAQ 5555 measurement target.
    pub fn ipaq_5555() -> Self {
        Self {
            base_w: 0.90,
            cpu_idle_w: 0.15,
            cpu_active_w: 1.05,
            wnic_rx_w: 0.60,
            wnic_idle_w: 0.10,
            wnic_tx_w: 0.75,
        }
    }

    /// Energy cost of `retransmits` link-layer retransmissions, joules:
    /// each one keeps the radio in receive mode for an extra packet
    /// airtime (`airtime_per_packet_s`) *and* transmits a short NACK /
    /// retransmit request. Both are charged as the increment over
    /// associated-idle, because the baseline session already accounts
    /// the idle draw.
    ///
    /// This is the WNIC half of the loss-rate energy story: lost packets
    /// cost energy even when playback degrades gracefully, which is why
    /// the loss-sweep tables report savings *vs. loss rate*.
    ///
    /// # Panics
    ///
    /// Panics if `airtime_per_packet_s` is negative.
    pub fn retransmit_energy_j(&self, retransmits: u64, airtime_per_packet_s: f64) -> f64 {
        assert!(airtime_per_packet_s >= 0.0, "airtime {airtime_per_packet_s} negative");
        let rx = airtime_per_packet_s * (self.wnic_rx_w - self.wnic_idle_w);
        let tx = Self::NACK_AIRTIME_FRAC * airtime_per_packet_s * (self.wnic_tx_w - self.wnic_idle_w);
        retransmits as f64 * (rx + tx)
    }

    /// Total device power, in watts.
    ///
    /// * `cpu_busy` — fraction of CPU time spent decoding, `[0, 1]`;
    /// * `wnic_active` — whether the stream is being received;
    /// * `backlight_w` — instantaneous backlight power from the display
    ///   model.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_busy` is outside `[0, 1]` or `backlight_w` negative.
    pub fn power_w(&self, cpu_busy: f64, wnic_active: bool, backlight_w: f64) -> f64 {
        assert!((0.0..=1.0).contains(&cpu_busy), "cpu_busy {cpu_busy} outside [0, 1]");
        assert!(backlight_w >= 0.0, "backlight power {backlight_w} negative");
        let cpu = self.cpu_idle_w + cpu_busy * (self.cpu_active_w - self.cpu_idle_w);
        let wnic = if wnic_active { self.wnic_rx_w } else { self.wnic_idle_w };
        self.base_w + cpu + wnic + backlight_w
    }

    /// Total device power under DVFS, in watts: the CPU's active power is
    /// scaled by `cpu_relative_power` (the frequency step's relative
    /// active power, 1.0 = maximum frequency), while `cpu_busy` is the
    /// utilisation *at that frequency*.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_busy` or `cpu_relative_power` is outside `[0, 1]`,
    /// or `backlight_w` is negative.
    pub fn power_w_dvfs(
        &self,
        cpu_busy: f64,
        cpu_relative_power: f64,
        wnic_active: bool,
        backlight_w: f64,
    ) -> f64 {
        assert!((0.0..=1.0).contains(&cpu_busy), "cpu_busy {cpu_busy} outside [0, 1]");
        assert!(
            (0.0..=1.0).contains(&cpu_relative_power),
            "relative power {cpu_relative_power} outside [0, 1]"
        );
        assert!(backlight_w >= 0.0, "backlight power {backlight_w} negative");
        let cpu = self.cpu_idle_w + cpu_busy * (self.cpu_active_w - self.cpu_idle_w) * cpu_relative_power;
        let wnic = if wnic_active { self.wnic_rx_w } else { self.wnic_idle_w };
        self.base_w + cpu + wnic + backlight_w
    }

    /// Total device power with a fractional WNIC receive duty cycle:
    /// `wnic_duty` = 1 is continuous reception, 0 is associated-idle.
    /// Burst prefetching (download a scene, idle the radio) lands between.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_busy` or `wnic_duty` is outside `[0, 1]`, or
    /// `backlight_w` is negative.
    pub fn power_w_duty(&self, cpu_busy: f64, wnic_duty: f64, backlight_w: f64) -> f64 {
        assert!((0.0..=1.0).contains(&cpu_busy), "cpu_busy {cpu_busy} outside [0, 1]");
        assert!((0.0..=1.0).contains(&wnic_duty), "wnic duty {wnic_duty} outside [0, 1]");
        assert!(backlight_w >= 0.0, "backlight power {backlight_w} negative");
        let cpu = self.cpu_idle_w + cpu_busy * (self.cpu_active_w - self.cpu_idle_w);
        let wnic = self.wnic_idle_w + wnic_duty * (self.wnic_rx_w - self.wnic_idle_w);
        self.base_w + cpu + wnic + backlight_w
    }

    /// The backlight's share of total power in a given operating point —
    /// used to check the "25–30 % of total" calibration.
    pub fn backlight_share(&self, cpu_busy: f64, wnic_active: bool, backlight_w: f64) -> f64 {
        backlight_w / self.power_w(cpu_busy, wnic_active, backlight_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_point_matches_paper_share() {
        // Full backlight on the iPAQ 5555 is 0.85 W (display model); the
        // share must land in the paper's 25–30 % band.
        let m = SystemPowerModel::ipaq_5555();
        let share = m.backlight_share(0.8, true, 0.85);
        assert!((0.25..=0.30).contains(&share), "share {share:.3}");
    }

    #[test]
    fn power_monotone_in_cpu_load() {
        let m = SystemPowerModel::ipaq_5555();
        assert!(m.power_w(0.0, true, 0.5) < m.power_w(0.5, true, 0.5));
        assert!(m.power_w(0.5, true, 0.5) < m.power_w(1.0, true, 0.5));
    }

    #[test]
    fn wnic_rx_costs_more_than_idle() {
        let m = SystemPowerModel::ipaq_5555();
        assert!(m.power_w(0.5, true, 0.5) > m.power_w(0.5, false, 0.5));
    }

    #[test]
    fn backlight_adds_linearly() {
        let m = SystemPowerModel::ipaq_5555();
        let p0 = m.power_w(0.5, true, 0.0);
        let p1 = m.power_w(0.5, true, 0.85);
        assert!((p1 - p0 - 0.85).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_cpu_load() {
        SystemPowerModel::ipaq_5555().power_w(1.5, true, 0.0);
    }

    #[test]
    fn duty_endpoints_match_bool_model() {
        let m = SystemPowerModel::ipaq_5555();
        assert!((m.power_w_duty(0.5, 1.0, 0.4) - m.power_w(0.5, true, 0.4)).abs() < 1e-12);
        assert!((m.power_w_duty(0.5, 0.0, 0.4) - m.power_w(0.5, false, 0.4)).abs() < 1e-12);
    }

    #[test]
    fn duty_interpolates_monotonically() {
        let m = SystemPowerModel::ipaq_5555();
        let lo = m.power_w_duty(0.5, 0.2, 0.4);
        let hi = m.power_w_duty(0.5, 0.8, 0.4);
        assert!(lo < hi);
    }

    #[test]
    fn dvfs_at_full_speed_matches_plain_model() {
        let m = SystemPowerModel::ipaq_5555();
        assert!((m.power_w_dvfs(0.7, 1.0, true, 0.5) - m.power_w(0.7, true, 0.5)).abs() < 1e-12);
    }

    #[test]
    fn dvfs_reduced_frequency_saves_cpu_power() {
        let m = SystemPowerModel::ipaq_5555();
        // Lower frequency: more utilisation but much less per-cycle power.
        let full = m.power_w_dvfs(0.5, 1.0, true, 0.5);
        let slow = m.power_w_dvfs(0.9, 0.4, true, 0.5);
        assert!(slow < full, "slow {slow} vs full {full}");
    }

    #[test]
    #[should_panic(expected = "relative power")]
    fn dvfs_rejects_bad_relative_power() {
        SystemPowerModel::ipaq_5555().power_w_dvfs(0.5, 1.5, true, 0.0);
    }

    #[test]
    fn retransmit_energy_scales_linearly_and_is_zero_at_zero() {
        let m = SystemPowerModel::ipaq_5555();
        let slot = 1500.0 * 8.0 / 5_000_000.0; // one MTU at 5 Mbit/s
        assert_eq!(m.retransmit_energy_j(0, slot), 0.0);
        let one = m.retransmit_energy_j(1, slot);
        assert!(one > 0.0);
        assert!((m.retransmit_energy_j(10, slot) - 10.0 * one).abs() < 1e-12);
        // Each retransmit costs more than pure rx airtime (the NACK tx).
        assert!(one > slot * (m.wnic_rx_w - m.wnic_idle_w));
        // ... but stays the same order of magnitude.
        assert!(one < 2.0 * slot * (m.wnic_rx_w - m.wnic_idle_w));
    }

    #[test]
    fn tx_draws_more_than_rx() {
        let m = SystemPowerModel::ipaq_5555();
        assert!(m.wnic_tx_w > m.wnic_rx_w);
    }

    #[test]
    fn idle_device_draw_is_plausible() {
        let m = SystemPowerModel::ipaq_5555();
        let idle = m.power_w(0.0, false, 0.0);
        assert!(idle > 0.8 && idle < 1.5, "idle {idle} W");
    }
}
