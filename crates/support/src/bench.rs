//! A minimal wall-clock benchmark harness with a criterion-shaped API,
//! so the `crates/bench/benches` files keep their structure:
//! `criterion_group!`/`criterion_main!`, benchmark groups, throughput
//! annotation, `iter`/`iter_batched`.
//!
//! Methodology: an adaptive warmup sizes the per-sample iteration batch
//! to a wall-clock target, then [`SAMPLES`] timed samples are taken and
//! the **median** per-iteration time reported (median resists scheduler
//! noise far better than the mean on shared CI boxes). At process exit
//! `criterion_main!` prints a machine-readable JSON report of every
//! group so figures and regressions can be scripted without scraping
//! the human-readable lines.
//!
//! Environment knobs: `ANNOLIGHT_BENCH_SAMPLES` (default 15) and
//! `ANNOLIGHT_BENCH_TARGET_MS` (per-sample batch target, default 20).

use crate::json::{Json, ToJson};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
pub const SAMPLES: usize = 15;

/// Default wall-clock target for one sample batch, milliseconds.
pub const TARGET_MS: u64 = 20;

/// Throughput annotation: per-iteration element or byte counts turn the
/// time report into a rate report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup; only the small-input variant is
/// needed (and the distinction barely matters at our scales).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is cheap to hold; batch freely.
    SmallInput,
    /// Larger per-iteration state; semantically identical here.
    LargeInput,
}

/// One measured benchmark, as recorded into the JSON report.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` identifier.
    pub id: String,
    /// Median per-iteration wall-clock time, nanoseconds.
    pub median_ns: f64,
    /// Minimum observed sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Maximum observed sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Timed samples taken.
    pub samples: usize,
    /// Optional throughput rate, units per second.
    pub rate: Option<(f64, &'static str)>,
}

impl ToJson for Measurement {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            ("median_ns".to_string(), Json::Float(self.median_ns)),
            ("min_ns".to_string(), Json::Float(self.min_ns)),
            ("max_ns".to_string(), Json::Float(self.max_ns)),
            ("iters_per_sample".to_string(), Json::Int(i128::from(self.iters_per_sample))),
            ("samples".to_string(), Json::Int(self.samples as i128)),
        ];
        if let Some((rate, unit)) = self.rate {
            pairs.push(("rate".to_string(), Json::Float(rate)));
            pairs.push(("rate_unit".to_string(), Json::Str(unit.to_string())));
        }
        Json::Obj(pairs)
    }
}

/// Top-level harness state; the analogue of `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Fresh harness.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { harness: self, name: name.into(), throughput: None }
    }

    /// All measurements so far.
    #[must_use]
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// The whole run as a JSON document.
    #[must_use]
    pub fn report_json(&self) -> Json {
        Json::Obj(vec![
            ("harness".to_string(), Json::Str("annolight-support/bench".to_string())),
            (
                "benchmarks".to_string(),
                Json::Arr(self.results.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent functions.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Measures one function.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { samples: Vec::new(), iters_per_sample: 0 };
        f(&mut b);
        let id = format!("{}/{name}", self.name);
        let m = b.finish(id, self.throughput);
        eprintln!(
            "bench {:<44} median {:>12}  min {:>12}{}",
            m.id,
            fmt_ns(m.median_ns),
            fmt_ns(m.min_ns),
            m.rate.map_or_else(String::new, |(r, u)| format!("  {} {u}/s", fmt_rate(r))),
        );
        self.harness.results.push(m);
    }

    /// Ends the group (kept for criterion API parity; no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

fn samples_count() -> usize {
    std::env::var("ANNOLIGHT_BENCH_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(SAMPLES)
}

fn target_batch() -> Duration {
    let ms = std::env::var("ANNOLIGHT_BENCH_TARGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(TARGET_MS);
    Duration::from_millis(ms)
}

impl Bencher {
    /// Times `routine`, called in adaptively-sized batches.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup doubles the batch until one batch crosses the target.
        let target = target_batch();
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= target || iters >= 1 << 24 {
                break;
            }
            // Jump close to the target in one step once we have signal.
            let scale = target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = (iters.saturating_mul(scale.ceil() as u64)).clamp(iters + 1, 1 << 24);
        }
        self.iters_per_sample = iters;
        for _ in 0..samples_count() {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over fresh `setup` output each iteration, with
    /// setup excluded from the timing.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let target = target_batch();
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = t0.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                break;
            }
            let scale = target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = (iters.saturating_mul(scale.ceil() as u64)).clamp(iters + 1, 1 << 20);
        }
        self.iters_per_sample = iters;
        for _ in 0..samples_count() {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn finish(self, id: String, throughput: Option<Throughput>) -> Measurement {
        assert!(!self.samples.is_empty(), "bench `{id}` never called iter()");
        let iters = self.iters_per_sample.max(1);
        let mut per_iter: Vec<f64> =
            self.samples.iter().map(|d| d.as_secs_f64() * 1e9 / iters as f64).collect();
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => (n as f64 / (median * 1e-9), "elem"),
            Throughput::Bytes(n) => (n as f64 / (median * 1e-9), "B"),
        });
        Measurement {
            id,
            median_ns: median,
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            iters_per_sample: iters,
            samples: per_iter.len(),
            rate,
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2}k", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

/// Declares a benchmark group function, criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);` defines
/// `fn benches(c: &mut Criterion)` running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::bench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main()` running the listed groups and printing the JSON
/// report at the end.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::new();
            $($group(&mut c);)+
            println!("{}", c.report_json().pretty());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        // Keep it fast: tiny batch target, few samples.
        std::env::set_var("ANNOLIGHT_BENCH_SAMPLES", "3");
        std::env::set_var("ANNOLIGHT_BENCH_TARGET_MS", "1");
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("unit");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.iter().map(|&x| u64::from(x)).sum::<u64>(),
                BatchSize::SmallInput);
        });
        g.finish();
        std::env::remove_var("ANNOLIGHT_BENCH_SAMPLES");
        std::env::remove_var("ANNOLIGHT_BENCH_TARGET_MS");
        assert_eq!(c.results().len(), 2);
        let m = &c.results()[0];
        assert_eq!(m.id, "unit/sum");
        assert!(m.median_ns > 0.0 && m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert!(m.rate.unwrap().0 > 0.0);
        let doc = c.report_json().to_string();
        assert!(doc.contains("unit/sum") && doc.contains("rate"));
    }
}
