//! A small free-list buffer pool for allocation-free steady states.
//!
//! The transcode hot path touches several per-frame buffers (RGB
//! frames, YUV planes, packet bodies). Allocating them per frame is
//! cheap individually but shows up as steady allocator traffic at fleet
//! scale — and makes per-frame latency depend on allocator state. This
//! module provides the reuse primitive the pipeline threads through its
//! `*_into` APIs: a [`BytePool`] hands out [`PooledBuf`] guards that
//! return their `Vec<u8>` to the pool on drop, so a warm loop recycles
//! the same handful of allocations forever.
//!
//! The pool is deliberately minimal:
//!
//! * **Unbounded free list, bounded by use** — the pool never holds more
//!   buffers than the peak number simultaneously checked out.
//! * **No clearing on return** — callers that need zeroed memory clear
//!   explicitly; the typical user overwrites every byte anyway.
//! * **Stats, not policy** — [`PoolStats`] counts hits/misses so the
//!   allocation-regression tests can assert a warm loop never misses;
//!   eviction policy is left to the owner (drop the pool).
//!
//! # Example
//!
//! ```
//! use annolight_support::pool::BytePool;
//! let pool = BytePool::new();
//! {
//!     let mut buf = pool.take(1024);
//!     buf.extend_from_slice(&[1, 2, 3]);
//! } // buffer returns to the pool here
//! let again = pool.take(512); // reuses the 1024-byte allocation
//! assert_eq!(pool.stats().hits, 1);
//! assert!(again.capacity() >= 1024);
//! ```

use crate::sync::Mutex;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Counters describing a pool's reuse behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Checkouts satisfied from the free list without allocating.
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer (or grow a free one
    /// whose capacity fell short).
    pub misses: u64,
    /// Buffers currently in the free list.
    pub idle: usize,
    /// Buffers currently checked out.
    pub in_use: usize,
}

#[derive(Default)]
struct PoolInner {
    free: Vec<Vec<u8>>,
    hits: u64,
    misses: u64,
    in_use: usize,
}

/// A shared free-list pool of `Vec<u8>` buffers.
///
/// Cloning the pool clones the *handle*; all clones share one free list
/// (the guards hold the same handle, so buffers can be returned from a
/// different thread than they were taken on).
#[derive(Clone, Default)]
pub struct BytePool {
    inner: Arc<Mutex<PoolInner>>,
}

impl BytePool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a buffer with `len == 0` and capacity at least
    /// `capacity`, reusing the largest free buffer when one exists.
    ///
    /// A reused buffer whose capacity falls short is grown in place,
    /// which counts as a miss (the steady state never hits this: the
    /// free list converges to the peak sizes of the loop).
    #[must_use]
    pub fn take(&self, capacity: usize) -> PooledBuf {
        let mut inner = self.inner.lock();
        inner.in_use += 1;
        let mut buf = match inner.free.pop() {
            Some(b) => {
                if b.capacity() >= capacity {
                    inner.hits += 1;
                } else {
                    inner.misses += 1;
                }
                b
            }
            None => {
                inner.misses += 1;
                Vec::new()
            }
        };
        drop(inner);
        buf.clear();
        buf.reserve(capacity);
        PooledBuf { buf, pool: self.clone() }
    }

    /// Checks out a buffer of exactly `len` bytes, zero-filled only where
    /// the reused buffer was shorter (contents are otherwise arbitrary —
    /// callers overwrite them).
    #[must_use]
    pub fn take_len(&self, len: usize) -> PooledBuf {
        let mut b = self.take(len);
        b.resize(len, 0);
        b
    }

    /// Returns a buffer to the free list (used by the guard's `Drop`).
    fn put_back(&self, buf: Vec<u8>) {
        let mut inner = self.inner.lock();
        inner.in_use = inner.in_use.saturating_sub(1);
        inner.free.push(buf);
    }

    /// Current reuse counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats {
            hits: inner.hits,
            misses: inner.misses,
            idle: inner.free.len(),
            in_use: inner.in_use,
        }
    }

    /// Drops every idle buffer (checked-out guards are unaffected and
    /// still return to the pool).
    pub fn shrink(&self) {
        self.inner.lock().free.clear();
    }
}

impl std::fmt::Debug for BytePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BytePool")
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("idle", &s.idle)
            .field("in_use", &s.in_use)
            .finish()
    }
}

/// An RAII guard around a pooled `Vec<u8>`: derefs to the vector and
/// returns it to its pool on drop.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: BytePool,
}

impl PooledBuf {
    /// Detaches the buffer from the pool (it will not be returned).
    #[must_use]
    pub fn into_vec(mut self) -> Vec<u8> {
        // Swap out so Drop returns an empty vec's worth of nothing —
        // an empty Vec never allocated, so pushing it back is harmless,
        // but skip it entirely for clean stats.
        let buf = std::mem::take(&mut self.buf);
        let mut inner = self.pool.inner.lock();
        inner.in_use = inner.in_use.saturating_sub(1);
        drop(inner);
        std::mem::forget(self);
        buf
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        self.pool.put_back(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_take_misses_then_hits() {
        let pool = BytePool::new();
        {
            let mut a = pool.take(100);
            a.extend_from_slice(&[7; 50]);
        }
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().idle, 1);
        let b = pool.take(80);
        assert_eq!(pool.stats().hits, 1);
        assert!(b.is_empty(), "reused buffers come back cleared");
        assert!(b.capacity() >= 100);
    }

    #[test]
    fn warm_loop_never_misses() {
        let pool = BytePool::new();
        // Warm-up: one miss.
        drop(pool.take_len(4096));
        let before = pool.stats();
        for _ in 0..1000 {
            let mut b = pool.take_len(4096);
            b[0] = 1;
        }
        let after = pool.stats();
        assert_eq!(after.misses, before.misses, "warm loop allocated");
        assert_eq!(after.hits, before.hits + 1000);
        assert_eq!(after.idle, 1);
        assert_eq!(after.in_use, 0);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_buffers() {
        let pool = BytePool::new();
        let mut a = pool.take_len(16);
        let mut b = pool.take_len(16);
        a[0] = 1;
        b[0] = 2;
        assert_eq!((a[0], b[0]), (1, 2));
        assert_eq!(pool.stats().in_use, 2);
        drop(a);
        drop(b);
        assert_eq!(pool.stats().idle, 2);
    }

    #[test]
    fn into_vec_detaches() {
        let pool = BytePool::new();
        let v = pool.take_len(8).into_vec();
        assert_eq!(v.len(), 8);
        assert_eq!(pool.stats().idle, 0);
        assert_eq!(pool.stats().in_use, 0);
    }

    #[test]
    fn shrink_empties_free_list() {
        let pool = BytePool::new();
        drop(pool.take(64));
        assert_eq!(pool.stats().idle, 1);
        pool.shrink();
        assert_eq!(pool.stats().idle, 0);
    }

    #[test]
    fn cross_thread_return() {
        let pool = BytePool::new();
        let buf = pool.take_len(32);
        let p2 = pool.clone();
        std::thread::spawn(move || drop(buf)).join().unwrap();
        assert_eq!(p2.stats().idle, 1);
    }
}
