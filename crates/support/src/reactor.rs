//! Deterministic cooperative event loop ("session reactor") over
//! **virtual time**.
//!
//! Thread-per-session pins an OS stack per live playback; this reactor
//! hosts 10⁵⁺ sessions in one process by making each session a resumable
//! state machine ([`Task`]) stepped by a scheduler that owns a
//! [`crate::wheel::TimerWheel`] for deadlines and poll-style readiness
//! probes ([`ReadySource`]) over the in-tree [`crate::channel`]s.
//!
//! ## Determinism contract
//!
//! The schedule itself is part of the seeded experiment, exactly like
//! the stream tier's `FaultyChannel`:
//!
//! * Each round drains the ready queue into a batch and applies a
//!   seeded Fisher–Yates shuffle (one [`crate::rng::SmallRng`] stream
//!   per reactor) — same seed ⇒ same interleaving, different seed ⇒ a
//!   genuinely different one.
//! * Virtual time only advances when no task is ready, jumping straight
//!   to the wheel's next deadline; expiry order is `(deadline,
//!   insertion-seq)`.
//! * Parked waiters are re-polled in ascending task-id order.
//! * With `workers > 1` the batch is stepped by scoped threads in
//!   disjoint chunks, but step *results* are recorded and applied in
//!   batch order — so the trace digest is invariant across
//!   `workers ∈ {1, N}` for tasks that don't share mutable state
//!   (sessions are independent by construction). Tasks that do interact
//!   through a shared service must run with `workers ≤ 1`.
//!
//! Every step appends an event to an FNV-1a trace digest; two runs are
//! schedule-identical iff their digests match, which is what the CI
//! double-run guard compares.

use crate::channel::{Receiver, TryRecvError};
use crate::rng::SmallRng;
use crate::sync::Mutex;
use crate::wheel::{secs_from_ticks, TimerWheel};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Identifies a spawned task within one reactor.
pub type TaskId = usize;

/// Result of probing a [`ReadySource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readiness {
    /// A value (or terminal event) is available; wake the task.
    Ready,
    /// Nothing yet; keep the task parked.
    Pending,
    /// The other side is gone. The task is woken so it can observe
    /// closure — a parked task never sleeps through a hangup.
    Closed,
}

/// A non-blocking readiness probe a task hands to the reactor when it
/// parks. The reactor polls it; the task never blocks a thread.
pub trait ReadySource: Send {
    /// Probes for readiness without blocking.
    fn poll_ready(&mut self) -> Readiness;
}

/// What a task tells the scheduler after one cooperative step.
pub enum Step {
    /// Re-run in the next round.
    Yield,
    /// Park until the absolute virtual tick (see
    /// [`crate::wheel::ticks_from_secs`]). Past deadlines behave like
    /// [`Step::Yield`] with timer-expiry ordering.
    Sleep(u64),
    /// Park until `source` reports [`Readiness::Ready`] or
    /// [`Readiness::Closed`].
    Wait(Box<dyn ReadySource>),
    /// The task is finished and will never be stepped again.
    Done,
}

impl std::fmt::Debug for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Yield => write!(f, "Yield"),
            Step::Sleep(t) => write!(f, "Sleep({t})"),
            Step::Wait(_) => write!(f, "Wait(..)"),
            Step::Done => write!(f, "Done"),
        }
    }
}

/// Per-step context handed to [`Task::step`].
#[derive(Debug, Clone, Copy)]
pub struct Context {
    /// Current virtual tick.
    pub now_ticks: u64,
    /// The id of the task being stepped.
    pub task: TaskId,
    /// The scheduler round (batches stepped so far).
    pub round: u64,
}

impl Context {
    /// Current virtual time in simulated seconds.
    #[must_use]
    pub fn now_secs(&self) -> f64 {
        secs_from_ticks(self.now_ticks)
    }
}

/// A resumable cooperative state machine hosted by the reactor.
pub trait Task: Send {
    /// Runs one bounded slice of work and reports how to reschedule.
    fn step(&mut self, cx: &Context) -> Step;
}

// ---------------------------------------------------------------------------
// Readiness adapter over support::channel.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct PollShared<T> {
    rx: Receiver<T>,
    buf: VecDeque<T>,
    closed: bool,
}

impl<T> PollShared<T> {
    fn pump(&mut self) {
        if self.closed {
            return;
        }
        loop {
            match self.rx.try_recv() {
                Ok(v) => self.buf.push_back(v),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.closed = true;
                    break;
                }
            }
        }
    }
}

/// Poll-style adapter over a [`crate::channel::Receiver`]: buffers
/// whatever has arrived so a task can `try_take` without blocking, and
/// hands out cloneable [`ReadySource`] probes via [`PollRx::source`].
#[derive(Debug)]
pub struct PollRx<T> {
    shared: Arc<Mutex<PollShared<T>>>,
}

impl<T> Clone for PollRx<T> {
    fn clone(&self) -> Self {
        PollRx { shared: Arc::clone(&self.shared) }
    }
}

impl<T: Send> PollRx<T> {
    /// Wraps a receiver for non-blocking reactor use.
    #[must_use]
    pub fn new(rx: Receiver<T>) -> Self {
        PollRx {
            shared: Arc::new(Mutex::new(PollShared { rx, buf: VecDeque::new(), closed: false })),
        }
    }

    /// A probe suitable for [`Step::Wait`].
    #[must_use]
    pub fn source(&self) -> PollRxSource<T> {
        PollRxSource { shared: Arc::clone(&self.shared) }
    }

    /// Takes the next buffered/arrived value, if any.
    pub fn try_take(&self) -> Option<T> {
        let mut shared = self.shared.lock();
        shared.pump();
        shared.buf.pop_front()
    }

    /// Whether every sender is gone *and* the buffer is drained.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        let mut shared = self.shared.lock();
        shared.pump();
        shared.closed && shared.buf.is_empty()
    }
}

/// The [`ReadySource`] half of a [`PollRx`].
#[derive(Debug)]
pub struct PollRxSource<T> {
    shared: Arc<Mutex<PollShared<T>>>,
}

impl<T: Send> ReadySource for PollRxSource<T> {
    fn poll_ready(&mut self) -> Readiness {
        let mut shared = self.shared.lock();
        shared.pump();
        if !shared.buf.is_empty() {
            Readiness::Ready
        } else if shared.closed {
            Readiness::Closed
        } else {
            Readiness::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Trace digest.
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a over scheduler events; the "schedule fingerprint"
/// the determinism tests and CI double-run guard compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDigest(u64);

impl TraceDigest {
    fn new() -> Self {
        TraceDigest(FNV_OFFSET)
    }

    fn fold(&mut self, words: &[u64]) {
        for w in words {
            for b in w.to_le_bytes() {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(FNV_PRIME);
            }
        }
    }

    /// The digest value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }

    /// The digest as fixed-width hex (for logs and JSON).
    #[must_use]
    pub fn to_hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

// ---------------------------------------------------------------------------
// Scheduler.
// ---------------------------------------------------------------------------

/// Tuning knobs for a [`Reactor`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Seed of the schedule-shuffle RNG stream.
    pub seed: u64,
    /// Step workers: `0` or `1` steps batches on the caller thread; `N`
    /// steps disjoint chunks on scoped threads (results still applied in
    /// batch order).
    pub workers: usize,
    /// `true` when parked sources are fed by *external* OS threads (e.g.
    /// a serve worker pool): the idle loop then parks with a timeout and
    /// re-polls instead of declaring deadlock.
    pub external_wakeups: bool,
    /// Record a human-readable event trace (tests only; the digest is
    /// always maintained).
    pub record_trace: bool,
    /// Abort after this many rounds (`0` = unlimited) — a runaway-task
    /// backstop for tests.
    pub max_rounds: u64,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            seed: 0,
            workers: 1,
            external_wakeups: false,
            record_trace: false,
            max_rounds: 0,
        }
    }
}

/// RNG stream id for the schedule shuffle (disjoint from the stream
/// tier's fault streams, which derive from their own seeds).
pub const REACTOR_SCHED_STREAM: u64 = 0x5EAC;

enum TaskState {
    Ready,
    Sleeping,
    Waiting(Box<dyn ReadySource>),
    Finished,
}

struct TaskSlot {
    task: Option<Box<dyn Task>>,
    state: TaskState,
}

/// Summary of one [`Reactor::run`].
#[derive(Debug, Clone)]
pub struct ReactorReport {
    /// Tasks ever spawned.
    pub tasks: usize,
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// Total task steps applied.
    pub steps: u64,
    /// Final virtual tick.
    pub final_ticks: u64,
    /// Schedule fingerprint (see [`TraceDigest`]).
    pub digest: TraceDigest,
    /// Human-readable events when `record_trace` was set.
    pub trace: Vec<String>,
}

/// The deterministic session reactor. Spawn tasks, call [`Self::run`].
pub struct Reactor {
    config: ReactorConfig,
    slots: Vec<TaskSlot>,
    ready: Vec<TaskId>,
    waiting: Vec<TaskId>,
    wheel: TimerWheel<TaskId>,
    rng: SmallRng,
    live: usize,
    rounds: u64,
    steps: u64,
    digest: TraceDigest,
    trace: Vec<String>,
}

/// How long the idle loop parks between re-polls when waiting on
/// external wakeups — a sleep, not a spin (see [`crate::sync::Parker`]).
const EXTERNAL_PARK: Duration = Duration::from_micros(200);

/// Consecutive fruitless external-wakeup polls before declaring the
/// reactor wedged (~10 s of wall clock at [`EXTERNAL_PARK`]).
const EXTERNAL_PARK_LIMIT: u64 = 50_000;

impl Reactor {
    /// A reactor with the given schedule seed and defaults otherwise.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_config(ReactorConfig { seed, ..ReactorConfig::default() })
    }

    /// A reactor with explicit configuration.
    #[must_use]
    pub fn with_config(config: ReactorConfig) -> Self {
        let rng = SmallRng::stream(config.seed, REACTOR_SCHED_STREAM);
        Reactor {
            config,
            slots: Vec::new(),
            ready: Vec::new(),
            waiting: Vec::new(),
            wheel: TimerWheel::new(),
            rng,
            live: 0,
            rounds: 0,
            steps: 0,
            digest: TraceDigest::new(),
            trace: Vec::new(),
        }
    }

    /// Registers a task; it becomes runnable in the next round.
    pub fn spawn(&mut self, task: Box<dyn Task>) -> TaskId {
        let id = self.slots.len();
        self.slots.push(TaskSlot { task: Some(task), state: TaskState::Ready });
        self.ready.push(id);
        self.live += 1;
        id
    }

    /// Live (not yet finished) task count.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    fn record(&mut self, round: u64, id: TaskId, step: &Step, now: u64) {
        let (kind, arg) = match step {
            Step::Yield => (0u64, 0u64),
            Step::Sleep(d) => (1, *d),
            Step::Wait(_) => (2, 0),
            Step::Done => (3, 0),
        };
        self.digest.fold(&[round, id as u64, kind, arg, now]);
        if self.config.record_trace {
            let name = ["yield", "sleep", "wait", "done"][kind as usize];
            self.trace.push(format!("r{round} t{id} {name}({arg}) @{now}"));
        }
    }

    /// Polls parked waiters in ascending task-id order, waking any whose
    /// source is `Ready` or `Closed`. Returns how many woke.
    fn poll_waiters(&mut self) -> usize {
        self.waiting.sort_unstable();
        let mut woke = 0;
        let mut still = Vec::with_capacity(self.waiting.len());
        for id in std::mem::take(&mut self.waiting) {
            let ready = match &mut self.slots[id].state {
                TaskState::Waiting(src) => !matches!(src.poll_ready(), Readiness::Pending),
                _ => unreachable!("waiting list holds only Waiting tasks"),
            };
            if ready {
                self.slots[id].state = TaskState::Ready;
                self.ready.push(id);
                woke += 1;
            } else {
                still.push(id);
            }
        }
        self.waiting = still;
        woke
    }

    /// Steps one batch of ready tasks. Returns `false` when there was
    /// nothing ready.
    fn run_round(&mut self) -> bool {
        if self.ready.is_empty() {
            return false;
        }
        self.rounds += 1;
        let round = self.rounds;
        let now = self.wheel.now();

        // Seeded Fisher–Yates over the batch: the interleaving is part
        // of the experiment.
        let mut batch = std::mem::take(&mut self.ready);
        for i in (1..batch.len()).rev() {
            let j = self.rng.below(i as u64 + 1) as usize;
            batch.swap(i, j);
        }

        let mut taken: Vec<(TaskId, Box<dyn Task>)> = batch
            .iter()
            .map(|&id| (id, self.slots[id].task.take().expect("ready task present")))
            .collect();

        let workers = self.config.workers.max(1);
        let results: Vec<Step> = if workers > 1 && taken.len() >= 2 * workers {
            let chunk = taken.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = taken
                    .chunks_mut(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter_mut()
                                .map(|(id, task)| {
                                    task.step(&Context { now_ticks: now, task: *id, round })
                                })
                                .collect::<Vec<Step>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("reactor step worker panicked"))
                    .collect()
            })
        } else {
            taken
                .iter_mut()
                .map(|(id, task)| task.step(&Context { now_ticks: now, task: *id, round }))
                .collect()
        };

        // Apply in batch order — identical regardless of worker count.
        for ((id, task), step) in taken.into_iter().zip(results) {
            self.steps += 1;
            self.record(round, id, &step, now);
            self.slots[id].task = Some(task);
            match step {
                Step::Yield => {
                    self.slots[id].state = TaskState::Ready;
                    self.ready.push(id);
                }
                Step::Sleep(deadline) => {
                    self.slots[id].state = TaskState::Sleeping;
                    self.wheel.schedule(deadline, id);
                }
                Step::Wait(source) => {
                    self.slots[id].state = TaskState::Waiting(source);
                    self.waiting.push(id);
                }
                Step::Done => {
                    self.slots[id].state = TaskState::Finished;
                    self.slots[id].task = None;
                    self.live -= 1;
                }
            }
        }
        true
    }

    /// Runs until every task is [`Step::Done`].
    ///
    /// # Panics
    ///
    /// Panics on deadlock (parked tasks, no timers, no external
    /// wakeups), on a wedged external wait, or past `max_rounds`.
    pub fn run(&mut self) -> ReactorReport {
        let mut expired: Vec<(u64, TaskId)> = Vec::new();
        let mut idle_polls: u64 = 0;
        let parker = crate::sync::Parker::new();
        while self.live > 0 {
            if self.config.max_rounds > 0 && self.rounds >= self.config.max_rounds {
                panic!(
                    "reactor exceeded max_rounds={} with {} tasks live",
                    self.config.max_rounds, self.live
                );
            }
            if self.run_round() {
                idle_polls = 0;
                continue;
            }
            // Nothing ready: wake any satisfied waiters first…
            if self.poll_waiters() > 0 {
                idle_polls = 0;
                continue;
            }
            // …then let virtual time jump to the next deadline.
            if let Some(deadline) = self.wheel.next_deadline() {
                expired.clear();
                self.wheel.advance_to(deadline, &mut expired);
                for &(_, id) in &expired {
                    self.slots[id].state = TaskState::Ready;
                    self.ready.push(id);
                }
                idle_polls = 0;
                continue;
            }
            // No ready tasks, no timers — only external senders can
            // unblock us now.
            assert!(
                !self.waiting.is_empty(),
                "reactor invariant: live tasks but none ready/sleeping/waiting"
            );
            assert!(
                self.config.external_wakeups,
                "reactor deadlock: {} tasks waiting on sources nothing will feed \
                 (set external_wakeups when sources are fed by OS threads)",
                self.waiting.len()
            );
            idle_polls += 1;
            assert!(
                idle_polls < EXTERNAL_PARK_LIMIT,
                "reactor wedged: {} tasks still waiting after {} park/poll cycles",
                self.waiting.len(),
                idle_polls
            );
            // Sleep (don't spin) before the next poll sweep.
            parker.park_timeout(EXTERNAL_PARK);
        }
        ReactorReport {
            tasks: self.slots.len(),
            rounds: self.rounds,
            steps: self.steps,
            final_ticks: self.wheel.now(),
            digest: self.digest,
            trace: std::mem::take(&mut self.trace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel;

    /// Counts down, alternating yield/sleep, then reports its id.
    struct CountDown {
        left: u32,
        period: u64,
        out: channel::Sender<TaskId>,
    }

    impl Task for CountDown {
        fn step(&mut self, cx: &Context) -> Step {
            if self.left == 0 {
                self.out.send(cx.task).unwrap();
                return Step::Done;
            }
            self.left -= 1;
            if self.left % 2 == 0 {
                Step::Yield
            } else {
                Step::Sleep(cx.now_ticks + self.period)
            }
        }
    }

    fn countdown_digest(seed: u64, workers: usize, n: usize) -> (u64, Vec<TaskId>) {
        let mut reactor = Reactor::with_config(ReactorConfig {
            seed,
            workers,
            ..ReactorConfig::default()
        });
        let (tx, rx) = channel::unbounded();
        for i in 0..n {
            reactor.spawn(Box::new(CountDown {
                left: 3 + (i as u32 % 5),
                period: 10 + i as u64,
                out: tx.clone(),
            }));
        }
        drop(tx);
        let report = reactor.run();
        (report.digest.value(), rx.iter().collect())
    }

    #[test]
    fn same_seed_same_digest_and_completion_order() {
        let (d1, order1) = countdown_digest(42, 1, 40);
        let (d2, order2) = countdown_digest(42, 1, 40);
        assert_eq!(d1, d2);
        assert_eq!(order1, order2);
        assert_eq!(order1.len(), 40);
    }

    #[test]
    fn different_seed_different_schedule() {
        let (d1, _) = countdown_digest(1, 1, 40);
        let (d2, _) = countdown_digest(2, 1, 40);
        assert_ne!(d1, d2, "schedule shuffle must depend on the seed");
    }

    #[test]
    fn digest_invariant_across_worker_counts() {
        let (d1, order1) = countdown_digest(7, 1, 64);
        let (d4, order4) = countdown_digest(7, 4, 64);
        assert_eq!(d1, d4, "worker count must not change the schedule");
        assert_eq!(order1, order4);
    }

    #[test]
    fn wait_wakes_on_ready_and_closed() {
        // Producer sends one value then hangs up; consumer must see the
        // value, then observe closure, then finish.
        struct Producer {
            tx: Option<channel::Sender<u32>>,
            sent: bool,
        }
        impl Task for Producer {
            fn step(&mut self, cx: &Context) -> Step {
                if !self.sent {
                    self.sent = true;
                    self.tx.as_ref().unwrap().send(99).unwrap();
                    return Step::Sleep(cx.now_ticks + 100);
                }
                self.tx = None; // hang up
                Step::Done
            }
        }
        struct Consumer {
            rx: PollRx<u32>,
            got: Vec<u32>,
            out: channel::Sender<Vec<u32>>,
        }
        impl Task for Consumer {
            fn step(&mut self, _cx: &Context) -> Step {
                loop {
                    match self.rx.try_take() {
                        Some(v) => self.got.push(v),
                        None if self.rx.is_closed() => {
                            self.out.send(std::mem::take(&mut self.got)).unwrap();
                            return Step::Done;
                        }
                        None => return Step::Wait(Box::new(self.rx.source())),
                    }
                }
            }
        }
        let (tx, rx) = channel::unbounded();
        let (out_tx, out_rx) = channel::unbounded();
        let mut reactor = Reactor::new(5);
        reactor.spawn(Box::new(Producer { tx: Some(tx), sent: false }));
        reactor.spawn(Box::new(Consumer { rx: PollRx::new(rx), got: Vec::new(), out: out_tx }));
        let report = reactor.run();
        assert_eq!(out_rx.recv().unwrap(), vec![99]);
        assert!(report.rounds > 0 && report.steps >= 3);
    }

    #[test]
    #[should_panic(expected = "reactor deadlock")]
    fn deadlock_without_external_wakeups_panics() {
        struct Stuck {
            rx: PollRx<u32>,
            _tx: channel::Sender<u32>, // keep the channel open forever
        }
        impl Task for Stuck {
            fn step(&mut self, _cx: &Context) -> Step {
                Step::Wait(Box::new(self.rx.source()))
            }
        }
        let (tx, rx) = channel::unbounded();
        let mut reactor = Reactor::new(0);
        reactor.spawn(Box::new(Stuck { rx: PollRx::new(rx), _tx: tx }));
        reactor.run();
    }

    #[test]
    fn external_wakeups_resume_a_parked_task() {
        struct WaitOne {
            rx: PollRx<u32>,
            out: channel::Sender<u32>,
        }
        impl Task for WaitOne {
            fn step(&mut self, _cx: &Context) -> Step {
                match self.rx.try_take() {
                    Some(v) => {
                        self.out.send(v).unwrap();
                        Step::Done
                    }
                    None => Step::Wait(Box::new(self.rx.source())),
                }
            }
        }
        let (tx, rx) = channel::unbounded();
        let (out_tx, out_rx) = channel::unbounded();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            tx.send(7).unwrap();
        });
        let mut reactor = Reactor::with_config(ReactorConfig {
            external_wakeups: true,
            ..ReactorConfig::default()
        });
        reactor.spawn(Box::new(WaitOne { rx: PollRx::new(rx), out: out_tx }));
        reactor.run();
        sender.join().unwrap();
        assert_eq!(out_rx.recv().unwrap(), 7);
    }

    #[test]
    fn virtual_time_jumps_to_deadlines_not_through_them() {
        struct SleepOnce {
            until: u64,
            out: channel::Sender<u64>,
        }
        impl Task for SleepOnce {
            fn step(&mut self, cx: &Context) -> Step {
                if cx.now_ticks >= self.until {
                    self.out.send(cx.now_ticks).unwrap();
                    return Step::Done;
                }
                Step::Sleep(self.until)
            }
        }
        let (tx, rx) = channel::unbounded();
        let mut reactor = Reactor::new(0);
        reactor.spawn(Box::new(SleepOnce { until: 1_000_000, out: tx.clone() }));
        reactor.spawn(Box::new(SleepOnce { until: 250, out: tx }));
        let report = reactor.run();
        let wakes: Vec<u64> = rx.iter().collect();
        assert_eq!(wakes, vec![250, 1_000_000], "wakes in deadline order, exact ticks");
        assert_eq!(report.final_ticks, 1_000_000);
        assert!(report.rounds <= 6, "time must jump, not tick ({} rounds)", report.rounds);
    }

    #[test]
    fn trace_recording_matches_step_count() {
        let mut reactor = Reactor::with_config(ReactorConfig {
            record_trace: true,
            ..ReactorConfig::default()
        });
        let (tx, _rx) = channel::unbounded();
        reactor.spawn(Box::new(CountDown { left: 4, period: 10, out: tx }));
        let report = reactor.run();
        assert_eq!(report.trace.len() as u64, report.steps);
        assert!(report.trace.iter().any(|line| line.contains("done")));
    }
}
