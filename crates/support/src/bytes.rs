//! Byte-buffer types replacing the `bytes` crate: a cheaply-cloneable
//! immutable [`Bytes`], a growable write buffer [`ByteBuf`] with
//! `put_*` methods, and a bounds-checked [`Cursor`] with `get_*` reads.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Shared Debug body for the two buffer types: length plus a short hex
/// prefix, which is what you want in assertion diffs.
macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let s: &[u8] = self.as_ref();
            write!(f, "b[{} bytes:", s.len())?;
            for b in s.iter().take(16) {
                write!(f, " {b:02x}")?;
            }
            if s.len() > 16 {
                write!(f, " …")?;
            }
            write!(f, "]")
        }
    };
}

/// An immutable, reference-counted byte string. Cloning is O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self { data: Arc::from(&[][..]) }
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self { data: Arc::from(slice) }
    }

    /// The contents as a plain slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.as_slice().to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

/// A growable byte buffer with little-endian `put_*` writers, replacing
/// `bytes::BytesMut`/`BufMut` for the codec bitstream.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct ByteBuf {
    data: Vec<u8>,
}

impl ByteBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a slice.
    pub fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Reserves capacity for at least `additional` more bytes, so a
    /// caller that knows its output size up front can pre-size the
    /// buffer and keep the append loop allocation-free.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Number of bytes written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts to an immutable [`Bytes`] without copying.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Consumes the buffer as a plain vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl Deref for ByteBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for ByteBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for ByteBuf {
    fmt_bytes_debug!();
}

/// A bounds-checked forward reader with little-endian `get_*` methods.
/// Every read returns `None` past the end instead of panicking, which
/// is what a parser fed hostile input needs.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `data`.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Current read offset.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        let b = *self.data.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// Reads a `u16`, little-endian.
    pub fn get_u16_le(&mut self) -> Option<u16> {
        self.get_slice(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a `u32`, little-endian.
    pub fn get_u32_le(&mut self) -> Option<u32> {
        self.get_slice(4).map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a `u64`, little-endian.
    pub fn get_u64_le(&mut self) -> Option<u64> {
        self.get_slice(8).map(|s| {
            u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
        })
    }

    /// Reads `len` bytes as a subslice.
    pub fn get_slice(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len)?;
        let s = self.data.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytebuf_writes_and_freezes() {
        let mut b = ByteBuf::with_capacity(8);
        b.put_u8(0xAB);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_slice(&[1, 2]);
        assert_eq!(b.len(), 9);
        let frozen = b.freeze();
        assert_eq!(&frozen[..3], &[0xAB, 0x34, 0x12]);
        let clone = frozen.clone();
        assert_eq!(clone, frozen);
    }

    #[test]
    fn cursor_round_trips_and_bounds_checks() {
        let mut b = ByteBuf::new();
        b.put_u8(7);
        b.put_u16_le(513);
        b.put_u32_le(70_000);
        b.put_u64_le(u64::MAX - 1);
        let frozen = b.freeze();
        let mut c = Cursor::new(&frozen);
        assert_eq!(c.get_u8(), Some(7));
        assert_eq!(c.get_u16_le(), Some(513));
        assert_eq!(c.get_u32_le(), Some(70_000));
        assert_eq!(c.get_u64_le(), Some(u64::MAX - 1));
        assert_eq!(c.remaining(), 0);
        assert_eq!(c.get_u8(), None, "reads past the end are None, not panics");
    }

    #[test]
    fn bytes_conversions() {
        let b: Bytes = vec![1u8, 2, 3].into();
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = Bytes::copy_from_slice(&b[1..]);
        assert_eq!(&c[..], &[2, 3]);
        assert_eq!(Vec::from(c), vec![2, 3]);
        assert_eq!(Bytes::new().len(), 0);
    }
}
