//! Bounded/unbounded channels with a crossbeam-shaped API, backed by
//! `std::sync::mpsc`. The stream session model only needs SPSC delivery
//! with backpressure; `mpsc::sync_channel` provides exactly that.

use std::sync::mpsc;

/// Sending half of a channel. Cloneable; dropping every sender closes
/// the channel.
#[derive(Debug)]
pub struct Sender<T> {
    inner: SenderKind<T>,
}

// Manual impl: a derived `Clone` would demand `T: Clone`, but cloning a
// sender only clones the queue handle — the payload type is irrelevant.
impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender { inner: self.inner.clone() }
    }
}

#[derive(Debug)]
enum SenderKind<T> {
    Bounded(mpsc::SyncSender<T>),
    Unbounded(mpsc::Sender<T>),
}

impl<T> Clone for SenderKind<T> {
    fn clone(&self) -> Self {
        match self {
            SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
            SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
        }
    }
}

/// Error returned when the receiving side has hung up; carries the
/// undelivered message back, like crossbeam/mpsc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a closed channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on a closed channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`], distinguishing an empty
/// channel from a disconnected one — the crossbeam shape. (The earlier
/// `Option<T>` return collapsed the two, which made "queue drained" and
/// "peer gone" indistinguishable to pollers.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued; senders still exist.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => write!(f, "receiving on a closed channel"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Sender::try_send`], distinguishing a full
/// bounded channel from a hung-up receiver; carries the undelivered
/// message back either way (the crossbeam shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity; the receiver still exists.
    Full(T),
    /// The receiving side has hung up.
    Disconnected(T),
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a closed channel"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

impl<T> Sender<T> {
    /// Delivers `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] with the value if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.inner {
            SenderKind::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            SenderKind::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
        }
    }

    /// Non-blocking send: never parks the calling thread, which makes
    /// it safe inside a reactor task step.
    ///
    /// # Errors
    ///
    /// Returns [`TrySendError::Full`] when a bounded channel is at
    /// capacity (unbounded channels are never full) and
    /// [`TrySendError::Disconnected`] when the receiver is gone, the
    /// value handed back in both cases.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        match &self.inner {
            SenderKind::Bounded(s) => s.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            }),
            SenderKind::Unbounded(s) => {
                s.send(value).map_err(|e| TrySendError::Disconnected(e.0))
            }
        }
    }
}

/// Receiving half of a channel.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks for the next message.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and closed.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] when nothing is queued and
    /// [`TryRecvError::Disconnected`] once the channel is empty *and*
    /// every sender is gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// A blocking iterator that ends when the channel closes.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.inner.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

/// A channel that blocks senders once `capacity` messages are queued
/// (capacity 0 gives rendezvous semantics, like crossbeam).
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(capacity);
    (Sender { inner: SenderKind::Bounded(tx) }, Receiver { inner: rx })
}

/// A channel with an unbounded queue.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: SenderKind::Unbounded(tx) }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_delivers_in_order_across_threads() {
        let (tx, rx) = bounded::<u32>(4);
        let sender = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        sender.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_after_receiver_drop_errors_with_value() {
        let (tx, rx) = bounded::<&'static str>(1);
        drop(rx);
        assert_eq!(tx.send("lost"), Err(SendError("lost")));
    }

    #[test]
    fn unbounded_does_not_block_sender() {
        let (tx, rx) = unbounded::<usize>();
        for i in 0..10_000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 10_000);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cloned_senders_keep_channel_open() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx2);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_after_all_receivers_dropped_returns_value_bounded_and_unbounded() {
        // Documented crossbeam behaviour: a send on a channel whose
        // receiver is gone fails immediately (even on a full-capacity
        // bounded channel it must not block) and hands the value back.
        let (tx, rx) = bounded::<u32>(0); // rendezvous
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));

        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(8), Err(SendError(8)));
        // The value is recoverable from the error, crossbeam-style.
        let SendError(v) = tx.send(9).unwrap_err();
        assert_eq!(v, 9);
    }

    #[test]
    fn recv_after_all_senders_dropped_drains_then_disconnects() {
        // Messages queued before the last sender died must still be
        // delivered; only afterwards does the channel report closure.
        let (tx, rx) = bounded::<u8>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn iter_ends_exactly_at_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_send_reports_full_then_succeeds_after_drain() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(2), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn try_send_unbounded_never_full() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..1_000 {
            assert_eq!(tx.try_send(i), Ok(()));
        }
        drop(rx);
        assert_eq!(tx.try_send(0), Err(TrySendError::Disconnected(0)));
    }

    #[test]
    fn blocked_bounded_sender_unblocks_on_receiver_drop() {
        // A sender parked on a full bounded channel must wake with an
        // error when the receiver disappears, not deadlock.
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap(); // fill capacity
        let sender = thread::spawn(move || tx.send(2));
        thread::sleep(std::time::Duration::from_millis(10));
        drop(rx);
        assert_eq!(sender.join().unwrap(), Err(SendError(2)));
    }
}
