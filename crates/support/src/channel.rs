//! Bounded/unbounded channels with a crossbeam-shaped API, backed by
//! `std::sync::mpsc`. The stream session model only needs SPSC delivery
//! with backpressure; `mpsc::sync_channel` provides exactly that.

use std::sync::mpsc;

/// Sending half of a channel. Cloneable; dropping every sender closes
/// the channel.
#[derive(Debug, Clone)]
pub struct Sender<T> {
    inner: SenderKind<T>,
}

#[derive(Debug)]
enum SenderKind<T> {
    Bounded(mpsc::SyncSender<T>),
    Unbounded(mpsc::Sender<T>),
}

impl<T> Clone for SenderKind<T> {
    fn clone(&self) -> Self {
        match self {
            SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
            SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
        }
    }
}

/// Error returned when the receiving side has hung up; carries the
/// undelivered message back, like crossbeam/mpsc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a closed channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on a closed channel")
    }
}

impl std::error::Error for RecvError {}

impl<T> Sender<T> {
    /// Delivers `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] with the value if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.inner {
            SenderKind::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            SenderKind::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
        }
    }
}

/// Receiving half of a channel.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks for the next message.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and closed.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive; `None` when empty or closed.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.try_recv().ok()
    }

    /// A blocking iterator that ends when the channel closes.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.inner.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

/// A channel that blocks senders once `capacity` messages are queued
/// (capacity 0 gives rendezvous semantics, like crossbeam).
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(capacity);
    (Sender { inner: SenderKind::Bounded(tx) }, Receiver { inner: rx })
}

/// A channel with an unbounded queue.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: SenderKind::Unbounded(tx) }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_delivers_in_order_across_threads() {
        let (tx, rx) = bounded::<u32>(4);
        let sender = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        sender.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_after_receiver_drop_errors_with_value() {
        let (tx, rx) = bounded::<&'static str>(1);
        drop(rx);
        assert_eq!(tx.send("lost"), Err(SendError("lost")));
    }

    #[test]
    fn unbounded_does_not_block_sender() {
        let (tx, rx) = unbounded::<usize>();
        for i in 0..10_000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 10_000);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cloned_senders_keep_channel_open() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        assert_eq!(rx.try_recv(), Some(9));
        drop(tx2);
        assert!(rx.recv().is_err());
    }
}
