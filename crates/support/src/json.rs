//! A small JSON value model, serializer and recursive-descent parser,
//! plus the [`ToJson`]/[`FromJson`] trait pair and the declarative
//! [`impl_json!`] macro that together replace `serde`'s derives across
//! the workspace.
//!
//! Design notes:
//!
//! * **Integers are exact.** [`Json::Int`] carries `i128`, so `u64`
//!   byte counts and histogram totals round-trip without the `f64`
//!   precision loss a naive single-number model would cause.
//! * **Object order is preserved** (insertion-ordered `Vec` of pairs),
//!   so serialised documents are deterministic and diffable.
//! * **Enum encoding matches serde's external tagging**: unit variants
//!   as `"Variant"`, struct/newtype variants as `{"Variant": ...}` —
//!   existing documents and wire messages keep their shape.
//! * **Non-finite floats serialise as `null`** and `null` parses back
//!   as NaN for float targets; JSON has no other spelling for them.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or constructed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer literal (no `.`/exponent), kept exact.
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, first match wins on lookup.
    Obj(Vec<(String, Json)>),
}

/// Error raised by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl JsonError {
    /// Creates an error from any message.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up `key` on an object; `None` for other shapes or missing
    /// keys (mirrors `serde_json::Value::get`).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `i128` if it is an exact integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9.007_199_254_740_992e15 => {
                Some(*f as i128)
            }
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A one-word description of the value's shape, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "integer",
            Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with byte offset context for malformed
    /// input, trailing garbage, or nesting deeper than 128 levels.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Compact serialisation.
    #[must_use]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialisation (two-space indent).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest round-trip form and always
                    // carries a `.0` or exponent, keeping float-ness visible.
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::msg(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_lit("null").map(|()| Json::Null),
            Some(b't') => self.eat_lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
                self.depth -= 1;
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':' after object key")?;
                    self.skip_ws();
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
                self.depth -= 1;
                Ok(Json::Obj(pairs))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode UTF-8 from the source slice.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Json::Int(i)),
                // Out-of-range integer literal: fall back to f64.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------
// Trait pair
// ---------------------------------------------------------------------

/// Serialisation half of the pair (replacement for `serde::Serialize`).
pub trait ToJson {
    /// The value as a JSON tree.
    fn to_json(&self) -> Json;
}

/// Deserialisation half (replacement for `serde::Deserialize`).
pub trait FromJson: Sized {
    /// Rebuilds the value from a JSON tree.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on shape or range mismatches.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serialises to a compact string.
pub fn to_string<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().to_string()
}

/// Serialises to a pretty (2-space indented) string.
pub fn to_string_pretty<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().pretty()
}

/// Serialises to compact UTF-8 bytes.
pub fn to_vec<T: ToJson + ?Sized>(v: &T) -> Vec<u8> {
    to_string(v).into_bytes()
}

/// Parses a document and converts it.
///
/// # Errors
///
/// Returns [`JsonError`] for malformed JSON or a shape mismatch.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

/// Parses UTF-8 bytes and converts them.
///
/// # Errors
///
/// Returns [`JsonError`] for invalid UTF-8, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: FromJson>(bytes: &[u8]) -> Result<T, JsonError> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| JsonError::msg(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

/// Fetches and converts an object field; a missing key is treated as
/// `null` so `Option` fields tolerate absence while anything else
/// reports "missing field".
///
/// # Errors
///
/// Returns [`JsonError`] if `v` is not an object or the field fails to
/// convert.
pub fn field<T: FromJson>(v: &Json, name: &str) -> Result<T, JsonError> {
    let Json::Obj(_) = v else {
        return Err(JsonError::msg(format!("expected object, found {}", v.kind())));
    };
    match v.get(name) {
        Some(inner) => T::from_json(inner)
            .map_err(|e| JsonError::msg(format!("field `{name}`: {}", e.0))),
        None => T::from_json(&Json::Null)
            .map_err(|_| JsonError::msg(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------
// Blanket / primitive implementations
// ---------------------------------------------------------------------

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::msg(format!("expected bool, found {}", v.kind()))),
        }
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v.as_int().ok_or_else(|| {
                    JsonError::msg(format!(
                        "expected integer, found {}", v.kind()
                    ))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    JsonError::msg(format!(
                        "integer {i} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(f64::NAN), // non-finite round-trip
            _ => v
                .as_f64()
                .ok_or_else(|| JsonError::msg(format!("expected number, found {}", v.kind()))),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(JsonError::msg(format!("expected string, found {}", v.kind()))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            _ => Err(JsonError::msg(format!("expected array, found {}", v.kind()))),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items: Vec<T> = Vec::from_json(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| JsonError::msg(format!("expected array of {N}, found {got}")))
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            _ => Err(JsonError::msg(format!("expected 2-tuple, found {}", v.kind()))),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) if items.len() == 3 => Ok((
                A::from_json(&items[0])?,
                B::from_json(&items[1])?,
                C::from_json(&items[2])?,
            )),
            _ => Err(JsonError::msg(format!("expected 3-tuple, found {}", v.kind()))),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            _ => Err(JsonError::msg(format!("expected object, found {}", v.kind()))),
        }
    }
}

// ---------------------------------------------------------------------
// Declarative derive replacement
// ---------------------------------------------------------------------

/// Implements [`ToJson`] + [`FromJson`] for structs and enums without a
/// procedural macro, mirroring serde's default encodings:
///
/// ```
/// use annolight_support::impl_json;
/// use annolight_support::json::{from_str, to_string};
///
/// #[derive(Debug, PartialEq)]
/// struct Point { x: i32, y: i32 }
/// impl_json!(struct Point { x, y });
///
/// #[derive(Debug, PartialEq)]
/// struct Level(u8);
/// impl_json!(newtype Level(inner));
///
/// #[derive(Debug, PartialEq)]
/// enum Mode { Auto, Fixed { level: u8 }, Scale(f64) }
/// impl_json!(enum Mode { Auto, Fixed { level }, Scale(factor) });
///
/// let p = Point { x: 3, y: -4 };
/// assert_eq!(to_string(&p), r#"{"x":3,"y":-4}"#);
/// assert_eq!(from_str::<Point>(r#"{"x":3,"y":-4}"#).unwrap(), p);
/// assert_eq!(to_string(&Mode::Auto), r#""Auto""#);
/// assert_eq!(to_string(&Mode::Fixed { level: 9 }), r#"{"Fixed":{"level":9}}"#);
/// assert_eq!(from_str::<Mode>(r#"{"Scale":1.5}"#).unwrap(), Mode::Scale(1.5));
/// assert_eq!(to_string(&Level(7)), "7");
/// ```
///
/// Unknown object fields are ignored; missing fields error unless the
/// target type is an `Option`.
#[macro_export]
macro_rules! impl_json {
    // Plain struct with named fields.
    (struct $name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }
        impl $crate::json::FromJson for $name {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: $crate::json::field(v, stringify!($field))?),+
                })
            }
        }
    };
    // Single-field tuple struct, serialised transparently as its inner
    // value (serde newtype convention).
    (newtype $name:ident($inner:ident)) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $name {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                $crate::json::FromJson::from_json(v).map($name)
            }
        }
    };
    // Enum: unit variants, struct variants, single-field tuple variants.
    (enum $name:ident {
        $($variant:ident
            $( { $($f:ident),+ $(,)? } )?
            $( ( $tuple:ident ) )?
        ),+ $(,)?
    }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                #[allow(unreachable_patterns)]
                match self {
                    $(
                        $name::$variant $( { $($f),+ } )? $( ( $tuple ) )? =>
                            $crate::impl_json!(
                                @enum_to $variant $( { $($f),+ } )? $( ( $tuple ) )?
                            ),
                    )+
                    _ => unreachable!("enum variant added without an impl_json! update"),
                }
            }
        }
        impl $crate::json::FromJson for $name {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                $(
                    if let Some(r) = $crate::impl_json!(
                        @enum_from $name, $variant $( { $($f),+ } )? $( ( $tuple ) )?, v
                    ) {
                        return r;
                    }
                )+
                Err($crate::json::JsonError::msg(format!(
                    "no variant of `{}` matches {}",
                    stringify!($name),
                    v,
                )))
            }
        }
    };
    // -- helpers (not public API) --------------------------------------
    (@enum_to $variant:ident) => {
        $crate::json::Json::Str(stringify!($variant).to_string())
    };
    (@enum_to $variant:ident { $($f:ident),+ }) => {
        $crate::json::Json::Obj(vec![(
            stringify!($variant).to_string(),
            $crate::json::Json::Obj(vec![
                $((
                    stringify!($f).to_string(),
                    $crate::json::ToJson::to_json($f),
                )),+
            ]),
        )])
    };
    (@enum_to $variant:ident ( $tuple:ident )) => {
        $crate::json::Json::Obj(vec![(
            stringify!($variant).to_string(),
            $crate::json::ToJson::to_json($tuple),
        )])
    };
    (@enum_from $name:ident, $variant:ident, $v:expr) => {
        match $v {
            $crate::json::Json::Str(s) if s == stringify!($variant) => {
                Some(Ok($name::$variant))
            }
            _ => None,
        }
    };
    (@enum_from $name:ident, $variant:ident { $($f:ident),+ }, $v:expr) => {
        match $v {
            $crate::json::Json::Obj(pairs)
                if pairs.len() == 1 && pairs[0].0 == stringify!($variant) =>
            {
                let inner = &pairs[0].1;
                Some((|| {
                    Ok($name::$variant {
                        $($f: $crate::json::field(inner, stringify!($f))?),+
                    })
                })())
            }
            _ => None,
        }
    };
    (@enum_from $name:ident, $variant:ident ( $tuple:ident ), $v:expr) => {
        match $v {
            $crate::json::Json::Obj(pairs)
                if pairs.len() == 1 && pairs[0].0 == stringify!($variant) =>
            {
                Some($crate::json::FromJson::from_json(&pairs[0].1).map($name::$variant))
            }
            _ => None,
        }
    };
}

/// Builds a [`Json`] object literal from `"key": value` pairs whose
/// values implement [`ToJson`] — the small slice of `serde_json::json!`
/// the workspace uses.
///
/// ```
/// use annolight_support::json_obj;
/// let doc = json_obj!({ "answer": 42, "label": "fig" });
/// assert_eq!(doc.to_string(), r#"{"answer":42,"label":"fig"}"#);
/// ```
#[macro_export]
macro_rules! json_obj {
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::json::Json::Obj(vec![
            $((
                ($k).to_string(),
                $crate::json::ToJson::to_json(&$v),
            )),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_documents() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12").unwrap(), Json::Int(-12));
        assert_eq!(Json::parse("2.5e2").unwrap(), Json::Float(250.0));
        assert_eq!(Json::parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        assert_eq!(
            Json::parse("[1, 2, 3]").unwrap(),
            Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Int(3)])
        );
        let obj = Json::parse(r#"{"a": 1, "b": [true, null]}"#).unwrap();
        assert_eq!(obj.get("a"), Some(&Json::Int(1)));
        assert_eq!(obj.get("b").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", r#"{"a"}"#, "tru", "01a", r#""unterminated"#, "1 2",
            "nul", "[1,]2", "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn round_trips_via_text() {
        let doc = Json::parse(
            r#"{"s":"hi é 😀","n":-3.5,"i":18446744073709551615,"a":[1,{"x":null}]}"#,
        )
        .unwrap();
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        let pretty = doc.pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn u64_max_survives() {
        let v = u64::MAX;
        let text = to_string(&v);
        assert_eq!(text, "18446744073709551615");
        assert_eq!(from_str::<u64>(&text).unwrap(), v);
    }

    #[test]
    fn float_formatting_round_trips() {
        for f in [0.1, 1.0, -2.5e-9, 1e300, f64::MIN_POSITIVE] {
            let text = to_string(&f);
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
        // Non-finite → null → NaN.
        let back: f64 = from_str(&to_string(&f64::INFINITY)).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn option_fields_tolerate_missing_keys() {
        #[derive(Debug, PartialEq)]
        struct S {
            a: u32,
            b: Option<u32>,
        }
        crate::impl_json!(struct S { a, b });
        assert_eq!(from_str::<S>(r#"{"a":1}"#).unwrap(), S { a: 1, b: None });
        assert_eq!(from_str::<S>(r#"{"a":1,"b":2}"#).unwrap(), S { a: 1, b: Some(2) });
        assert!(from_str::<S>(r#"{"b":2}"#).is_err(), "missing non-Option field");
        assert!(from_str::<S>("{}").is_err());
    }

    #[test]
    fn integer_range_checks_apply() {
        assert!(from_str::<u8>("256").is_err());
        assert!(from_str::<u8>("-1").is_err());
        assert_eq!(from_str::<i8>("-128").unwrap(), -128);
    }
}
