//! # annolight-support
//!
//! The workspace's hermetic, zero-dependency substrate. Everything the
//! annolight crates used to pull from the crates.io registry is
//! re-implemented here, small and auditable, so that
//! `cargo build --release --offline` succeeds from an *empty* cargo
//! registry — the build environment has no network, and the paper's
//! pipeline (histograms, `k = L/L'` compensation, transfer-LUT
//! inversion) is pure deterministic arithmetic that never needed heavy
//! dependencies in the first place.
//!
//! | Module | Replaces | Surface |
//! |---|---|---|
//! | [`rng`] | `rand::SmallRng` | seeded xoshiro256++, `gen_range`/`gen_bool` |
//! | [`json`] | `serde`/`serde_json` | `Json` value model, parser, [`impl_json!`] |
//! | [`bytes`] | `bytes` | [`bytes::Bytes`], [`bytes::ByteBuf`], cursor reads |
//! | [`channel`] | `crossbeam::channel` | bounded/unbounded mpsc-backed channels |
//! | [`sync`] | `parking_lot` | poison-ignoring [`sync::Mutex`] + [`sync::Condvar`] |
//! | [`check`] | `proptest` | deterministic property runner, [`check!`] |
//! | [`retry`] | `backoff`/`retry` | deadline-aware [`retry::RetryPolicy`] |
//! | [`bench`] | `criterion` | wall-clock median-of-N harness |
//! | [`wheel`] | `tokio-util` timers | hierarchical virtual-time [`wheel::TimerWheel`] |
//! | [`reactor`] | `tokio`/`mio` | deterministic cooperative [`reactor::Reactor`] |
//! | [`pool`] | `object-pool`/`bytes` arenas | free-list [`pool::BytePool`] with reuse stats |
//!
//! All modules are `std`-only. Determinism is a design goal throughout:
//! the PRNG is seedable, the property runner prints a replayable seed on
//! failure, and JSON object order is preserved.

pub mod bench;
pub mod bytes;
pub mod channel;
pub mod check;
pub mod json;
pub mod pool;
pub mod reactor;
pub mod retry;
pub mod rng;
pub mod sync;
pub mod wheel;
