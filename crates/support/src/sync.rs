//! `parking_lot`-flavoured synchronisation primitives: a [`Mutex`] whose
//! `lock()` returns the guard directly instead of a `Result`, and a
//! matching [`Condvar`] whose waits never surface poison either. A panic
//! while a std mutex is held poisons it; the state these protect (meter
//! counters, work queues) stays internally consistent under any
//! interleaving, so the poison flag is noise — we take the guard anyway,
//! exactly as `parking_lot` semantics did.

use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    #[must_use]
    pub fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`]: every wait ignores
/// poisoning, mirroring `parking_lot::Condvar`. Use it with the guard
/// returned by [`Mutex::lock`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a fresh condition variable.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until notified, releasing `guard` while parked.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks while `condition` holds (spurious-wakeup safe).
    pub fn wait_while<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        condition: impl FnMut(&mut T) -> bool,
    ) -> MutexGuard<'a, T> {
        self.inner.wait_while(guard, condition).unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until notified or `timeout` elapses; returns the guard and
    /// whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, res) =
            self.inner.wait_timeout(guard, timeout).unwrap_or_else(PoisonError::into_inner);
        (guard, res.timed_out())
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counts_correctly_under_contention() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let guard = cv.wait_while(m.lock(), |ready| !*ready);
            *guard
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn condvar_wait_timeout_reports_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let (_guard, timed_out) =
            cv.wait_timeout(m.lock(), std::time::Duration::from_millis(5));
        assert!(timed_out);
    }

    #[test]
    fn condvar_survives_poisoned_mutex() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let _ = thread::spawn(move || {
            let _guard = p2.0.lock();
            panic!("poison the pair");
        })
        .join();
        // The condvar still times out cleanly on the poisoned mutex.
        let (guard, timed_out) =
            pair.1.wait_timeout(pair.0.lock(), std::time::Duration::from_millis(1));
        assert!(timed_out);
        assert_eq!(*guard, 0);
    }
}
