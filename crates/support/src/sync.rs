//! `parking_lot`-flavoured synchronisation primitives: a [`Mutex`] whose
//! `lock()` returns the guard directly instead of a `Result`, and a
//! matching [`Condvar`] whose waits never surface poison either. A panic
//! while a std mutex is held poisons it; the state these protect (meter
//! counters, work queues) stays internally consistent under any
//! interleaving, so the poison flag is noise — we take the guard anyway,
//! exactly as `parking_lot` semantics did.

use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    #[must_use]
    pub fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`]: every wait ignores
/// poisoning, mirroring `parking_lot::Condvar`. Use it with the guard
/// returned by [`Mutex::lock`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a fresh condition variable.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until notified, releasing `guard` while parked.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks while `condition` holds (spurious-wakeup safe).
    pub fn wait_while<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        condition: impl FnMut(&mut T) -> bool,
    ) -> MutexGuard<'a, T> {
        self.inner.wait_while(guard, condition).unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until notified or `timeout` elapses; returns the guard and
    /// whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, res) =
            self.inner.wait_timeout(guard, timeout).unwrap_or_else(PoisonError::into_inner);
        (guard, res.timed_out())
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A permit-based parked waker (`crossbeam::sync::Parker` shape) built
/// on [`Mutex`] + [`Condvar::wait_timeout`]: the reactor's idle loop
/// *sleeps* on it instead of spin-polling. One thread parks; any number
/// of [`Unparker`] clones may wake it. The permit is a single-slot flag,
/// not a counter: an `unpark` before `park` makes exactly the next
/// `park` return immediately, and repeated `unpark`s coalesce.
#[derive(Debug)]
pub struct Parker {
    inner: Arc<ParkInner>,
}

/// The waking half of a [`Parker`]; cloneable and sendable to other
/// threads.
#[derive(Debug, Clone)]
pub struct Unparker {
    inner: Arc<ParkInner>,
}

#[derive(Debug, Default)]
struct ParkInner {
    permit: Mutex<bool>,
    cv: Condvar,
}

impl Default for Parker {
    fn default() -> Self {
        Self::new()
    }
}

impl Parker {
    /// A parker with no pending permit.
    #[must_use]
    pub fn new() -> Self {
        Parker { inner: Arc::new(ParkInner::default()) }
    }

    /// A handle that wakes this parker from another thread.
    #[must_use]
    pub fn unparker(&self) -> Unparker {
        Unparker { inner: Arc::clone(&self.inner) }
    }

    /// Blocks until a permit is available, then consumes it.
    pub fn park(&self) {
        let guard = self.inner.permit.lock();
        let mut guard = self.inner.cv.wait_while(guard, |permit| !*permit);
        *guard = false;
    }

    /// Blocks until a permit arrives or `timeout` elapses. Returns
    /// `true` when unparked (permit consumed), `false` on timeout.
    pub fn park_timeout(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.inner.permit.lock();
        // Loop against spurious wakeups, re-deriving the remaining
        // budget so the total wait never exceeds `timeout`.
        while !*guard {
            let Some(left) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return false;
            };
            if left.is_zero() {
                return false;
            }
            let (g, timed_out) = self.inner.cv.wait_timeout(guard, left);
            guard = g;
            if timed_out && !*guard {
                return false;
            }
        }
        *guard = false;
        true
    }
}

impl Unparker {
    /// Deposits the permit and wakes the parked thread, if any.
    pub fn unpark(&self) {
        *self.inner.permit.lock() = true;
        self.inner.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counts_correctly_under_contention() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let guard = cv.wait_while(m.lock(), |ready| !*ready);
            *guard
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn condvar_wait_timeout_reports_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let (_guard, timed_out) =
            cv.wait_timeout(m.lock(), std::time::Duration::from_millis(5));
        assert!(timed_out);
    }

    #[test]
    fn parker_unpark_before_park_returns_immediately() {
        // Wake ordering: a permit deposited *before* the park must let
        // the very next park pass without blocking.
        let p = Parker::new();
        p.unparker().unpark();
        let start = std::time::Instant::now();
        p.park();
        assert!(start.elapsed() < Duration::from_millis(100));
        // The permit was consumed: the next timed park must time out.
        assert!(!p.park_timeout(Duration::from_millis(5)));
    }

    #[test]
    fn parker_permits_coalesce_to_one() {
        let p = Parker::new();
        let u = p.unparker();
        u.unpark();
        u.unpark();
        u.unpark();
        assert!(p.park_timeout(Duration::from_millis(5)));
        // Only one permit despite three unparks.
        assert!(!p.park_timeout(Duration::from_millis(5)));
    }

    #[test]
    fn parker_wakes_parked_thread_from_another_thread() {
        let p = Arc::new(Parker::new());
        let u = p.unparker();
        let waiter = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                p.park();
                true
            })
        };
        thread::sleep(Duration::from_millis(10));
        u.unpark();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn parker_timeout_expires_without_permit() {
        let p = Parker::new();
        let start = std::time::Instant::now();
        assert!(!p.park_timeout(Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn parker_park_unpark_cycles_stay_ordered() {
        // Each unpark wakes exactly the park paired with it; the
        // sequence of observed wakes equals the sequence of permits.
        let p = Arc::new(Parker::new());
        let u = p.unparker();
        let rounds = 50;
        let waiter = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                let mut woken = 0u32;
                for _ in 0..rounds {
                    p.park();
                    woken += 1;
                }
                woken
            })
        };
        for _ in 0..rounds {
            u.unpark();
            // Give the waiter a moment to consume before the next
            // permit so permits don't coalesce.
            while *p.inner.permit.lock() {
                thread::yield_now();
            }
        }
        assert_eq!(waiter.join().unwrap(), rounds);
    }

    #[test]
    fn condvar_survives_poisoned_mutex() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let _ = thread::spawn(move || {
            let _guard = p2.0.lock();
            panic!("poison the pair");
        })
        .join();
        // The condvar still times out cleanly on the poisoned mutex.
        let (guard, timed_out) =
            pair.1.wait_timeout(pair.0.lock(), std::time::Duration::from_millis(1));
        assert!(timed_out);
        assert_eq!(*guard, 0);
    }
}
