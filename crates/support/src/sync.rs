//! A `parking_lot`-flavoured [`Mutex`]: `lock()` returns the guard
//! directly instead of a `Result`. A panic while a std mutex is held
//! poisons it; the energy-meter counters this protects are plain `f64`
//! accumulators that stay internally consistent under any interleaving,
//! so the poison flag is noise — we take the guard anyway, exactly as
//! `parking_lot` semantics did.

use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    #[must_use]
    pub fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counts_correctly_under_contention() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }
}
