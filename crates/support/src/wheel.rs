//! Hierarchical timer wheel over **virtual time**.
//!
//! The reactor ([`crate::reactor`]) needs to order jitter, retry/backoff
//! and retransmission deadlines for 10⁵⁺ concurrent sessions without a
//! per-timer heap rebalance. This is the classic hashed hierarchical
//! wheel (Varghese & Lauck): [`LEVELS`] levels of [`SLOTS`] slots, each
//! level covering a window 64× coarser than the one below, with per-level
//! occupancy bitmaps so finding the next deadline is a handful of
//! `trailing_zeros` scans.
//!
//! Time is a `u64` tick counter that only moves when [`TimerWheel::advance_to`]
//! is called — *virtual* time, never the wall clock, so a seeded schedule
//! replays exactly. One tick is 1 µs ([`TICKS_PER_SEC`]); the session
//! model's `f64` second timestamps convert via [`ticks_from_secs`].
//!
//! Determinism contract: timers expire in `(deadline, insertion-seq)`
//! order — two timers on the same tick fire in the order they were
//! scheduled, independent of which wheel level they happened to occupy.

/// Virtual ticks per simulated second (1 µs resolution).
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// Slots per wheel level (64 ⇒ slot index is a 6-bit digit of the tick).
pub const SLOTS: usize = 64;

/// Bits of the tick consumed per level.
const BITS: u32 = 6;

/// Number of levels. 8 levels × 6 bits = 48 bits of horizon — about
/// 8.9 simulated years at 1 µs per tick, far beyond any session.
pub const LEVELS: usize = 8;

/// Largest schedulable deadline (deadlines beyond are clamped).
pub const MAX_DEADLINE: u64 = (1u64 << (BITS * LEVELS as u32)) - 1;

/// Converts simulated seconds to virtual ticks (rounds up so a strictly
/// positive delay never collapses to "now").
#[must_use]
pub fn ticks_from_secs(secs: f64) -> u64 {
    if secs <= 0.0 {
        return 0;
    }
    let t = (secs * TICKS_PER_SEC as f64).ceil();
    if t >= MAX_DEADLINE as f64 { MAX_DEADLINE } else { t as u64 }
}

/// Converts virtual ticks back to simulated seconds.
#[must_use]
pub fn secs_from_ticks(ticks: u64) -> f64 {
    ticks as f64 / TICKS_PER_SEC as f64
}

#[derive(Debug, Clone)]
struct Entry<T> {
    deadline: u64,
    seq: u64,
    value: T,
}

/// A hierarchical timer wheel holding values of type `T`.
///
/// Invariant (maintained by `schedule` + `advance_to`): every stored
/// entry has `deadline > now`, and an entry sits at the highest level
/// where its deadline's 6-bit digit differs from `now`'s. All entries in
/// one slot therefore share the same absolute window, and within a
/// level, lower slot index ⇒ earlier deadline.
#[derive(Debug)]
pub struct TimerWheel<T> {
    now: u64,
    seq: u64,
    len: usize,
    /// `levels[l * SLOTS + s]` = entries in slot `s` of level `l`.
    slots: Vec<Vec<Entry<T>>>,
    /// One bit per slot, per level.
    occupancy: [u64; LEVELS],
    /// Entries scheduled at or before `now`; fire on the next advance.
    overdue: Vec<Entry<T>>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel at tick 0.
    #[must_use]
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        Self { now: 0, seq: 0, len: 0, slots, occupancy: [0; LEVELS], overdue: Vec::new() }
    }

    /// Current virtual tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending timers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `value` to expire at absolute tick `deadline`.
    /// Deadlines at or before `now` fire on the next [`Self::advance_to`];
    /// deadlines past [`MAX_DEADLINE`] are clamped.
    pub fn schedule(&mut self, deadline: u64, value: T) {
        let deadline = deadline.min(MAX_DEADLINE);
        let entry = Entry { deadline, seq: self.seq, value };
        self.seq += 1;
        self.len += 1;
        if deadline <= self.now {
            self.overdue.push(entry);
        } else {
            self.insert(entry);
        }
    }

    /// Level/slot placement relative to the current `now` (XOR rule:
    /// highest 6-bit digit where deadline and now differ).
    fn place(&self, deadline: u64) -> (usize, usize) {
        let diff = deadline ^ self.now;
        debug_assert!(diff != 0, "place() requires deadline > now");
        let level = ((63 - diff.leading_zeros()) / BITS) as usize;
        let level = level.min(LEVELS - 1);
        let slot = ((deadline >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    fn insert(&mut self, entry: Entry<T>) {
        let (level, slot) = self.place(entry.deadline);
        self.slots[level * SLOTS + slot].push(entry);
        self.occupancy[level] |= 1u64 << slot;
    }

    /// The earliest pending deadline (clamped to `now` for overdue
    /// entries), or `None` when the wheel is empty.
    #[must_use]
    pub fn next_deadline(&self) -> Option<u64> {
        if !self.overdue.is_empty() {
            return Some(self.now);
        }
        let mut best: Option<u64> = None;
        for level in 0..LEVELS {
            let bitmap = self.occupancy[level];
            if bitmap == 0 {
                continue;
            }
            // Within a level every occupied slot shares now's parent
            // window, so the lowest occupied index holds the level's
            // earliest entries.
            let slot = bitmap.trailing_zeros() as usize;
            let min = self.slots[level * SLOTS + slot]
                .iter()
                .map(|e| e.deadline)
                .min()
                .expect("occupancy bit set on empty slot");
            best = Some(best.map_or(min, |b: u64| b.min(min)));
        }
        best
    }

    /// Advances virtual time to `target`, appending every expired
    /// `(deadline, value)` to `out` in `(deadline, insertion-seq)` order.
    /// Entries whose coarse window was entered but whose deadline is
    /// still ahead cascade down to finer levels.
    pub fn advance_to(&mut self, target: u64, out: &mut Vec<(u64, T)>) {
        if target < self.now {
            return;
        }
        let mut pending: Vec<Entry<T>> = std::mem::take(&mut self.overdue);
        for level in 0..LEVELS {
            let mut bitmap = self.occupancy[level];
            while bitmap != 0 {
                let slot = bitmap.trailing_zeros() as usize;
                bitmap &= bitmap - 1;
                let bucket = &mut self.slots[level * SLOTS + slot];
                // All entries in a slot share one window; its start is
                // the deadline with the low 6·level bits cleared.
                let w_start =
                    (bucket[0].deadline >> (BITS * level as u32)) << (BITS * level as u32);
                if w_start <= target {
                    pending.append(bucket);
                    self.occupancy[level] &= !(1u64 << slot);
                }
            }
        }
        self.now = target;
        // Re-seat survivors relative to the new now; expired entries
        // (deadline ≤ target) leave the wheel in deterministic order.
        let mut expired: Vec<Entry<T>> = Vec::new();
        for entry in pending {
            if entry.deadline <= target {
                expired.push(entry);
            } else {
                self.insert(entry);
            }
        }
        expired.sort_by_key(|e| (e.deadline, e.seq));
        self.len -= expired.len();
        out.extend(expired.into_iter().map(|e| (e.deadline, e.value)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_then_seq_order() {
        let mut w = TimerWheel::new();
        w.schedule(50, "b");
        w.schedule(10, "a");
        w.schedule(50, "c"); // same tick as "b", scheduled later
        let mut out = Vec::new();
        w.advance_to(100, &mut out);
        assert_eq!(out, vec![(10, "a"), (50, "b"), (50, "c")]);
        assert!(w.is_empty());
    }

    #[test]
    fn next_deadline_tracks_minimum_across_levels() {
        let mut w = TimerWheel::new();
        w.schedule(1_000_000, 1u32); // level ≥ 3
        assert_eq!(w.next_deadline(), Some(1_000_000));
        w.schedule(63, 2); // level 0
        assert_eq!(w.next_deadline(), Some(63));
        w.schedule(4_096, 3); // level 2
        assert_eq!(w.next_deadline(), Some(63));
        let mut out = Vec::new();
        w.advance_to(63, &mut out);
        assert_eq!(out, vec![(63, 2)]);
        assert_eq!(w.next_deadline(), Some(4_096));
    }

    #[test]
    fn coarse_timers_cascade_to_exact_ticks() {
        let mut w = TimerWheel::new();
        // 64^2 window apart from now: starts on level 2, must still fire
        // exactly at its tick, not at its window boundary.
        w.schedule(4_097, "x");
        let mut out = Vec::new();
        w.advance_to(4_096, &mut out);
        assert!(out.is_empty(), "must not fire a tick early");
        w.advance_to(4_097, &mut out);
        assert_eq!(out, vec![(4_097, "x")]);
    }

    #[test]
    fn overdue_schedule_fires_on_next_advance() {
        let mut w = TimerWheel::new();
        let mut out = Vec::new();
        w.advance_to(500, &mut out);
        w.schedule(100, "late"); // already in the past
        assert_eq!(w.next_deadline(), Some(500));
        w.advance_to(500, &mut out); // no time movement needed
        assert_eq!(out, vec![(100, "late")]);
    }

    #[test]
    fn advance_to_past_is_a_no_op() {
        let mut w = TimerWheel::new();
        let mut out = Vec::new();
        w.advance_to(900, &mut out);
        w.schedule(950, 7u8);
        w.advance_to(100, &mut out);
        assert!(out.is_empty());
        assert_eq!(w.now(), 900);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn dense_random_timers_expire_sorted_and_complete() {
        // A deterministic pseudo-random burst across all levels.
        let mut w = TimerWheel::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut expected: Vec<u64> = Vec::new();
        for i in 0..5_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let deadline = 1 + (state >> 16) % 3_000_000;
            expected.push(deadline);
            w.schedule(deadline, i);
        }
        let mut out = Vec::new();
        // Advance in uneven hops to exercise cascading.
        for hop in [1u64, 63, 64, 65, 4_095, 40_000, 1_000_000, 3_000_000] {
            w.advance_to(hop, &mut out);
            assert!(w.next_deadline().map_or(true, |d| d > hop));
        }
        assert_eq!(out.len(), 5_000);
        assert!(w.is_empty());
        let fired: Vec<u64> = out.iter().map(|(d, _)| *d).collect();
        let mut sorted = expected.clone();
        sorted.sort_unstable();
        assert_eq!(fired, sorted);
        // Same-deadline entries preserved insertion order.
        for pair in out.windows(2) {
            if pair[0].0 == pair[1].0 {
                assert!(pair[0].1 < pair[1].1);
            }
        }
    }

    #[test]
    fn tick_second_conversions_round_trip() {
        assert_eq!(ticks_from_secs(0.0), 0);
        assert_eq!(ticks_from_secs(1.0), TICKS_PER_SEC);
        assert_eq!(ticks_from_secs(1e-9), 1, "positive delays never collapse to zero");
        assert_eq!(ticks_from_secs(f64::INFINITY), MAX_DEADLINE);
        let s = secs_from_ticks(ticks_from_secs(0.25));
        assert!((s - 0.25).abs() < 1e-5);
    }
}
