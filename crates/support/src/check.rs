//! A deterministic property-test runner replacing `proptest`.
//!
//! Each property is a closure over a [`Gen`]; the runner executes it for
//! a configurable number of cases (default [`DEFAULT_CASES`], matching
//! proptest's 256), every case seeded from a fixed base seed so CI runs
//! are reproducible byte-for-byte. On failure it:
//!
//! 1. reports the failing case index and its **replayable seed**
//!    (`ANNOLIGHT_CHECK_SEED=<seed> ANNOLIGHT_CHECK_CASES=1` re-runs
//!    exactly that input),
//! 2. runs **shrinking-lite**: the generator records every raw 64-bit
//!    draw on a tape; the shrinker replays the property with zeroed
//!    suffixes and zeroed/halved words, which maps to shorter vectors
//!    and smaller integers/floats (hypothesis-style byte-stream
//!    shrinking, minus the exotic passes),
//! 3. panics with the smallest failure found.
//!
//! Environment overrides for deeper local runs:
//!
//! * `ANNOLIGHT_CHECK_SEED` — base seed (decimal or `0x…` hex)
//! * `ANNOLIGHT_CHECK_CASES` — case count for every property

use crate::rng::{splitmix64, SampleRange, SmallRng};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};

/// Default cases per property (proptest's default).
pub const DEFAULT_CASES: u32 = 256;

/// Fixed base seed: CI is deterministic unless overridden.
pub const DEFAULT_SEED: u64 = 0xA550_11FE_2006_0001;

/// Cap on extra property executions spent shrinking one failure.
const SHRINK_BUDGET: usize = 800;

thread_local! {
    static SILENCE_PANICS: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SILENCE_PANICS.with(Cell::get) {
                default(info);
            }
        }));
    });
}

/// Deterministic input source handed to each property case.
///
/// Fresh draws come from a seeded [`SmallRng`] and are recorded on a
/// tape; during shrinking the tape (mutated) is replayed instead, and
/// an exhausted tape yields zeros — the minimal value for every
/// generator below.
pub struct Gen {
    rng: SmallRng,
    mode: Mode,
}

enum Mode {
    Record { tape: Vec<u64> },
    Replay { tape: Vec<u64>, pos: usize },
}

impl Gen {
    fn fresh(seed: u64) -> Self {
        Self { rng: SmallRng::seed_from_u64(seed), mode: Mode::Record { tape: Vec::new() } }
    }

    fn replay(tape: Vec<u64>) -> Self {
        Self { rng: SmallRng::seed_from_u64(0), mode: Mode::Replay { tape, pos: 0 } }
    }

    fn tape(&self) -> &[u64] {
        match &self.mode {
            Mode::Record { tape } | Mode::Replay { tape, .. } => tape,
        }
    }

    /// The next raw word — every generator bottoms out here.
    fn next_word(&mut self) -> u64 {
        match &mut self.mode {
            Mode::Record { tape } => {
                let w = self.rng.next_u64();
                tape.push(w);
                w
            }
            Mode::Replay { tape, pos } => {
                let w = tape.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                w
            }
        }
    }

    /// A uniform draw from an integer or float range, e.g.
    /// `g.draw(1u32..40)`, `g.draw(-500i16..=500)`, `g.draw(0.0..=0.5)`.
    pub fn draw<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let word = self.next_word();
        // Feed the recorded word through a one-shot PRNG whose first
        // output *is* the word: every `SampleRange` impl consumes
        // exactly one raw output and is monotone in it, so a smaller
        // tape word always yields a smaller sample — the property the
        // shrinker relies on.
        range.sample(&mut SmallRng::from_raw_word(word))
    }

    /// An arbitrary value of `T` (full domain), mirroring
    /// `proptest::any::<T>()`.
    pub fn any<T: Arbitrary>(&mut self) -> T {
        T::arbitrary(self)
    }

    /// A vector whose length is drawn from `len`, elements from `f`.
    pub fn vec<T>(
        &mut self,
        len: impl SampleRange<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.draw(len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Full-domain generation for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(g: &mut Gen) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(g: &mut Gen) -> Self {
                g.next_word() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> Self {
        g.next_word() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(g: &mut Gen) -> Self {
        std::array::from_fn(|_| T::arbitrary(g))
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(g: &mut Gen) -> Self {
        (A::arbitrary(g), B::arbitrary(g))
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}={raw:?} is not a valid u64"),
    }
}

/// Base seed after the environment override.
#[must_use]
pub fn base_seed() -> u64 {
    env_u64("ANNOLIGHT_CHECK_SEED").unwrap_or(DEFAULT_SEED)
}

/// Case count after the environment override.
#[must_use]
pub fn case_count(default_cases: u32) -> u32 {
    env_u64("ANNOLIGHT_CHECK_CASES").map_or(default_cases, |v| v.min(u64::from(u32::MAX)) as u32)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

fn run_case(body: &impl Fn(&mut Gen), g: &mut Gen) -> Result<(), String> {
    install_quiet_hook();
    SILENCE_PANICS.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| body(g)));
    SILENCE_PANICS.with(|s| s.set(false));
    result.map_err(|p| panic_message(p.as_ref()))
}

fn fails(body: &impl Fn(&mut Gen), tape: &[u64]) -> Option<String> {
    let mut g = Gen::replay(tape.to_vec());
    run_case(body, &mut g).err()
}

/// Shrinking-lite over the recorded tape: zero suffixes (shorter
/// vectors, minimal tails), then zero and repeatedly halve individual
/// words (smaller integers and floats). Keeps the last failing tape.
fn shrink(body: &impl Fn(&mut Gen), tape: Vec<u64>, msg: String) -> (Vec<u64>, String) {
    let mut best = tape;
    let mut best_msg = msg;
    let mut budget = SHRINK_BUDGET;
    let mut made_progress = true;
    while made_progress && budget > 0 {
        made_progress = false;
        // Pass 1: zero ever-shorter suffixes (binary descent).
        let mut span = best.len();
        while span >= 1 && budget > 0 {
            let start = best.len() - span;
            if best[start..].iter().any(|&w| w != 0) {
                let mut candidate = best.clone();
                for w in &mut candidate[start..] {
                    *w = 0;
                }
                budget -= 1;
                if let Some(m) = fails(body, &candidate) {
                    best = candidate;
                    best_msg = m;
                    made_progress = true;
                }
            }
            span /= 2;
        }
        // Pass 2: per-word zero, then halving.
        for i in 0..best.len() {
            if budget == 0 {
                break;
            }
            if best[i] == 0 {
                continue;
            }
            let mut candidate = best.clone();
            candidate[i] = 0;
            budget -= 1;
            if let Some(m) = fails(body, &candidate) {
                best = candidate;
                best_msg = m;
                made_progress = true;
                continue;
            }
            let mut value = best[i];
            while value > 1 && budget > 0 {
                value /= 2;
                let mut candidate = best.clone();
                candidate[i] = value;
                budget -= 1;
                if let Some(m) = fails(body, &candidate) {
                    best = candidate;
                    best_msg = m;
                    made_progress = true;
                } else {
                    break;
                }
            }
        }
    }
    (best, best_msg)
}

/// Runs `body` for `default_cases` cases (or the env overrides). Panics
/// with a replayable report on the first failing case.
///
/// # Panics
///
/// Panics when the property fails, with the shrunk counter-example's
/// seed and replay instructions in the message.
pub fn run(name: &str, default_cases: u32, body: impl Fn(&mut Gen)) {
    let seed = base_seed();
    let cases = case_count(default_cases);
    for case in 0..cases {
        // Every case gets an independent, derivable seed; replaying a
        // single failing case is `ANNOLIGHT_CHECK_SEED=<case seed>`
        // with one case.
        let mut stream = seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let case_seed = splitmix64(&mut stream);
        let mut g = Gen::fresh(case_seed);
        if let Err(msg) = run_case(&body, &mut g) {
            let tape = g.tape().to_vec();
            let tape_len = tape.len();
            let (min_tape, min_msg) = shrink(&body, tape, msg.clone());
            panic!(
                "property `{name}` failed at case {case}/{cases}\n\
                 \x20 original failure : {msg}\n\
                 \x20 shrunk ({} -> {} words) : {min_msg}\n\
                 \x20 replay: ANNOLIGHT_CHECK_SEED={case_seed:#018x} \
                 ANNOLIGHT_CHECK_CASES=1 cargo test {name}\n\
                 \x20 (base seed was {seed:#018x})",
                tape_len,
                min_tape.len(),
            );
        }
    }
}

/// Declares `#[test]` property functions, proptest-style:
///
/// ```
/// annolight_support::check! {
///     /// Addition commutes.
///     fn addition_commutes(g) {
///         let a: u32 = g.draw(0u32..1_000);
///         let b: u32 = g.draw(0u32..1_000);
///         assert_eq!(a + b, b + a);
///     }
///
///     fn with_explicit_cases(g, cases = 64) {
///         let v = g.vec(0..8usize, |g| g.any::<u8>());
///         assert!(v.len() < 8);
///     }
/// }
/// # fn main() {}
/// ```
#[macro_export]
macro_rules! check {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($g:ident $(, cases = $cases:expr)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                #[allow(unused_mut, unused_variables)]
                let mut cases: u32 = $crate::check::DEFAULT_CASES;
                $(cases = $cases;)?
                $crate::check::run(
                    stringify!($name),
                    cases,
                    |$g: &mut $crate::check::Gen| $body,
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        run("always_passes", 64, |g| {
            let _ = g.draw(0u8..10);
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), 64);
    }

    #[test]
    fn failing_property_reports_replay_seed() {
        let result = panic::catch_unwind(|| {
            run("always_fails", 16, |g| {
                let v: u32 = g.draw(0u32..100);
                assert!(v > 1_000, "v was {v}");
            });
        });
        let msg = panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("property `always_fails` failed"), "{msg}");
        assert!(msg.contains("ANNOLIGHT_CHECK_SEED=0x"), "{msg}");
        assert!(msg.contains("shrunk"), "{msg}");
    }

    #[test]
    fn shrinker_minimises_simple_counterexamples() {
        // Fails whenever the drawn value is >= 10; the shrunk tape must
        // fail too (shrinking preserves failure by construction).
        let result = panic::catch_unwind(|| {
            run("threshold", 64, |g| {
                let v: u64 = g.draw(0u64..=1_000_000);
                assert!(v < 10);
            });
        });
        let msg = panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("shrunk"), "{msg}");
    }

    #[test]
    fn same_seed_same_inputs() {
        let mut first: Vec<u64> = Vec::new();
        let mut g1 = Gen::fresh(99);
        for _ in 0..16 {
            first.push(g1.draw(0u64..=u64::MAX));
        }
        let mut g2 = Gen::fresh(99);
        for expected in &first {
            assert_eq!(g2.draw(0u64..=u64::MAX), *expected);
        }
    }

    #[test]
    fn replayed_tape_reproduces_recorded_values() {
        let mut g = Gen::fresh(1234);
        let a: u32 = g.draw(5u32..500);
        let b = g.vec(1..9usize, |g| g.any::<u8>());
        let tape = g.tape().to_vec();
        let mut r = Gen::replay(tape);
        assert_eq!(r.draw(5u32..500), a);
        assert_eq!(r.vec(1..9usize, |g| g.any::<u8>()), b);
    }

    #[test]
    fn exhausted_tape_yields_minimal_values() {
        let mut g = Gen::replay(Vec::new());
        assert_eq!(g.draw(3u32..40), 3);
        assert_eq!(g.draw(-5i32..=5), -5);
        assert_eq!(g.draw(1.5f64..=9.0), 1.5);
        assert_eq!(g.vec(2..6usize, |g| g.any::<u8>()), vec![0, 0]);
    }
}
