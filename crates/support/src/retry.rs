//! Deadline-aware retry with exponential backoff and jitter.
//!
//! One policy type serves every tier that needs to try again:
//!
//! * the **stream** tier retransmits annotation/picture packets lost on
//!   the wireless hop (`annolight_stream::faults`);
//! * the **serve** tier's admission front-end tells rejected tenants to
//!   back off (`annolight_serve::ServeError::Overloaded`) — and
//!   `AnnotationService::call_with_retry` actually implements that
//!   advice with this policy.
//!
//! Delays follow the classic truncated exponential schedule
//! `base · multiplier^attempt`, capped at `max_delay_s`, optionally
//! spread by symmetric multiplicative jitter (so synchronized losers
//! don't retry in lock-step), and cut off by both an attempt budget and
//! a wall-clock deadline. All randomness comes from a caller-supplied
//! [`SmallRng`], so retry schedules replay exactly from a seed.

use crate::rng::SmallRng;

/// A truncated-exponential-backoff retry policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry, seconds.
    pub base_delay_s: f64,
    /// Multiplier applied per attempt (2.0 = classic doubling).
    pub multiplier: f64,
    /// Upper bound on any single delay, seconds.
    pub max_delay_s: f64,
    /// Maximum number of retries (attempts beyond the first try).
    pub max_retries: u32,
    /// Symmetric jitter fraction: the delay is scaled by a uniform
    /// factor in `[1 - jitter_frac, 1 + jitter_frac]`.
    pub jitter_frac: f64,
    /// Total time budget from first failure, seconds. Retries whose
    /// delay would land past the deadline are not attempted. Use
    /// [`RetryPolicy::NO_DEADLINE`] for an effectively unbounded budget.
    pub deadline_s: f64,
}

crate::impl_json!(struct RetryPolicy { base_delay_s, multiplier, max_delay_s, max_retries, jitter_frac, deadline_s });

impl RetryPolicy {
    /// A deadline so far out it never binds (kept finite so the policy
    /// serialises cleanly).
    pub const NO_DEADLINE: f64 = 1e30;

    /// Streaming-annotation default: fast first retry (one RTT-ish),
    /// doubling, capped at 200 ms, up to 6 retries, ±25 % jitter.
    /// The deadline is set per-packet by the caller (scene start time).
    #[must_use]
    pub fn annotation() -> Self {
        Self {
            base_delay_s: 0.010,
            multiplier: 2.0,
            max_delay_s: 0.200,
            max_retries: 6,
            jitter_frac: 0.25,
            deadline_s: Self::NO_DEADLINE,
        }
    }

    /// Reliable-transport default for picture data: generous attempt
    /// budget so a stream survives deep loss, no deadline (the player
    /// buffers).
    #[must_use]
    pub fn reliable() -> Self {
        Self { max_retries: 32, ..Self::annotation() }
    }

    /// Service-admission default (the `Overloaded` path): 1 ms first
    /// retry, doubling to 50 ms, 8 retries, ±50 % jitter.
    #[must_use]
    pub fn service() -> Self {
        Self {
            base_delay_s: 0.001,
            multiplier: 2.0,
            max_delay_s: 0.050,
            max_retries: 8,
            jitter_frac: 0.5,
            deadline_s: Self::NO_DEADLINE,
        }
    }

    /// Returns `self` with a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline_s = deadline_s;
        self
    }

    /// The un-jittered delay before retry `attempt` (0-based), seconds:
    /// `min(base · multiplier^attempt, max_delay)`. These are the golden
    /// values the unit tests pin.
    #[must_use]
    pub fn delay_s(&self, attempt: u32) -> f64 {
        (self.base_delay_s * self.multiplier.powi(attempt.min(64) as i32)).min(self.max_delay_s)
    }

    /// The jittered delay before retry `attempt`: [`Self::delay_s`]
    /// scaled by a uniform factor in `[1 − jitter_frac, 1 + jitter_frac]`
    /// drawn from `rng`, floored at zero. With `jitter_frac == 0` this
    /// still consumes one draw, so enabling jitter never shifts other
    /// consumers' RNG streams (callers hand each concern its own split
    /// stream; see [`SmallRng::split`]).
    #[must_use]
    pub fn jittered_delay_s(&self, attempt: u32, rng: &mut SmallRng) -> f64 {
        let u = rng.gen_f64(); // always one draw, even when jitter is off
        let factor = 1.0 + self.jitter_frac * (2.0 * u - 1.0);
        (self.delay_s(attempt) * factor).max(0.0)
    }

    /// Whether retry `attempt` (0-based) may be attempted given
    /// `elapsed_s` since the first failure: inside both the attempt
    /// budget and the deadline.
    #[must_use]
    pub fn allows(&self, attempt: u32, elapsed_s: f64) -> bool {
        attempt < self.max_retries && elapsed_s + self.delay_s(attempt) <= self.deadline_s
    }

    /// The delay for retry `attempt` if the policy allows it, `None`
    /// once the attempt budget or deadline is exhausted.
    #[must_use]
    pub fn next_delay_s(&self, attempt: u32, elapsed_s: f64, rng: &mut SmallRng) -> Option<f64> {
        if !self.allows(attempt, elapsed_s) {
            return None;
        }
        Some(self.jittered_delay_s(attempt, rng))
    }

    /// The worst-case total backoff across all permitted retries (no
    /// jitter), seconds — a bound for deadline-budget assertions.
    #[must_use]
    pub fn total_backoff_s(&self) -> f64 {
        (0..self.max_retries).map(|a| self.delay_s(a)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_sequence_golden_values() {
        let p = RetryPolicy::annotation();
        // 10 ms, 20, 40, 80, 160, then capped at 200.
        let golden = [0.010, 0.020, 0.040, 0.080, 0.160, 0.200, 0.200];
        for (attempt, want) in golden.iter().enumerate() {
            let got = p.delay_s(attempt as u32);
            assert!((got - want).abs() < 1e-12, "attempt {attempt}: {got} vs {want}");
        }
    }

    #[test]
    fn service_policy_golden_values() {
        let p = RetryPolicy::service();
        let golden = [0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.050, 0.050];
        for (attempt, want) in golden.iter().enumerate() {
            let got = p.delay_s(attempt as u32);
            assert!((got - want).abs() < 1e-12, "attempt {attempt}: {got} vs {want}");
        }
    }

    #[test]
    fn deadline_cuts_off_retries() {
        let p = RetryPolicy::annotation().with_deadline(0.050);
        // attempt 0 at elapsed 0: 10 ms delay, inside the 50 ms budget.
        assert!(p.allows(0, 0.0));
        // attempt 2 (40 ms delay) after 30 ms elapsed: 70 ms > 50 ms.
        assert!(!p.allows(2, 0.030));
        // Past the deadline entirely.
        assert!(!p.allows(0, 0.060));
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(p.next_delay_s(0, 0.060, &mut rng).is_none());
    }

    #[test]
    fn attempt_budget_cuts_off_retries() {
        let p = RetryPolicy { max_retries: 3, ..RetryPolicy::annotation() };
        assert!(p.allows(2, 0.0));
        assert!(!p.allows(3, 0.0));
    }

    #[test]
    fn jitter_bounds_under_fixed_seed() {
        let p = RetryPolicy::annotation();
        let mut rng = SmallRng::seed_from_u64(42);
        for attempt in 0..32 {
            let base = p.delay_s(attempt % 7);
            let j = p.jittered_delay_s(attempt % 7, &mut rng);
            assert!(
                j >= base * 0.75 - 1e-12 && j <= base * 1.25 + 1e-12,
                "attempt {attempt}: jittered {j} outside ±25 % of {base}"
            );
        }
        // Same seed, same schedule: replayable.
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for attempt in 0..8 {
            assert_eq!(p.jittered_delay_s(attempt, &mut a), p.jittered_delay_s(attempt, &mut b));
        }
    }

    #[test]
    fn zero_jitter_is_exact_but_still_draws() {
        let p = RetryPolicy { jitter_frac: 0.0, ..RetryPolicy::annotation() };
        let mut rng = SmallRng::seed_from_u64(3);
        let before = rng.clone();
        let j = p.jittered_delay_s(0, &mut rng);
        assert!((j - p.delay_s(0)).abs() < 1e-15);
        assert_ne!(rng, before, "one draw must be consumed regardless");
    }

    #[test]
    fn total_backoff_bounds_the_schedule() {
        let p = RetryPolicy::annotation();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut total = 0.0;
        let mut attempt = 0;
        while let Some(d) = p.next_delay_s(attempt, total, &mut rng) {
            total += d;
            attempt += 1;
        }
        assert_eq!(attempt, p.max_retries);
        assert!(total <= p.total_backoff_s() * 1.25 + 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let p = RetryPolicy::service().with_deadline(1.5);
        let json = crate::json::to_string(&p);
        let back: RetryPolicy = crate::json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
