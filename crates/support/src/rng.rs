//! A small, fast, seedable PRNG replacing `rand::rngs::SmallRng`.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! splitmix64 so that *any* `u64` seed — including 0 — yields a
//! well-mixed state. The API mirrors the subset of `rand` the workspace
//! used: [`SmallRng::seed_from_u64`], [`SmallRng::gen_range`] over
//! integer and float ranges, and [`SmallRng::gen_bool`].
//!
//! Not cryptographic. Deterministic across platforms (no `usize`-width
//! dependence in the core algorithm).

use std::ops::{Range, RangeInclusive};

/// splitmix64 step — used for seeding and for deriving stream seeds.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ with a `rand`-shaped convenience API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    ///
    /// Matches the ergonomics of `rand::SeedableRng::seed_from_u64`; the
    /// output stream differs from `rand`'s, which is fine — everything
    /// downstream is seeded-deterministic, not golden-value-pinned.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// A generator whose **first** [`Self::next_u64`] output is exactly
    /// `word` (later outputs are unspecified). The property-test
    /// shrinker uses this to map one recorded tape word through the
    /// [`SampleRange`] implementations — each of which consumes exactly
    /// one raw output — so that a smaller word always yields a smaller
    /// sample.
    #[must_use]
    pub fn from_raw_word(word: u64) -> Self {
        // result = rotl(s0 + s3, 23) + s0; with s0 = 0 this is
        // rotl(s3, 23), so store the pre-rotated word in s3.
        Self { s: [0, 0, 0, word.rotate_right(23)] }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)`, using the top 53 bits.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniform value from `range` (half-open `a..b` or inclusive
    /// `a..=b`, integer or float).
    ///
    /// # Panics
    ///
    /// Panics on an empty range, mirroring `rand`.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        self.gen_f64() < p
    }

    /// Derives an independent child generator by consuming one draw
    /// from `self` (splittable-PRNG style). Children are well-mixed via
    /// the splitmix64 seeding path and their streams do not correlate
    /// with the parent's subsequent output in any way our consumers can
    /// observe.
    ///
    /// This is how multi-concern simulations (e.g. the stream tier's
    /// fault injector) give every concern — drop, duplication,
    /// reordering, jitter, retry — its *own* stream from one user seed:
    /// enabling or tuning one concern never shifts the draws any other
    /// concern sees, so fault scenarios stay independently reproducible.
    #[must_use]
    pub fn split(&mut self) -> SmallRng {
        SmallRng::seed_from_u64(self.next_u64())
    }

    /// A generator for stream `stream_id` of `seed`, without consuming
    /// state anywhere: `stream(seed, i)` is a pure function, so
    /// distributed components can agree on per-concern streams by index
    /// alone. Distinct `(seed, stream_id)` pairs yield uncorrelated
    /// streams; `stream(seed, id)` never equals `seed_from_u64(seed)`'s
    /// stream for the ids we use (the golden-ratio multiply decouples
    /// them).
    #[must_use]
    pub fn stream(seed: u64, stream_id: u64) -> SmallRng {
        let mut s = seed ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let derived = splitmix64(&mut s) ^ splitmix64(&mut s).rotate_left(32);
        SmallRng::seed_from_u64(derived)
    }

    /// A uniform `u64` below `bound` (widening-multiply method; the tiny
    /// modulo bias of the naive approach is avoided without rejection
    /// loops, keeping draws O(1) and deterministic in count).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }
}

/// Ranges that [`SmallRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Span as u64 handles the full signed domain via wrapping.
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.below(span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width u64/i64 range: every output is valid.
                    return rng.next_u64() as $t;
                }
                let off = rng.below(span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty float range");
        let v = self.start + (self.end - self.start) * rng.gen_f64();
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end { self.start.max(prev_down(self.end)) } else { v }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty float range");
        lo + (hi - lo) * rng.gen_f64()
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty float range");
        let v = self.start + (self.end - self.start) * rng.gen_f32();
        if v >= self.end { f32::max(self.start, prev_down32(self.end)) } else { v }
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty float range");
        lo + (hi - lo) * rng.gen_f32()
    }
}

fn prev_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits().saturating_sub(1))
}

fn prev_down32(x: f32) -> f32 {
    f32::from_bits(x.to_bits().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(30..70);
            assert!((30..70).contains(&v));
            let w: i16 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&w));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen_range(1.0f32..4.0);
            assert!((1.0..4.0).contains(&g));
            let h: u8 = rng.gen_range(200..=255);
            assert!(h >= 200);
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..64 {
            distinct.insert(rng.next_u64());
        }
        assert!(distinct.len() > 60, "zero seed must still mix well");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_900..=3_100).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn from_raw_word_first_output_is_the_word() {
        for w in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            assert_eq!(SmallRng::from_raw_word(w).next_u64(), w);
        }
        // Monotone word -> monotone sample, the shrinker's contract.
        let lo: u32 = (0u32..1000).sample(&mut SmallRng::from_raw_word(10));
        let hi: u32 = (0u32..1000).sample(&mut SmallRng::from_raw_word(u64::MAX / 2));
        assert!(lo <= hi);
        let zero: u32 = (7u32..1000).sample(&mut SmallRng::from_raw_word(0));
        assert_eq!(zero, 7, "word 0 must give the range minimum");
    }

    #[test]
    fn split_streams_are_independent_and_reproducible() {
        let mut parent_a = SmallRng::seed_from_u64(5);
        let mut parent_b = SmallRng::seed_from_u64(5);
        let mut child_a = parent_a.split();
        let mut child_b = parent_b.split();
        for _ in 0..64 {
            assert_eq!(child_a.next_u64(), child_b.next_u64(), "same seed, same child stream");
        }
        // The child differs from the parent's continuing stream.
        let mut parent = SmallRng::seed_from_u64(5);
        let mut child = parent.split();
        let overlap = (0..64).filter(|_| parent.next_u64() == child.next_u64()).count();
        assert_eq!(overlap, 0, "child stream must not track the parent");
    }

    #[test]
    fn indexed_streams_are_distinct_and_pure() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..32u64 {
            let mut s = SmallRng::stream(1234, id);
            assert!(seen.insert(s.next_u64()), "stream {id} collides");
            // Pure function: same (seed, id) rebuilds the same stream.
            let mut again = SmallRng::stream(1234, id);
            assert_eq!(SmallRng::stream(1234, id).next_u64(), again.next_u64());
        }
        // Stream id 0 is not the raw seed stream.
        assert_ne!(
            SmallRng::stream(42, 0).next_u64(),
            SmallRng::seed_from_u64(42).next_u64()
        );
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }
}
