//! The packetised container: sequence header, GOP structure, user data.
//!
//! The container's job in this reproduction is the paper's §3 property:
//! annotations must be "available even before decoding the data". User-data
//! packets are therefore ordinary packets that the encoder emits *ahead* of
//! the pictures they describe, and the decoder surfaces them without
//! touching any picture payload.
//!
//! Layout (all multi-byte integers little-endian):
//!
//! ```text
//! magic   "ALV1"
//! u16     width        u16 height
//! u32     fps × 1000   u32 frame count
//! u8      gop size (I-frame interval)
//! packets: { u8 kind; varint len; payload[len] }*
//!          kind 1 = user data, 2 = I picture, 3 = P picture
//! ```

use crate::error::CodecError;
use crate::picture;
use crate::quant::QScale;
use annolight_imgproc::{Frame, Yuv420Frame};
use annolight_support::bytes::{ByteBuf, Bytes};

const MAGIC: &[u8; 4] = b"ALV1";

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderConfig {
    /// Frame width (non-zero multiple of 16).
    pub width: u32,
    /// Frame height (non-zero multiple of 16).
    pub height: u32,
    /// Frames per second.
    pub fps: f64,
    /// I-frame interval (GOP size), ≥ 1.
    pub gop_size: u8,
    /// Quantiser scale for all pictures (the starting point when rate
    /// control is enabled).
    pub qscale: QScale,
    /// Optional target bitrate; when set, a picture-level rate controller
    /// adapts the quantiser around `qscale` to hold this budget.
    pub target_bitrate_bps: Option<f64>,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            width: 128,
            height: 96,
            fps: 12.0,
            gop_size: 12,
            qscale: QScale::default(),
            target_bitrate_bps: None,
        }
    }
}

/// Packet kinds in the container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Out-of-band user data (annotation tracks).
    UserData,
    /// Intra picture.
    IntraPicture,
    /// Predicted picture.
    PredictedPicture,
}

impl PacketKind {
    fn to_byte(self) -> u8 {
        match self {
            PacketKind::UserData => 1,
            PacketKind::IntraPicture => 2,
            PacketKind::PredictedPicture => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, CodecError> {
        match b {
            1 => Ok(PacketKind::UserData),
            2 => Ok(PacketKind::IntraPicture),
            3 => Ok(PacketKind::PredictedPicture),
            _ => Err(CodecError::Malformed { reason: format!("unknown packet kind {b}") }),
        }
    }
}

/// One container packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// What the payload contains.
    pub kind: PacketKind,
    /// The payload bytes.
    pub payload: Bytes,
}

/// A fully encoded stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedStream {
    bytes: Bytes,
    width: u32,
    height: u32,
    fps: f64,
    frame_count: u32,
}

impl EncodedStream {
    /// The serialized stream bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total stream size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the stream is empty (never true for encoder output).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Frame width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Number of coded pictures.
    pub fn frame_count(&self) -> u32 {
        self.frame_count
    }

    /// Reconstructs a stream object from raw bytes (e.g. received over the
    /// network).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] if the header is invalid.
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Result<Self, CodecError> {
        let bytes: Bytes = bytes.into();
        let h = Header::parse(&bytes)?;
        Ok(Self { width: h.width, height: h.height, fps: h.fps, frame_count: h.frame_count, bytes })
    }
}

struct Header {
    width: u32,
    height: u32,
    fps: f64,
    frame_count: u32,
    gop_size: u8,
    body_offset: usize,
}

impl Header {
    const LEN: usize = 4 + 2 + 2 + 4 + 4 + 1;

    fn parse(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < Self::LEN || &bytes[..4] != MAGIC {
            return Err(CodecError::Malformed { reason: "bad or missing stream header".into() });
        }
        let width = u32::from(u16::from_le_bytes([bytes[4], bytes[5]]));
        let height = u32::from(u16::from_le_bytes([bytes[6], bytes[7]]));
        let fps = f64::from(u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]])) / 1000.0;
        let frame_count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
        let gop_size = bytes[16];
        if width == 0 || height == 0 || width % 16 != 0 || height % 16 != 0 {
            return Err(CodecError::Malformed { reason: "bad dimensions in header".into() });
        }
        Ok(Self { width, height, fps, frame_count, gop_size, body_offset: Self::LEN })
    }
}

/// The streaming encoder.
///
/// Push frames in display order; interleave [`Encoder::push_user_data`]
/// calls at any point — user data is emitted at the current stream
/// position, i.e. *before* all later pictures.
#[derive(Debug)]
pub struct Encoder {
    config: EncoderConfig,
    body: ByteBuf,
    frame_count: u32,
    reference: Option<Yuv420Frame>,
    rate: Option<crate::rate::RateController>,
}

impl Encoder {
    /// Creates an encoder.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadDimensions`] / [`CodecError::BadConfig`]
    /// for invalid configuration.
    pub fn new(config: EncoderConfig) -> Result<Self, CodecError> {
        if config.width == 0
            || config.height == 0
            || !config.width.is_multiple_of(16)
            || !config.height.is_multiple_of(16)
            || config.width > u32::from(u16::MAX)
            || config.height > u32::from(u16::MAX)
        {
            return Err(CodecError::BadDimensions { width: config.width, height: config.height });
        }
        if !config.fps.is_finite() || config.fps <= 0.0 {
            return Err(CodecError::BadConfig { reason: format!("fps {}", config.fps) });
        }
        if config.gop_size == 0 {
            return Err(CodecError::BadConfig { reason: "gop_size must be >= 1".into() });
        }
        let rate = match config.target_bitrate_bps {
            Some(bps) => {
                if !bps.is_finite() || bps <= 0.0 {
                    return Err(CodecError::BadConfig { reason: format!("bitrate {bps}") });
                }
                Some(crate::rate::RateController::from_bitrate(bps, config.fps, config.qscale))
            }
            None => None,
        };
        Ok(Self { config, body: ByteBuf::new(), frame_count: 0, reference: None, rate })
    }

    /// The encoder configuration.
    pub fn config(&self) -> EncoderConfig {
        self.config
    }

    /// Number of frames pushed so far.
    pub fn frame_count(&self) -> u32 {
        self.frame_count
    }

    /// Appends a user-data packet at the current stream position.
    pub fn push_user_data(&mut self, data: &[u8]) {
        self.put_packet(PacketKind::UserData, data);
    }

    /// Encodes and appends one frame.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::FrameSizeMismatch`] when the frame does not
    /// match the configured dimensions.
    pub fn push_frame(&mut self, frame: &Frame) -> Result<(), CodecError> {
        if (frame.width(), frame.height()) != (self.config.width, self.config.height) {
            return Err(CodecError::FrameSizeMismatch {
                expected: (self.config.width, self.config.height),
                actual: (frame.width(), frame.height()),
            });
        }
        let yuv = frame
            .to_yuv420()
            .map_err(|e| CodecError::Malformed { reason: e.to_string() })?;
        let is_intra =
            self.reference.is_none() || self.frame_count.is_multiple_of(u32::from(self.config.gop_size));
        let qscale = self.rate.as_ref().map_or(self.config.qscale, |r| r.qscale());
        let coded = if is_intra {
            picture::encode_intra(&yuv, qscale)
        } else {
            let reference = self.reference.as_ref().expect("checked above");
            picture::encode_inter(&yuv, reference, qscale)
        };
        if let Some(rate) = &mut self.rate {
            rate.update(coded.bytes.len());
        }
        let kind = if is_intra { PacketKind::IntraPicture } else { PacketKind::PredictedPicture };
        self.put_packet(kind, &coded.bytes);
        self.reference = Some(coded.reconstruction);
        self.frame_count += 1;
        Ok(())
    }

    fn put_packet(&mut self, kind: PacketKind, payload: &[u8]) {
        self.body.put_u8(kind.to_byte());
        let mut len = payload.len() as u64;
        loop {
            let byte = (len & 0x7F) as u8;
            len >>= 7;
            if len == 0 {
                self.body.put_u8(byte);
                break;
            }
            self.body.put_u8(byte | 0x80);
        }
        self.body.put_slice(payload);
    }

    /// Finalises and returns the stream.
    pub fn finish(self) -> EncodedStream {
        let mut out = ByteBuf::with_capacity(Header::LEN + self.body.len());
        out.put_slice(MAGIC);
        out.put_u16_le(self.config.width as u16);
        out.put_u16_le(self.config.height as u16);
        out.put_u32_le((self.config.fps * 1000.0).round() as u32);
        out.put_u32_le(self.frame_count);
        out.put_u8(self.config.gop_size);
        out.put_slice(&self.body);
        EncodedStream {
            bytes: out.freeze(),
            width: self.config.width,
            height: self.config.height,
            fps: self.config.fps,
            frame_count: self.frame_count,
        }
    }
}

/// The streaming decoder.
///
/// On construction it scans the packet table (cheap — no picture payload is
/// touched) and collects all user data, mirroring how the paper's client
/// reads annotations before decode. Pictures are then decoded on demand.
#[derive(Debug)]
pub struct Decoder {
    width: u32,
    height: u32,
    fps: f64,
    gop_size: u8,
    user_data: Vec<Bytes>,
    pictures: Vec<Packet>,
    /// Index of the next picture [`Decoder::decode_next`] will produce.
    next: usize,
    reference: Option<Yuv420Frame>,
}

impl Decoder {
    /// Parses the container structure of `stream`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] for a corrupt container.
    pub fn new(stream: &EncodedStream) -> Result<Self, CodecError> {
        Self::from_bytes(stream.as_bytes())
    }

    /// Parses a container from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] for a corrupt container.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let header = Header::parse(bytes)?;
        let mut pos = header.body_offset;
        let mut user_data = Vec::new();
        let mut pictures = Vec::new();
        while pos < bytes.len() {
            let kind = PacketKind::from_byte(bytes[pos])?;
            pos += 1;
            let mut len = 0u64;
            let mut shift = 0u32;
            loop {
                let byte = *bytes
                    .get(pos)
                    .ok_or_else(|| CodecError::Malformed { reason: "truncated packet length".into() })?;
                pos += 1;
                len |= u64::from(byte & 0x7F) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
                if shift >= 64 {
                    return Err(CodecError::Malformed { reason: "packet length overflow".into() });
                }
            }
            let end = pos + len as usize;
            if end > bytes.len() {
                return Err(CodecError::Malformed { reason: "truncated packet payload".into() });
            }
            let payload = Bytes::copy_from_slice(&bytes[pos..end]);
            pos = end;
            match kind {
                PacketKind::UserData => user_data.push(payload),
                _ => pictures.push(Packet { kind, payload }),
            }
        }
        if pictures.len() as u32 != header.frame_count {
            return Err(CodecError::Malformed {
                reason: format!(
                    "header promises {} pictures, found {}",
                    header.frame_count,
                    pictures.len()
                ),
            });
        }
        Ok(Self {
            width: header.width,
            height: header.height,
            fps: header.fps,
            gop_size: header.gop_size,
            user_data,
            pictures,
            next: 0,
            reference: None,
        })
    }

    /// All user-data payloads, in stream order — available before any
    /// picture is decoded.
    pub fn user_data(&self) -> &[Bytes] {
        &self.user_data
    }

    /// Frame dimensions.
    pub fn dimensions(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// I-frame interval.
    pub fn gop_size(&self) -> u8 {
        self.gop_size
    }

    /// Number of coded pictures.
    pub fn frame_count(&self) -> u32 {
        self.pictures.len() as u32
    }

    /// Decodes the next picture in display order, or `None` at end of
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] for corrupt picture payloads or a
    /// P picture with no preceding I picture.
    pub fn decode_next(&mut self) -> Result<Option<Frame>, CodecError> {
        let Some(packet) = self.pictures.get(self.next) else {
            return Ok(None);
        };
        let yuv = match packet.kind {
            PacketKind::IntraPicture => picture::decode_intra(&packet.payload, self.width, self.height)?,
            PacketKind::PredictedPicture => {
                let reference = self.reference.as_ref().ok_or_else(|| CodecError::Malformed {
                    reason: "P picture before any I picture".into(),
                })?;
                picture::decode_inter(&packet.payload, reference)?
            }
            PacketKind::UserData => unreachable!("user data filtered at parse time"),
        };
        self.next += 1;
        let rgb = yuv.to_rgb();
        self.reference = Some(yuv);
        Ok(Some(rgb))
    }

    /// Decodes every remaining picture.
    ///
    /// # Errors
    ///
    /// Returns the first decode error encountered.
    pub fn decode_all(&mut self) -> Result<Vec<Frame>, CodecError> {
        let mut out = Vec::with_capacity(self.pictures.len() - self.next);
        while let Some(f) = self.decode_next()? {
            out.push(f);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::psnr;

    fn frames(n: u32, w: u32, h: u32) -> Vec<Frame> {
        (0..n)
            .map(|i| {
                Frame::from_fn(w, h, |x, y| {
                    let v = (120.0
                        + 70.0 * (((x + i * 2) as f32) * 0.15).sin()
                        + 40.0 * ((y as f32) * 0.2).cos())
                    .round()
                    .clamp(0.0, 255.0) as u8;
                    [v, v / 2, 255 - v]
                })
            })
            .collect()
    }

    fn encode(frames: &[Frame], cfg: EncoderConfig, user: &[&[u8]]) -> EncodedStream {
        let mut enc = Encoder::new(cfg).unwrap();
        for u in user {
            enc.push_user_data(u);
        }
        for f in frames {
            enc.push_frame(f).unwrap();
        }
        enc.finish()
    }

    fn cfg(w: u32, h: u32) -> EncoderConfig {
        EncoderConfig {
            width: w,
            height: h,
            fps: 12.0,
            gop_size: 4,
            qscale: QScale::new(4),
            target_bitrate_bps: None,
        }
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let fs = frames(9, 32, 32);
        let stream = encode(&fs, cfg(32, 32), &[b"hello"]);
        let mut dec = Decoder::new(&stream).unwrap();
        assert_eq!(dec.dimensions(), (32, 32));
        assert_eq!(dec.frame_count(), 9);
        assert_eq!(dec.gop_size(), 4);
        assert_eq!(dec.user_data().len(), 1);
        assert_eq!(&dec.user_data()[0][..], b"hello");
        let out = dec.decode_all().unwrap();
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn decoded_frames_are_faithful() {
        let fs = frames(8, 48, 32);
        let stream = encode(&fs, cfg(48, 32), &[]);
        let mut dec = Decoder::new(&stream).unwrap();
        for (i, orig) in fs.iter().enumerate() {
            let d = dec.decode_next().unwrap().unwrap();
            let p = psnr(orig, &d);
            assert!(p > 28.0, "frame {i} PSNR {p:.1} dB");
        }
    }

    #[test]
    fn gop_structure_alternates() {
        let fs = frames(10, 32, 32);
        let stream = encode(&fs, cfg(32, 32), &[]);
        let dec = Decoder::new(&stream).unwrap();
        let kinds: Vec<PacketKind> = dec.pictures.iter().map(|p| p.kind).collect();
        assert_eq!(kinds[0], PacketKind::IntraPicture);
        assert_eq!(kinds[1], PacketKind::PredictedPicture);
        assert_eq!(kinds[4], PacketKind::IntraPicture, "gop_size 4 → I at 0, 4, 8");
        assert_eq!(kinds[8], PacketKind::IntraPicture);
    }

    #[test]
    fn user_data_interleaves_in_order() {
        let fs = frames(2, 32, 32);
        let mut enc = Encoder::new(cfg(32, 32)).unwrap();
        enc.push_user_data(b"first");
        enc.push_frame(&fs[0]).unwrap();
        enc.push_user_data(b"second");
        enc.push_frame(&fs[1]).unwrap();
        let stream = enc.finish();
        let dec = Decoder::new(&stream).unwrap();
        let ud: Vec<&[u8]> = dec.user_data().iter().map(|b| &b[..]).collect();
        assert_eq!(ud, vec![&b"first"[..], &b"second"[..]]);
    }

    #[test]
    fn frame_size_mismatch_rejected() {
        let mut enc = Encoder::new(cfg(32, 32)).unwrap();
        let err = enc.push_frame(&Frame::new(16, 16)).unwrap_err();
        assert!(matches!(err, CodecError::FrameSizeMismatch { .. }));
    }

    #[test]
    fn bad_config_rejected() {
        assert!(Encoder::new(EncoderConfig { width: 30, ..cfg(32, 32) }).is_err());
        assert!(Encoder::new(EncoderConfig { fps: 0.0, ..cfg(32, 32) }).is_err());
        assert!(Encoder::new(EncoderConfig { gop_size: 0, ..cfg(32, 32) }).is_err());
    }

    #[test]
    fn corrupt_streams_rejected() {
        assert!(Decoder::from_bytes(b"").is_err());
        assert!(Decoder::from_bytes(b"XXXXXXXXXXXXXXXXXXXX").is_err());
        let fs = frames(3, 32, 32);
        let stream = encode(&fs, cfg(32, 32), &[b"u"]);
        let mut bytes = stream.as_bytes().to_vec();
        bytes.truncate(bytes.len() - 5);
        assert!(Decoder::from_bytes(&bytes).is_err());
    }

    #[test]
    fn stream_from_bytes_roundtrip() {
        let fs = frames(3, 32, 32);
        let stream = encode(&fs, cfg(32, 32), &[]);
        let again = EncodedStream::from_bytes(stream.as_bytes().to_vec()).unwrap();
        assert_eq!(again, stream);
        assert_eq!(again.frame_count(), 3);
    }

    #[test]
    fn empty_stream_has_zero_frames() {
        let enc = Encoder::new(cfg(32, 32)).unwrap();
        let stream = enc.finish();
        assert_eq!(stream.frame_count(), 0);
        let mut dec = Decoder::new(&stream).unwrap();
        assert!(dec.decode_next().unwrap().is_none());
    }

    #[test]
    fn rate_control_holds_budget_end_to_end() {
        let fs = frames(36, 64, 48);
        let fps = 12.0;
        let target_bps = 200_000.0;
        let stream = encode(
            &fs,
            EncoderConfig {
                width: 64,
                height: 48,
                fps,
                gop_size: 6,
                qscale: QScale::new(8),
                target_bitrate_bps: Some(target_bps),
            },
            &[],
        );
        let duration = fs.len() as f64 / fps;
        let achieved_bps = stream.len() as f64 * 8.0 / duration;
        assert!(
            achieved_bps < target_bps * 1.4,
            "achieved {achieved_bps} bps vs target {target_bps}"
        );
        // And the stream still decodes faithfully.
        let mut dec = Decoder::new(&stream).unwrap();
        assert_eq!(dec.decode_all().unwrap().len(), 36);
    }

    #[test]
    fn bad_bitrate_rejected() {
        let err = Encoder::new(EncoderConfig {
            target_bitrate_bps: Some(0.0),
            ..cfg(32, 32)
        });
        assert!(err.is_err());
    }

    #[test]
    fn compression_is_real() {
        // 20 slowly-moving frames must compress far below raw RGB size.
        let fs = frames(20, 64, 48);
        let raw = 20 * 64 * 48 * 3;
        let stream = encode(&fs, EncoderConfig { gop_size: 10, ..cfg(64, 48) }, &[]);
        assert!(
            stream.len() * 3 < raw,
            "stream {} vs raw {raw}",
            stream.len()
        );
    }
}
