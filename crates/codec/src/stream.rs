//! The packetised container: sequence header, GOP structure, user data.
//!
//! The container's job in this reproduction is the paper's §3 property:
//! annotations must be "available even before decoding the data". User-data
//! packets are therefore ordinary packets that the encoder emits *ahead* of
//! the pictures they describe, and the decoder surfaces them without
//! touching any picture payload.
//!
//! Layout (all multi-byte integers little-endian):
//!
//! ```text
//! magic   "ALV1"
//! u16     width        u16 height
//! u32     fps × 1000   u32 frame count
//! u8      gop size (I-frame interval)
//! packets: { u8 kind; varint len; payload[len] }*
//!          kind 1 = user data, 2 = I picture, 3 = P picture
//! ```

use crate::error::CodecError;
use crate::motion::SearchMode;
use crate::picture::{self, CodecOptions, CodedPicture};
use crate::quant::QScale;
use annolight_core::parallel::{chunked_map, ParallelConfig};
use annolight_imgproc::{Frame, Yuv420Frame};
use annolight_support::bytes::{ByteBuf, Bytes};

const MAGIC: &[u8; 4] = b"ALV1";

/// Hard cap on coded width/height, in pixels.
///
/// The header stores `u16` dimensions, but accepting the full 65 535 range
/// would let a 17-byte forged header drive multi-gigabyte plane
/// allocations before a single payload byte is validated. 4096×4096 is far
/// beyond any stream this library produces and keeps the worst-case
/// allocation for a malformed stream at ~24 MiB.
pub const MAX_DIM: u32 = 4096;

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderConfig {
    /// Frame width (non-zero multiple of 16).
    pub width: u32,
    /// Frame height (non-zero multiple of 16).
    pub height: u32,
    /// Frames per second.
    pub fps: f64,
    /// I-frame interval (GOP size), ≥ 1.
    pub gop_size: u8,
    /// Quantiser scale for all pictures (the starting point when rate
    /// control is enabled).
    pub qscale: QScale,
    /// Optional target bitrate; when set, a picture-level rate controller
    /// adapts the quantiser around `qscale` to hold this budget.
    pub target_bitrate_bps: Option<f64>,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            width: 128,
            height: 96,
            fps: 12.0,
            gop_size: 12,
            qscale: QScale::default(),
            target_bitrate_bps: None,
        }
    }
}

/// Packet kinds in the container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Out-of-band user data (annotation tracks).
    UserData,
    /// Intra picture.
    IntraPicture,
    /// Predicted picture.
    PredictedPicture,
}

impl PacketKind {
    fn to_byte(self) -> u8 {
        match self {
            PacketKind::UserData => 1,
            PacketKind::IntraPicture => 2,
            PacketKind::PredictedPicture => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, CodecError> {
        match b {
            1 => Ok(PacketKind::UserData),
            2 => Ok(PacketKind::IntraPicture),
            3 => Ok(PacketKind::PredictedPicture),
            _ => Err(CodecError::Malformed { reason: format!("unknown packet kind {b}") }),
        }
    }
}

/// One container packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// What the payload contains.
    pub kind: PacketKind,
    /// The payload bytes.
    pub payload: Bytes,
}

/// A fully encoded stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedStream {
    bytes: Bytes,
    width: u32,
    height: u32,
    fps: f64,
    frame_count: u32,
}

impl EncodedStream {
    /// The serialized stream bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total stream size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the stream is empty (never true for encoder output).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Frame width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Number of coded pictures.
    pub fn frame_count(&self) -> u32 {
        self.frame_count
    }

    /// Reconstructs a stream object from raw bytes (e.g. received over the
    /// network).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] if the header is invalid.
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Result<Self, CodecError> {
        let bytes: Bytes = bytes.into();
        let h = Header::parse(&bytes)?;
        Ok(Self { width: h.width, height: h.height, fps: h.fps, frame_count: h.frame_count, bytes })
    }
}

struct Header {
    width: u32,
    height: u32,
    fps: f64,
    frame_count: u32,
    gop_size: u8,
    body_offset: usize,
}

impl Header {
    const LEN: usize = 4 + 2 + 2 + 4 + 4 + 1;

    fn parse(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < Self::LEN || &bytes[..4] != MAGIC {
            return Err(CodecError::Malformed { reason: "bad or missing stream header".into() });
        }
        let width = u32::from(u16::from_le_bytes([bytes[4], bytes[5]]));
        let height = u32::from(u16::from_le_bytes([bytes[6], bytes[7]]));
        let fps = f64::from(u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]])) / 1000.0;
        let frame_count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
        let gop_size = bytes[16];
        if width == 0 || height == 0 || width % 16 != 0 || height % 16 != 0 {
            return Err(CodecError::Malformed { reason: "bad dimensions in header".into() });
        }
        if width > MAX_DIM || height > MAX_DIM {
            return Err(CodecError::Malformed {
                reason: format!("dimensions {width}x{height} exceed the {MAX_DIM} cap"),
            });
        }
        Ok(Self { width, height, fps, frame_count, gop_size, body_offset: Self::LEN })
    }
}

/// The streaming encoder.
///
/// Push frames in display order; interleave [`Encoder::push_user_data`]
/// calls at any point — user data is emitted at the current stream
/// position, i.e. *before* all later pictures.
#[derive(Debug)]
pub struct Encoder {
    config: EncoderConfig,
    opts: CodecOptions,
    body: ByteBuf,
    frame_count: u32,
    reference: Option<Yuv420Frame>,
    rate: Option<crate::rate::RateController>,
    /// Reusable per-picture working memory (levels, predictor rows,
    /// entropy buffer) — see [`picture::CodecScratch`].
    scratch: picture::CodecScratch,
    /// The previous reference frame, recycled as the next picture's
    /// reconstruction buffer (recon ↔ reference ping-pong): a warm
    /// serial encode loop allocates nothing per frame.
    spare: Option<Yuv420Frame>,
}

impl Encoder {
    /// Creates an encoder.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadDimensions`] / [`CodecError::BadConfig`]
    /// for invalid configuration.
    pub fn new(config: EncoderConfig) -> Result<Self, CodecError> {
        if config.width == 0
            || config.height == 0
            || !config.width.is_multiple_of(16)
            || !config.height.is_multiple_of(16)
            || config.width > MAX_DIM
            || config.height > MAX_DIM
        {
            return Err(CodecError::BadDimensions { width: config.width, height: config.height });
        }
        if !config.fps.is_finite() || config.fps <= 0.0 {
            return Err(CodecError::BadConfig { reason: format!("fps {}", config.fps) });
        }
        if config.gop_size == 0 {
            return Err(CodecError::BadConfig { reason: "gop_size must be >= 1".into() });
        }
        let rate = match config.target_bitrate_bps {
            Some(bps) => {
                if !bps.is_finite() || bps <= 0.0 {
                    return Err(CodecError::BadConfig { reason: format!("bitrate {bps}") });
                }
                Some(crate::rate::RateController::from_bitrate(bps, config.fps, config.qscale))
            }
            None => None,
        };
        Ok(Self {
            config,
            opts: CodecOptions::default(),
            body: ByteBuf::new(),
            frame_count: 0,
            reference: None,
            rate,
            scratch: picture::CodecScratch::default(),
            spare: None,
        })
    }

    /// Fans per-picture transform/quant/motion work out over `parallel`
    /// worker threads, and — for [`Encoder::push_frames`] — encodes closed
    /// GOPs concurrently. `workers == 0` (the default) is the inline
    /// serial reference; every worker count produces byte-identical
    /// streams.
    #[must_use]
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.opts.parallel = parallel;
        self
    }

    /// Selects the motion SAD evaluation mode. Both modes produce
    /// bit-identical vectors (and therefore bitstreams); exhaustive exists
    /// as the benchmark/differential baseline.
    #[must_use]
    pub fn with_search_mode(mut self, search: SearchMode) -> Self {
        self.opts.search = search;
        self
    }

    /// Uses the retained float matrix DCT/quant kernels instead of the
    /// fixed-point AAN fast path. The kernel choice is not recorded in the
    /// bitstream: a decoder must be configured with the same flag for its
    /// reconstruction to track the encoder exactly.
    #[must_use]
    pub fn with_reference_kernels(mut self, reference: bool) -> Self {
        self.opts.reference_kernels = reference;
        self
    }

    /// The per-picture coding options.
    pub fn options(&self) -> &CodecOptions {
        &self.opts
    }

    /// The encoder configuration.
    pub fn config(&self) -> EncoderConfig {
        self.config
    }

    /// Number of frames pushed so far.
    pub fn frame_count(&self) -> u32 {
        self.frame_count
    }

    /// Appends a user-data packet at the current stream position.
    pub fn push_user_data(&mut self, data: &[u8]) {
        self.put_packet(PacketKind::UserData, data);
    }

    /// Pre-reserves `additional` bytes of packet-body capacity. A caller
    /// that can bound its total coded size (e.g. from a previous pass or
    /// a rate budget) keeps the body append loop allocation-free.
    pub fn reserve_body(&mut self, additional: usize) {
        self.body.reserve(additional);
    }

    /// Encodes and appends one frame.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::FrameSizeMismatch`] when the frame does not
    /// match the configured dimensions.
    pub fn push_frame(&mut self, frame: &Frame) -> Result<(), CodecError> {
        if (frame.width(), frame.height()) != (self.config.width, self.config.height) {
            return Err(CodecError::FrameSizeMismatch {
                expected: (self.config.width, self.config.height),
                actual: (frame.width(), frame.height()),
            });
        }
        let yuv = frame
            .to_yuv420()
            .map_err(|e| CodecError::Malformed { reason: e.to_string() })?;
        self.push_yuv_frame(&yuv)
    }

    /// Encodes and appends one frame already in the codec's native planar
    /// 4:2:0 representation, skipping the RGB→YUV conversion entirely.
    ///
    /// [`Encoder::push_frame`] is exactly `to_yuv420` followed by this, so
    /// pushing the converted frame yields a byte-identical stream.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::FrameSizeMismatch`] when the frame does not
    /// match the configured dimensions.
    pub fn push_yuv_frame(&mut self, yuv: &Yuv420Frame) -> Result<(), CodecError> {
        if (yuv.width(), yuv.height()) != (self.config.width, self.config.height) {
            return Err(CodecError::FrameSizeMismatch {
                expected: (self.config.width, self.config.height),
                actual: (yuv.width(), yuv.height()),
            });
        }
        let is_intra = self.next_is_intra();
        let qscale = self.rate.as_ref().map_or(self.config.qscale, |r| r.qscale());
        // Reconstruction buffer: recycle the retired reference frame
        // (ping-ponged below) instead of allocating one per picture.
        let mut recon = match self.spare.take() {
            Some(f) if (f.width(), f.height()) == (yuv.width(), yuv.height()) => f,
            _ => Yuv420Frame::new(yuv.width(), yuv.height())
                .map_err(|e| CodecError::Malformed { reason: e.to_string() })?,
        };
        let reference = if is_intra { None } else { self.reference.as_ref() };
        picture::encode_picture_into(yuv, reference, qscale, &self.opts, &mut self.scratch, &mut recon);
        if let Some(rate) = &mut self.rate {
            rate.update(self.scratch.payload.len());
        }
        let kind = if is_intra { PacketKind::IntraPicture } else { PacketKind::PredictedPicture };
        let payload = std::mem::take(&mut self.scratch.payload);
        self.put_packet(kind, &payload);
        self.scratch.payload = payload;
        self.spare = self.reference.replace(recon);
        self.frame_count += 1;
        Ok(())
    }

    /// Whether the next pushed frame starts a GOP (is coded intra).
    fn next_is_intra(&self) -> bool {
        self.reference.is_none()
            || self.frame_count.is_multiple_of(u32::from(self.config.gop_size))
    }

    /// Encodes and appends a batch of frames, fanning **closed GOPs** out
    /// across the configured worker pool.
    ///
    /// Each GOP after the first intra boundary depends only on its own
    /// frames (the intra picture resets the prediction chain), so GOPs are
    /// independent jobs. Inside a GOP job the per-picture band fan-out is
    /// forced serial to avoid nested thread spawning. Packets are emitted
    /// in display order regardless of completion order, so the stream is
    /// byte-identical to an equivalent sequence of [`Encoder::push_frame`]
    /// calls for every worker count.
    ///
    /// Falls back to the serial per-frame path when rate control is
    /// active (the controller's qscale feedback chains every picture to
    /// its predecessors, so GOPs are no longer independent) or when the
    /// configured parallelism is serial.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::FrameSizeMismatch`] if any frame does not
    /// match the configured dimensions (checked up front: no frame is
    /// consumed on error).
    pub fn push_frames(&mut self, frames: &[Frame]) -> Result<(), CodecError> {
        for frame in frames {
            if (frame.width(), frame.height()) != (self.config.width, self.config.height) {
                return Err(CodecError::FrameSizeMismatch {
                    expected: (self.config.width, self.config.height),
                    actual: (frame.width(), frame.height()),
                });
            }
        }
        // Convert up front (fanning the per-frame conversions over the
        // worker pool — conversion is per-frame deterministic, so the
        // order of work does not affect the output), then run the batch
        // through the YUV-domain path.
        let yuv: Vec<Yuv420Frame> = if self.opts.parallel.workers > 1 && frames.len() >= 2 {
            let schedule = self.opts.parallel.with_chunk_frames(1);
            let convert = |range: std::ops::Range<usize>| -> Vec<Result<Yuv420Frame, CodecError>> {
                range
                    .map(|i| {
                        frames[i]
                            .to_yuv420()
                            .map_err(|e| CodecError::Malformed { reason: e.to_string() })
                    })
                    .collect()
            };
            chunked_map(frames.len(), &schedule, convert)
                .into_iter()
                .flatten()
                .collect::<Result<_, _>>()?
        } else {
            frames
                .iter()
                .map(|f| f.to_yuv420().map_err(|e| CodecError::Malformed { reason: e.to_string() }))
                .collect::<Result<_, _>>()?
        };
        self.push_yuv_frames(&yuv)
    }

    /// [`Encoder::push_frames`] for frames already in planar 4:2:0: the
    /// same closed-GOP fan-out without any RGB→YUV conversion in the
    /// pipeline. The emitted stream is byte-identical to an equivalent
    /// sequence of [`Encoder::push_yuv_frame`] calls for every worker
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::FrameSizeMismatch`] if any frame does not
    /// match the configured dimensions (checked up front: no frame is
    /// consumed on error).
    pub fn push_yuv_frames(&mut self, frames: &[Yuv420Frame]) -> Result<(), CodecError> {
        for yuv in frames {
            if (yuv.width(), yuv.height()) != (self.config.width, self.config.height) {
                return Err(CodecError::FrameSizeMismatch {
                    expected: (self.config.width, self.config.height),
                    actual: (yuv.width(), yuv.height()),
                });
            }
        }
        if self.rate.is_some() || self.opts.parallel.workers <= 1 || frames.len() < 2 {
            for yuv in frames {
                self.push_yuv_frame(yuv)?;
            }
            return Ok(());
        }
        // Frames extending the currently open GOP chain off the live
        // reference: encode them serially first.
        let mut idx = 0;
        while idx < frames.len() && !self.next_is_intra() {
            self.push_yuv_frame(&frames[idx])?;
            idx += 1;
        }
        let rest = &frames[idx..];
        if rest.is_empty() {
            return Ok(());
        }
        // From here every `gop_size` frames form a closed GOP.
        let gop = usize::from(self.config.gop_size);
        let groups: Vec<&[Yuv420Frame]> = rest.chunks(gop).collect();
        let qscale = self.config.qscale;
        let inner = CodecOptions { parallel: ParallelConfig::serial(), ..self.opts };
        let schedule = self.opts.parallel.with_chunk_frames(1);
        let encode_group = |range: std::ops::Range<usize>| -> Vec<GopOut> {
            range.map(|g| encode_gop(groups[g], qscale, &inner)).collect()
        };
        let results = chunked_map(groups.len(), &schedule, encode_group);
        for out in results.into_iter().flatten() {
            for (kind, payload) in &out.packets {
                self.put_packet(*kind, payload);
            }
            self.frame_count += out.packets.len() as u32;
            self.reference = Some(out.last_reconstruction);
        }
        Ok(())
    }

    fn put_packet(&mut self, kind: PacketKind, payload: &[u8]) {
        self.body.put_u8(kind.to_byte());
        let mut len = payload.len() as u64;
        loop {
            let byte = (len & 0x7F) as u8;
            len >>= 7;
            if len == 0 {
                self.body.put_u8(byte);
                break;
            }
            self.body.put_u8(byte | 0x80);
        }
        self.body.put_slice(payload);
    }

    /// Finalises and returns the stream.
    pub fn finish(self) -> EncodedStream {
        let mut out = ByteBuf::with_capacity(Header::LEN + self.body.len());
        out.put_slice(MAGIC);
        out.put_u16_le(self.config.width as u16);
        out.put_u16_le(self.config.height as u16);
        out.put_u32_le((self.config.fps * 1000.0).round() as u32);
        out.put_u32_le(self.frame_count);
        out.put_u8(self.config.gop_size);
        out.put_slice(&self.body);
        EncodedStream {
            bytes: out.freeze(),
            width: self.config.width,
            height: self.config.height,
            fps: self.config.fps,
            frame_count: self.frame_count,
        }
    }
}

/// One closed GOP's worth of encoded output, produced by a worker.
struct GopOut {
    packets: Vec<(PacketKind, Vec<u8>)>,
    last_reconstruction: Yuv420Frame,
}

/// Encodes one closed GOP (first frame intra, rest predicted) serially.
fn encode_gop(frames: &[Yuv420Frame], qscale: QScale, opts: &CodecOptions) -> GopOut {
    let mut packets = Vec::with_capacity(frames.len());
    let mut reference: Option<Yuv420Frame> = None;
    for yuv in frames {
        let coded: CodedPicture = match &reference {
            None => picture::encode_intra_opts(yuv, qscale, opts),
            Some(r) => picture::encode_inter_opts(yuv, r, qscale, opts),
        };
        let kind = if reference.is_none() {
            PacketKind::IntraPicture
        } else {
            PacketKind::PredictedPicture
        };
        packets.push((kind, coded.bytes));
        reference = Some(coded.reconstruction);
    }
    let last_reconstruction = reference.expect("encode_gop called with at least one frame");
    GopOut { packets, last_reconstruction }
}

/// The streaming decoder.
///
/// On construction it scans the packet table (cheap — no picture payload is
/// touched) and collects all user data, mirroring how the paper's client
/// reads annotations before decode. Pictures are then decoded on demand.
#[derive(Debug)]
pub struct Decoder {
    width: u32,
    height: u32,
    fps: f64,
    gop_size: u8,
    user_data: Vec<Bytes>,
    pictures: Vec<Packet>,
    /// Index of the next picture [`Decoder::decode_next`] will produce.
    next: usize,
    reference: Option<Yuv420Frame>,
    opts: CodecOptions,
    /// Reusable parsed-level storage — see [`picture::CodecScratch`].
    scratch: picture::CodecScratch,
}

impl Decoder {
    /// Parses the container structure of `stream`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] for a corrupt container.
    pub fn new(stream: &EncodedStream) -> Result<Self, CodecError> {
        Self::from_bytes(stream.as_bytes())
    }

    /// Parses a container from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] for a corrupt container.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let header = Header::parse(bytes)?;
        let mut pos = header.body_offset;
        let mut user_data = Vec::new();
        let mut pictures = Vec::new();
        while pos < bytes.len() {
            let kind = PacketKind::from_byte(bytes[pos])?;
            pos += 1;
            let mut len = 0u64;
            let mut shift = 0u32;
            loop {
                let byte = *bytes
                    .get(pos)
                    .ok_or_else(|| CodecError::Malformed { reason: "truncated packet length".into() })?;
                pos += 1;
                len |= u64::from(byte & 0x7F) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
                if shift >= 64 {
                    return Err(CodecError::Malformed { reason: "packet length overflow".into() });
                }
            }
            let end = pos + len as usize;
            if end > bytes.len() {
                return Err(CodecError::Malformed { reason: "truncated packet payload".into() });
            }
            let payload = Bytes::copy_from_slice(&bytes[pos..end]);
            pos = end;
            match kind {
                PacketKind::UserData => user_data.push(payload),
                _ => pictures.push(Packet { kind, payload }),
            }
        }
        if pictures.len() as u32 != header.frame_count {
            return Err(CodecError::Malformed {
                reason: format!(
                    "header promises {} pictures, found {}",
                    header.frame_count,
                    pictures.len()
                ),
            });
        }
        Ok(Self {
            width: header.width,
            height: header.height,
            fps: header.fps,
            gop_size: header.gop_size,
            user_data,
            pictures,
            next: 0,
            reference: None,
            opts: CodecOptions::default(),
            scratch: picture::CodecScratch::default(),
        })
    }

    /// Fans per-picture band reconstruction out over `parallel` worker
    /// threads, and — for [`Decoder::decode_all`] — decodes closed GOPs
    /// concurrently. Every worker count produces byte-identical frames;
    /// `workers == 0` (the default) is the inline serial reference.
    #[must_use]
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.opts.parallel = parallel;
        self
    }

    /// Uses the retained float matrix iDCT/dequant kernels instead of the
    /// fixed-point AAN fast path. Must match the encoder's setting for
    /// drift-free prediction (the bitstream does not record the kernel).
    #[must_use]
    pub fn with_reference_kernels(mut self, reference: bool) -> Self {
        self.opts.reference_kernels = reference;
        self
    }

    /// The per-picture coding options.
    pub fn options(&self) -> &CodecOptions {
        &self.opts
    }

    /// All user-data payloads, in stream order — available before any
    /// picture is decoded.
    pub fn user_data(&self) -> &[Bytes] {
        &self.user_data
    }

    /// Frame dimensions.
    pub fn dimensions(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// I-frame interval.
    pub fn gop_size(&self) -> u8 {
        self.gop_size
    }

    /// Number of coded pictures.
    pub fn frame_count(&self) -> u32 {
        self.pictures.len() as u32
    }

    /// Decodes the next picture in display order, or `None` at end of
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] for corrupt picture payloads or a
    /// P picture with no preceding I picture.
    pub fn decode_next(&mut self) -> Result<Option<Frame>, CodecError> {
        Ok(self.decode_next_yuv()?.map(|yuv| yuv.to_rgb()))
    }

    /// Decodes the next picture in display order in the codec's native
    /// planar 4:2:0 representation (no RGB conversion), or `None` at end
    /// of stream.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] for corrupt picture payloads or a
    /// P picture with no preceding I picture.
    pub fn decode_next_yuv(&mut self) -> Result<Option<Yuv420Frame>, CodecError> {
        if self.next >= self.pictures.len() {
            return Ok(None);
        }
        let mut out = Yuv420Frame::new(self.width, self.height)
            .map_err(|e| CodecError::Malformed { reason: e.to_string() })?;
        self.decode_next_yuv_into(&mut out)?;
        Ok(Some(out))
    }

    /// Decodes the next picture into `out` (reallocating it only when its
    /// geometry differs), returning `false` at end of stream. This is the
    /// allocation-free form of [`Decoder::decode_next_yuv`]: `out`, the
    /// decoder's internal reference frame and its parsed-level scratch
    /// are all reused, so a warm playback loop performs no per-frame
    /// allocations.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] for corrupt picture payloads or
    /// a P picture with no preceding I picture; `out` contents are
    /// unspecified (but valid) after an error.
    pub fn decode_next_yuv_into(&mut self, out: &mut Yuv420Frame) -> Result<bool, CodecError> {
        let Some(packet) = self.pictures.get(self.next) else {
            return Ok(false);
        };
        if (out.width(), out.height()) != (self.width, self.height) {
            *out = Yuv420Frame::new(self.width, self.height)
                .map_err(|e| CodecError::Malformed { reason: e.to_string() })?;
        }
        match packet.kind {
            PacketKind::IntraPicture => {
                picture::decode_picture_into(&packet.payload, None, out, &self.opts, &mut self.scratch)?;
            }
            PacketKind::PredictedPicture => {
                let reference = self.reference.as_ref().ok_or_else(|| CodecError::Malformed {
                    reason: "P picture before any I picture".into(),
                })?;
                picture::decode_picture_into(&packet.payload, Some(reference), out, &self.opts, &mut self.scratch)?;
            }
            PacketKind::UserData => unreachable!("user data filtered at parse time"),
        }
        self.next += 1;
        // clone_from semantics: the reference planes are reused in place
        // once their sizes have converged (first picture clones).
        match &mut self.reference {
            Some(r) => r.copy_from(out),
            None => self.reference = Some(out.clone()),
        }
        Ok(true)
    }

    /// Decodes every remaining picture, fanning **closed GOPs** out across
    /// the configured worker pool.
    ///
    /// Each intra picture resets the prediction chain, so the pictures
    /// from one I packet up to (excluding) the next are an independent
    /// job. Inside a GOP job the per-picture band fan-out is forced serial
    /// to avoid nested thread spawning. Results are reassembled in display
    /// order: every worker count returns byte-identical frames.
    ///
    /// # Errors
    ///
    /// Returns the first decode error encountered (in display order).
    pub fn decode_all(&mut self) -> Result<Vec<Frame>, CodecError> {
        self.decode_all_with(Yuv420Frame::to_rgb)
    }

    /// [`Decoder::decode_all`] in the codec's native planar 4:2:0
    /// representation: every remaining picture, no RGB conversion.
    ///
    /// # Errors
    ///
    /// Returns the first decode error encountered (in display order).
    pub fn decode_all_yuv(&mut self) -> Result<Vec<Yuv420Frame>, CodecError> {
        self.decode_all_with(Yuv420Frame::clone)
    }

    /// Shared body of [`Decoder::decode_all`] / [`Decoder::decode_all_yuv`]:
    /// decodes every remaining picture and maps each reconstruction
    /// through `map` (inside the worker jobs, so per-frame output
    /// conversion parallelises with the decode itself).
    fn decode_all_with<T, F>(&mut self, map: F) -> Result<Vec<T>, CodecError>
    where
        T: Send,
        F: Fn(&Yuv420Frame) -> T + Sync,
    {
        let mut out = Vec::with_capacity(self.pictures.len() - self.next);
        if self.opts.parallel.workers <= 1 {
            while let Some(yuv) = self.decode_next_yuv()? {
                out.push(map(&yuv));
            }
            return Ok(out);
        }
        // Pictures continuing the currently open GOP decode serially off
        // the live reference.
        while self
            .pictures
            .get(self.next)
            .is_some_and(|p| p.kind != PacketKind::IntraPicture)
        {
            match self.decode_next_yuv()? {
                Some(yuv) => out.push(map(&yuv)),
                None => return Ok(out),
            }
        }
        if self.next >= self.pictures.len() {
            return Ok(out);
        }
        // Remaining pictures split into closed GOPs at I packets.
        let start = self.next;
        let mut bounds: Vec<usize> = (start..self.pictures.len())
            .filter(|&i| self.pictures[i].kind == PacketKind::IntraPicture)
            .collect();
        bounds.push(self.pictures.len());
        let groups: Vec<std::ops::Range<usize>> =
            bounds.windows(2).map(|w| w[0]..w[1]).collect();
        let inner = CodecOptions { parallel: ParallelConfig::serial(), ..self.opts };
        let (width, height) = (self.width, self.height);
        let pictures = &self.pictures;
        let map = &map;
        let decode_group = |range: std::ops::Range<usize>| {
            range
                .map(|g| decode_gop(&pictures[groups[g].clone()], width, height, &inner, map))
                .collect::<Vec<Result<(Vec<T>, Yuv420Frame), CodecError>>>()
        };
        let schedule = self.opts.parallel.with_chunk_frames(1);
        let results = chunked_map(groups.len(), &schedule, decode_group);
        for (g, result) in results.into_iter().flatten().enumerate() {
            let (frames, last) = result?;
            out.extend(frames);
            self.reference = Some(last);
            self.next = groups[g].end;
        }
        Ok(out)
    }
}

/// Decodes one closed GOP (first packet intra, rest predicted) serially,
/// returning the mapped display frames and the final reconstruction.
fn decode_gop<T>(
    packets: &[Packet],
    width: u32,
    height: u32,
    opts: &CodecOptions,
    map: impl Fn(&Yuv420Frame) -> T,
) -> Result<(Vec<T>, Yuv420Frame), CodecError> {
    let mut frames = Vec::with_capacity(packets.len());
    let mut reference: Option<Yuv420Frame> = None;
    for packet in packets {
        let yuv = match packet.kind {
            PacketKind::IntraPicture => {
                picture::decode_intra_opts(&packet.payload, width, height, opts)?
            }
            PacketKind::PredictedPicture => {
                let r = reference.as_ref().ok_or_else(|| CodecError::Malformed {
                    reason: "P picture before any I picture".into(),
                })?;
                picture::decode_inter_opts(&packet.payload, r, opts)?
            }
            PacketKind::UserData => unreachable!("user data filtered at parse time"),
        };
        frames.push(map(&yuv));
        reference = Some(yuv);
    }
    let last = reference.expect("decode_gop called with at least one packet");
    Ok((frames, last))
}

/// Encodes `clips[i]` through `encoders[i]` for every job, fanning the
/// **closed GOPs of all jobs** out over one shared worker pool.
///
/// Byte-identical to calling [`Encoder::push_yuv_frames`] per encoder:
/// each job's open-GOP prefix is encoded serially off its live reference
/// first, then every closed GOP — across *all* jobs — becomes one unit
/// of a single [`chunked_map`] dispatch. A fleet of short sessions
/// therefore saturates the pool even when no single clip carries enough
/// GOPs to, and short straggler clips overlap with long ones instead of
/// serialising behind per-clip dispatches.
///
/// Rate-controlled jobs fall back to their serial per-frame chain (the
/// controller's qscale feedback makes GOPs dependent), and a serial
/// `parallel` falls back entirely.
///
/// # Panics
///
/// Panics if `encoders` and `clips` have different lengths.
///
/// # Errors
///
/// Returns [`CodecError::FrameSizeMismatch`] if any job's frames don't
/// match its encoder (validated for every job up front — no frame is
/// consumed on error).
pub fn encode_yuv_batched(
    encoders: &mut [Encoder],
    clips: &[&[Yuv420Frame]],
    parallel: &ParallelConfig,
) -> Result<(), CodecError> {
    assert_eq!(encoders.len(), clips.len(), "one clip per encoder");
    for (enc, clip) in encoders.iter().zip(clips) {
        for yuv in *clip {
            if (yuv.width(), yuv.height()) != (enc.config.width, enc.config.height) {
                return Err(CodecError::FrameSizeMismatch {
                    expected: (enc.config.width, enc.config.height),
                    actual: (yuv.width(), yuv.height()),
                });
            }
        }
    }
    if parallel.workers <= 1 {
        for (enc, clip) in encoders.iter_mut().zip(clips) {
            enc.push_yuv_frames(clip)?;
        }
        return Ok(());
    }
    // Serial prefixes: frames extending each job's open GOP chain, plus
    // the whole-job fallback for rate-controlled encoders.
    let mut tails: Vec<&[Yuv420Frame]> = Vec::with_capacity(encoders.len());
    for (enc, clip) in encoders.iter_mut().zip(clips) {
        if enc.rate.is_some() {
            enc.push_yuv_frames(clip)?;
            tails.push(&[]);
            continue;
        }
        let mut idx = 0;
        while idx < clip.len() && !enc.next_is_intra() {
            enc.push_yuv_frame(&clip[idx])?;
            idx += 1;
        }
        tails.push(&clip[idx..]);
    }
    // Flatten every job's closed GOPs into one shared unit list.
    let mut units: Vec<(usize, &[Yuv420Frame])> = Vec::new();
    for (job, tail) in tails.iter().enumerate() {
        let gop = usize::from(encoders[job].config.gop_size);
        units.extend(tail.chunks(gop).map(|frames| (job, frames)));
    }
    if units.is_empty() {
        return Ok(());
    }
    let params: Vec<(QScale, CodecOptions)> = encoders
        .iter()
        .map(|e| (e.config.qscale, CodecOptions { parallel: ParallelConfig::serial(), ..e.opts }))
        .collect();
    let schedule = parallel.with_chunk_frames(1);
    let encode_unit = |range: std::ops::Range<usize>| -> Vec<GopOut> {
        range
            .map(|u| {
                let (job, frames) = units[u];
                let (qscale, opts) = params[job];
                encode_gop(frames, qscale, &opts)
            })
            .collect()
    };
    let results = chunked_map(units.len(), &schedule, encode_unit);
    for (&(job, _), out) in units.iter().zip(results.into_iter().flatten()) {
        let enc = &mut encoders[job];
        for (kind, payload) in &out.packets {
            enc.put_packet(*kind, payload);
        }
        enc.frame_count += out.packets.len() as u32;
        enc.reference = Some(out.last_reconstruction);
    }
    Ok(())
}

/// Decodes every remaining picture of every decoder, fanning the closed
/// GOPs of **all streams** out over one shared worker pool.
///
/// The streaming dual of [`encode_yuv_batched`], byte-identical to
/// calling [`Decoder::decode_all_yuv`] per decoder: open-GOP prefixes
/// decode serially off each stream's live reference, then every closed
/// GOP across all streams is one unit of a single [`chunked_map`]
/// dispatch. `frames[i]` holds stream `i`'s pictures in display order.
///
/// # Errors
///
/// Returns the first decode error in unit order; decoders whose units
/// completed before the failing one retain their advanced state.
pub fn decode_all_yuv_batched(
    decoders: &mut [Decoder],
    parallel: &ParallelConfig,
) -> Result<Vec<Vec<Yuv420Frame>>, CodecError> {
    if parallel.workers <= 1 {
        return decoders.iter_mut().map(Decoder::decode_all_yuv).collect();
    }
    let mut outs: Vec<Vec<Yuv420Frame>> = decoders
        .iter()
        .map(|d| Vec::with_capacity(d.pictures.len() - d.next))
        .collect();
    // Serial prefixes: pictures continuing each stream's open GOP.
    for (d, out) in decoders.iter_mut().zip(&mut outs) {
        while d
            .pictures
            .get(d.next)
            .is_some_and(|p| p.kind != PacketKind::IntraPicture)
        {
            match d.decode_next_yuv()? {
                Some(yuv) => out.push(yuv),
                None => break,
            }
        }
    }
    // Flatten every stream's closed GOPs into one shared unit list.
    let mut units: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    for (job, d) in decoders.iter().enumerate() {
        if d.next >= d.pictures.len() {
            continue;
        }
        let mut bounds: Vec<usize> = (d.next..d.pictures.len())
            .filter(|&i| d.pictures[i].kind == PacketKind::IntraPicture)
            .collect();
        bounds.push(d.pictures.len());
        units.extend(bounds.windows(2).map(|w| (job, w[0]..w[1])));
    }
    if units.is_empty() {
        return Ok(outs);
    }
    let dref: &[Decoder] = decoders;
    let schedule = parallel.with_chunk_frames(1);
    let decode_unit = |range: std::ops::Range<usize>| {
        range
            .map(|u| {
                let (job, ref pics) = units[u];
                let d = &dref[job];
                let inner = CodecOptions { parallel: ParallelConfig::serial(), ..d.opts };
                decode_gop(&d.pictures[pics.clone()], d.width, d.height, &inner, Yuv420Frame::clone)
            })
            .collect::<Vec<_>>()
    };
    let results = chunked_map(units.len(), &schedule, decode_unit);
    for ((job, pics), result) in units.iter().cloned().zip(results.into_iter().flatten()) {
        let (frames, last) = result?;
        let d = &mut decoders[job];
        outs[job].extend(frames);
        d.reference = Some(last);
        d.next = pics.end;
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::psnr;

    fn frames(n: u32, w: u32, h: u32) -> Vec<Frame> {
        (0..n)
            .map(|i| {
                Frame::from_fn(w, h, |x, y| {
                    let v = (120.0
                        + 70.0 * (((x + i * 2) as f32) * 0.15).sin()
                        + 40.0 * ((y as f32) * 0.2).cos())
                    .round()
                    .clamp(0.0, 255.0) as u8;
                    [v, v / 2, 255 - v]
                })
            })
            .collect()
    }

    fn encode(frames: &[Frame], cfg: EncoderConfig, user: &[&[u8]]) -> EncodedStream {
        let mut enc = Encoder::new(cfg).unwrap();
        for u in user {
            enc.push_user_data(u);
        }
        for f in frames {
            enc.push_frame(f).unwrap();
        }
        enc.finish()
    }

    fn cfg(w: u32, h: u32) -> EncoderConfig {
        EncoderConfig {
            width: w,
            height: h,
            fps: 12.0,
            gop_size: 4,
            qscale: QScale::new(4),
            target_bitrate_bps: None,
        }
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let fs = frames(9, 32, 32);
        let stream = encode(&fs, cfg(32, 32), &[b"hello"]);
        let mut dec = Decoder::new(&stream).unwrap();
        assert_eq!(dec.dimensions(), (32, 32));
        assert_eq!(dec.frame_count(), 9);
        assert_eq!(dec.gop_size(), 4);
        assert_eq!(dec.user_data().len(), 1);
        assert_eq!(&dec.user_data()[0][..], b"hello");
        let out = dec.decode_all().unwrap();
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn decoded_frames_are_faithful() {
        let fs = frames(8, 48, 32);
        let stream = encode(&fs, cfg(48, 32), &[]);
        let mut dec = Decoder::new(&stream).unwrap();
        for (i, orig) in fs.iter().enumerate() {
            let d = dec.decode_next().unwrap().unwrap();
            let p = psnr(orig, &d);
            assert!(p > 28.0, "frame {i} PSNR {p:.1} dB");
        }
    }

    #[test]
    fn gop_structure_alternates() {
        let fs = frames(10, 32, 32);
        let stream = encode(&fs, cfg(32, 32), &[]);
        let dec = Decoder::new(&stream).unwrap();
        let kinds: Vec<PacketKind> = dec.pictures.iter().map(|p| p.kind).collect();
        assert_eq!(kinds[0], PacketKind::IntraPicture);
        assert_eq!(kinds[1], PacketKind::PredictedPicture);
        assert_eq!(kinds[4], PacketKind::IntraPicture, "gop_size 4 → I at 0, 4, 8");
        assert_eq!(kinds[8], PacketKind::IntraPicture);
    }

    #[test]
    fn user_data_interleaves_in_order() {
        let fs = frames(2, 32, 32);
        let mut enc = Encoder::new(cfg(32, 32)).unwrap();
        enc.push_user_data(b"first");
        enc.push_frame(&fs[0]).unwrap();
        enc.push_user_data(b"second");
        enc.push_frame(&fs[1]).unwrap();
        let stream = enc.finish();
        let dec = Decoder::new(&stream).unwrap();
        let ud: Vec<&[u8]> = dec.user_data().iter().map(|b| &b[..]).collect();
        assert_eq!(ud, vec![&b"first"[..], &b"second"[..]]);
    }

    #[test]
    fn frame_size_mismatch_rejected() {
        let mut enc = Encoder::new(cfg(32, 32)).unwrap();
        let err = enc.push_frame(&Frame::new(16, 16)).unwrap_err();
        assert!(matches!(err, CodecError::FrameSizeMismatch { .. }));
    }

    #[test]
    fn bad_config_rejected() {
        assert!(Encoder::new(EncoderConfig { width: 30, ..cfg(32, 32) }).is_err());
        assert!(Encoder::new(EncoderConfig { fps: 0.0, ..cfg(32, 32) }).is_err());
        assert!(Encoder::new(EncoderConfig { gop_size: 0, ..cfg(32, 32) }).is_err());
    }

    #[test]
    fn corrupt_streams_rejected() {
        assert!(Decoder::from_bytes(b"").is_err());
        assert!(Decoder::from_bytes(b"XXXXXXXXXXXXXXXXXXXX").is_err());
        let fs = frames(3, 32, 32);
        let stream = encode(&fs, cfg(32, 32), &[b"u"]);
        let mut bytes = stream.as_bytes().to_vec();
        bytes.truncate(bytes.len() - 5);
        assert!(Decoder::from_bytes(&bytes).is_err());
    }

    #[test]
    fn stream_from_bytes_roundtrip() {
        let fs = frames(3, 32, 32);
        let stream = encode(&fs, cfg(32, 32), &[]);
        let again = EncodedStream::from_bytes(stream.as_bytes().to_vec()).unwrap();
        assert_eq!(again, stream);
        assert_eq!(again.frame_count(), 3);
    }

    #[test]
    fn empty_stream_has_zero_frames() {
        let enc = Encoder::new(cfg(32, 32)).unwrap();
        let stream = enc.finish();
        assert_eq!(stream.frame_count(), 0);
        let mut dec = Decoder::new(&stream).unwrap();
        assert!(dec.decode_next().unwrap().is_none());
    }

    #[test]
    fn rate_control_holds_budget_end_to_end() {
        let fs = frames(36, 64, 48);
        let fps = 12.0;
        let target_bps = 200_000.0;
        let stream = encode(
            &fs,
            EncoderConfig {
                width: 64,
                height: 48,
                fps,
                gop_size: 6,
                qscale: QScale::new(8),
                target_bitrate_bps: Some(target_bps),
            },
            &[],
        );
        let duration = fs.len() as f64 / fps;
        let achieved_bps = stream.len() as f64 * 8.0 / duration;
        assert!(
            achieved_bps < target_bps * 1.4,
            "achieved {achieved_bps} bps vs target {target_bps}"
        );
        // And the stream still decodes faithfully.
        let mut dec = Decoder::new(&stream).unwrap();
        assert_eq!(dec.decode_all().unwrap().len(), 36);
    }

    #[test]
    fn bad_bitrate_rejected() {
        let err = Encoder::new(EncoderConfig {
            target_bitrate_bps: Some(0.0),
            ..cfg(32, 32)
        });
        assert!(err.is_err());
    }

    #[test]
    fn gop_parallel_encode_is_byte_identical() {
        let fs = frames(13, 48, 32);
        let serial = encode(&fs, cfg(48, 32), &[b"ud"]);
        for workers in [1, 2, 4, 7] {
            let mut enc = Encoder::new(cfg(48, 32))
                .unwrap()
                .with_parallelism(ParallelConfig::with_workers(workers));
            enc.push_user_data(b"ud");
            enc.push_frames(&fs).unwrap();
            let stream = enc.finish();
            assert_eq!(stream.as_bytes(), serial.as_bytes(), "workers {workers}");
        }
    }

    #[test]
    fn push_frames_resumes_open_gop_byte_identically() {
        // Two frames pushed singly leave a GOP open; the batch path must
        // stitch onto it exactly.
        let fs = frames(11, 32, 32);
        let serial = encode(&fs, cfg(32, 32), &[]);
        let mut enc = Encoder::new(cfg(32, 32))
            .unwrap()
            .with_parallelism(ParallelConfig::with_workers(3));
        enc.push_frame(&fs[0]).unwrap();
        enc.push_frame(&fs[1]).unwrap();
        enc.push_frames(&fs[2..]).unwrap();
        assert_eq!(enc.finish().as_bytes(), serial.as_bytes());
    }

    #[test]
    fn gop_parallel_decode_matches_serial() {
        let fs = frames(13, 48, 32);
        let stream = encode(&fs, cfg(48, 32), &[]);
        let reference = Decoder::new(&stream).unwrap().decode_all().unwrap();
        for workers in [1, 2, 4, 7] {
            let mut dec = Decoder::new(&stream)
                .unwrap()
                .with_parallelism(ParallelConfig::with_workers(workers));
            let got = dec.decode_all().unwrap();
            assert_eq!(got, reference, "workers {workers}");
            // The decoder must be resumable/consistent afterwards.
            assert!(dec.decode_next().unwrap().is_none());
        }
    }

    #[test]
    fn parallel_decode_mid_stream_matches_serial_tail() {
        let fs = frames(10, 32, 32);
        let stream = encode(&fs, cfg(32, 32), &[]);
        let mut serial = Decoder::new(&stream).unwrap();
        let all = serial.decode_all().unwrap();
        let mut dec = Decoder::new(&stream)
            .unwrap()
            .with_parallelism(ParallelConfig::with_workers(2));
        // Consume three pictures one at a time (lands mid-GOP), then batch.
        for _ in 0..3 {
            dec.decode_next().unwrap().unwrap();
        }
        let tail = dec.decode_all().unwrap();
        assert_eq!(tail, all[3..].to_vec());
    }

    #[test]
    fn oversized_dimensions_rejected() {
        // Encoder-side: config beyond the cap.
        let err = Encoder::new(EncoderConfig { width: MAX_DIM + 16, ..cfg(32, 32) });
        assert!(matches!(err, Err(CodecError::BadDimensions { .. })));
        // Decoder-side: a forged header must be rejected before any
        // multi-gigabyte allocation is attempted.
        let fs = frames(1, 32, 32);
        let mut bytes = encode(&fs, cfg(32, 32), &[]).as_bytes().to_vec();
        bytes[4..6].copy_from_slice(&8192u16.to_le_bytes());
        assert!(Decoder::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rate_controlled_push_frames_falls_back_to_serial_chain() {
        let fs = frames(12, 32, 32);
        let rc = EncoderConfig {
            target_bitrate_bps: Some(150_000.0),
            ..cfg(32, 32)
        };
        let mut serial = Encoder::new(rc).unwrap();
        for f in &fs {
            serial.push_frame(f).unwrap();
        }
        let serial = serial.finish();
        let mut batch = Encoder::new(rc)
            .unwrap()
            .with_parallelism(ParallelConfig::with_workers(4));
        batch.push_frames(&fs).unwrap();
        assert_eq!(batch.finish().as_bytes(), serial.as_bytes());
    }

    #[test]
    fn yuv_domain_api_matches_rgb_api() {
        // push_yuv_frames(to_yuv420(f)) must be byte-identical to
        // push_frames(f), serial and parallel, and decode_all_yuv must
        // return exactly the frames whose to_rgb is decode_all's output.
        let fs = frames(9, 48, 32);
        let yuv: Vec<_> = fs.iter().map(|f| f.to_yuv420().unwrap()).collect();
        let via_rgb = encode(&fs, cfg(48, 32), &[]);
        for workers in [0, 3] {
            let mut enc = Encoder::new(cfg(48, 32))
                .unwrap()
                .with_parallelism(ParallelConfig::with_workers(workers));
            enc.push_yuv_frames(&yuv).unwrap();
            let stream = enc.finish();
            assert_eq!(stream.as_bytes(), via_rgb.as_bytes(), "workers {workers}");
        }
        let rgb_frames = Decoder::new(&via_rgb).unwrap().decode_all().unwrap();
        for workers in [0, 3] {
            let mut dec = Decoder::new(&via_rgb)
                .unwrap()
                .with_parallelism(ParallelConfig::with_workers(workers));
            let yuv_frames = dec.decode_all_yuv().unwrap();
            assert_eq!(yuv_frames.len(), rgb_frames.len());
            for (y, r) in yuv_frames.iter().zip(&rgb_frames) {
                assert_eq!(&y.to_rgb(), r, "workers {workers}");
            }
        }
        // Single-picture YUV decode agrees too, and dimension mismatches
        // are rejected without consuming the frame.
        let mut dec = Decoder::new(&via_rgb).unwrap();
        let first = dec.decode_next_yuv().unwrap().unwrap();
        assert_eq!(&first.to_rgb(), &rgb_frames[0]);
        let mut enc = Encoder::new(cfg(48, 32)).unwrap();
        let wrong = annolight_imgproc::Yuv420Frame::new(32, 32).unwrap();
        assert!(matches!(
            enc.push_yuv_frame(&wrong),
            Err(CodecError::FrameSizeMismatch { .. })
        ));
        assert_eq!(enc.frame_count(), 0);
    }

    #[test]
    fn decode_next_yuv_into_matches_decode_next_yuv() {
        let fs = frames(9, 48, 32);
        let stream = encode(&fs, cfg(48, 32), &[]);
        let mut a = Decoder::new(&stream).unwrap();
        let mut b = Decoder::new(&stream).unwrap();
        // Deliberately wrong geometry: the first call must fix it up.
        let mut buf = Yuv420Frame::new(16, 16).unwrap();
        while let Some(expect) = a.decode_next_yuv().unwrap() {
            assert!(b.decode_next_yuv_into(&mut buf).unwrap());
            assert_eq!(buf, expect);
        }
        assert!(!b.decode_next_yuv_into(&mut buf).unwrap());
    }

    #[test]
    fn batched_encode_matches_per_stream_serial() {
        // Jobs of different lengths and geometries, one mid-GOP (open
        // prefix), one rate-controlled (serial fallback): the batch must
        // be byte-identical to per-stream encoding for every pool size.
        let jobs: Vec<(EncoderConfig, Vec<Yuv420Frame>)> = vec![
            (cfg(32, 32), frames(11, 32, 32).iter().map(|f| f.to_yuv420().unwrap()).collect()),
            (cfg(48, 32), frames(5, 48, 32).iter().map(|f| f.to_yuv420().unwrap()).collect()),
            (
                EncoderConfig { target_bitrate_bps: Some(150_000.0), ..cfg(32, 32) },
                frames(9, 32, 32).iter().map(|f| f.to_yuv420().unwrap()).collect(),
            ),
        ];
        let mut reference = Vec::new();
        for (c, clip) in &jobs {
            let mut enc = Encoder::new(*c).unwrap();
            enc.push_yuv_frame(&clip[0]).unwrap(); // leave GOP 0 open
            enc.push_yuv_frames(&clip[1..]).unwrap();
            reference.push(enc.finish());
        }
        for workers in [0, 2, 7] {
            let mut encs: Vec<Encoder> =
                jobs.iter().map(|(c, _)| Encoder::new(*c).unwrap()).collect();
            for (enc, (_, clip)) in encs.iter_mut().zip(&jobs) {
                enc.push_yuv_frame(&clip[0]).unwrap();
            }
            let clips: Vec<&[Yuv420Frame]> = jobs.iter().map(|(_, c)| &c[1..]).collect();
            encode_yuv_batched(&mut encs, &clips, &ParallelConfig::with_workers(workers))
                .unwrap();
            for ((enc, expect), (c, _)) in encs.into_iter().zip(&reference).zip(&jobs) {
                assert_eq!(
                    enc.finish().as_bytes(),
                    expect.as_bytes(),
                    "workers {workers}, config {c:?}"
                );
            }
        }
    }

    #[test]
    fn batched_decode_matches_per_stream_serial() {
        let streams: Vec<EncodedStream> = vec![
            encode(&frames(11, 32, 32), cfg(32, 32), &[b"a"]),
            encode(&frames(5, 48, 32), cfg(48, 32), &[]),
            encode(&frames(8, 32, 32), EncoderConfig { gop_size: 3, ..cfg(32, 32) }, &[]),
        ];
        let reference: Vec<Vec<Yuv420Frame>> = streams
            .iter()
            .map(|s| Decoder::new(s).unwrap().decode_all_yuv().unwrap())
            .collect();
        for workers in [0, 2, 7] {
            let mut decs: Vec<Decoder> =
                streams.iter().map(|s| Decoder::new(s).unwrap()).collect();
            // Leave the first stream mid-GOP to exercise the prefix path.
            decs[0].decode_next_yuv().unwrap().unwrap();
            let mut got =
                decode_all_yuv_batched(&mut decs, &ParallelConfig::with_workers(workers))
                    .unwrap();
            got[0].insert(0, reference[0][0].clone());
            assert_eq!(got, reference, "workers {workers}");
            for mut d in decs {
                assert!(d.decode_next_yuv().unwrap().is_none(), "decoders fully drained");
            }
        }
    }

    #[test]
    fn compression_is_real() {
        // 20 slowly-moving frames must compress far below raw RGB size.
        let fs = frames(20, 64, 48);
        let raw = 20 * 64 * 48 * 3;
        let stream = encode(&fs, EncoderConfig { gop_size: 10, ..cfg(64, 48) }, &[]);
        assert!(
            stream.len() * 3 < raw,
            "stream {} vs raw {raw}",
            stream.len()
        );
    }
}
