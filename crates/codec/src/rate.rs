//! Rate control: adapting the quantiser to hit a target bitrate.
//!
//! The streaming model delivers over a bandwidth-limited 802.11b hop, so
//! the encoder must be able to hold a bitrate budget. This is a simple
//! reactive controller in the spirit of MPEG-1 TM5's picture-level loop:
//! after each coded picture the quantiser scale for the next picture is
//! nudged proportionally to the fullness of a virtual buffer.

use crate::quant::QScale;

/// Picture-level reactive rate controller.
#[derive(Debug, Clone)]
pub struct RateController {
    target_bytes_per_frame: f64,
    /// Virtual buffer fullness in bytes (positive = over budget).
    buffer: f64,
    qscale: f64,
}

impl RateController {
    /// Creates a controller for a byte budget per frame, starting from
    /// `initial` quantiser scale.
    ///
    /// # Panics
    ///
    /// Panics unless the budget is positive and finite.
    pub fn new(target_bytes_per_frame: f64, initial: QScale) -> Self {
        assert!(
            target_bytes_per_frame.is_finite() && target_bytes_per_frame > 0.0,
            "target {target_bytes_per_frame} bytes/frame must be positive"
        );
        Self {
            target_bytes_per_frame,
            buffer: 0.0,
            qscale: f64::from(initial.value()),
        }
    }

    /// Creates a controller from a bitrate and frame rate.
    ///
    /// # Panics
    ///
    /// Panics unless both are positive and finite.
    pub fn from_bitrate(bits_per_second: f64, fps: f64, initial: QScale) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "fps {fps} must be positive");
        Self::new(bits_per_second / 8.0 / fps, initial)
    }

    /// The byte budget per frame.
    pub fn target_bytes_per_frame(&self) -> f64 {
        self.target_bytes_per_frame
    }

    /// The quantiser scale to use for the next picture.
    pub fn qscale(&self) -> QScale {
        QScale::new(self.qscale.round().clamp(1.0, 31.0) as u8)
    }

    /// Reports the size of the picture just coded and updates the
    /// controller state.
    pub fn update(&mut self, coded_bytes: usize) {
        let error = coded_bytes as f64 - self.target_bytes_per_frame;
        // Leaky virtual buffer: remember recent overshoot, forget slowly.
        self.buffer = 0.7 * self.buffer + error;
        // Proportional correction: a full frame's overshoot in the buffer
        // moves qscale by ~35 % of its value.
        let correction = 1.0 + 0.35 * (self.buffer / self.target_bytes_per_frame).clamp(-2.0, 2.0);
        self.qscale = (self.qscale * correction).clamp(1.0, 31.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::picture::encode_intra;
    use annolight_imgproc::Frame;

    fn busy_frame(i: u32) -> annolight_imgproc::Yuv420Frame {
        Frame::from_fn(64, 48, |x, y| {
            let v = ((x * 13 + y * 7 + i * 5) % 256) as u8;
            [v, 255 - v, v / 2]
        })
        .to_yuv420()
        .unwrap()
    }

    #[test]
    fn qscale_rises_when_over_budget() {
        let mut rc = RateController::new(200.0, QScale::new(4));
        rc.update(1_000); // massively over budget
        assert!(rc.qscale().value() > 4);
    }

    #[test]
    fn qscale_falls_when_under_budget() {
        let mut rc = RateController::new(1_000.0, QScale::new(16));
        for _ in 0..6 {
            rc.update(100);
        }
        assert!(rc.qscale().value() < 16);
    }

    #[test]
    fn qscale_stays_in_range() {
        let mut rc = RateController::new(10.0, QScale::new(30));
        for _ in 0..50 {
            rc.update(100_000);
        }
        assert_eq!(rc.qscale().value(), 31);
        let mut rc = RateController::new(1e9, QScale::new(2));
        for _ in 0..50 {
            rc.update(1);
        }
        assert_eq!(rc.qscale().value(), 1);
    }

    #[test]
    fn converges_on_real_pictures() {
        // Encode 30 busy intra pictures against a budget and check the
        // steady-state average lands near the target.
        let target = 900.0;
        let mut rc = RateController::new(target, QScale::new(8));
        let mut sizes = Vec::new();
        for i in 0..30 {
            let coded = encode_intra(&busy_frame(i), rc.qscale());
            rc.update(coded.bytes.len());
            sizes.push(coded.bytes.len());
        }
        let steady: f64 =
            sizes[10..].iter().map(|&s| s as f64).sum::<f64>() / (sizes.len() - 10) as f64;
        assert!(
            (steady - target).abs() / target < 0.35,
            "steady-state {steady} vs target {target}"
        );
    }

    #[test]
    fn from_bitrate_computes_budget() {
        let rc = RateController::from_bitrate(480_000.0, 12.0, QScale::new(8));
        assert!((rc.target_bytes_per_frame() - 5_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_budget() {
        RateController::new(0.0, QScale::new(8));
    }
}
