//! Zig-zag scan and run/level coding of quantised blocks.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::quant::QBlock;

/// The 8×8 zig-zag scan order (row-major index for each scan position).
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10,
    17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// End-of-block sentinel for the AC run value (a real run is ≤ 62).
const EOB_RUN: u32 = 63;

/// Writes a quantised block: DC as a signed predicted difference, then
/// (run, level) pairs over the zig-zag-ordered AC coefficients, terminated
/// by an end-of-block code.
///
/// Returns the block's DC level so the caller can thread the predictor.
pub fn encode_block(w: &mut BitWriter, block: &QBlock, dc_pred: i16) -> i16 {
    let dc = block[0];
    w.put_se(i32::from(dc) - i32::from(dc_pred));
    let mut run = 0u32;
    for &idx in ZIGZAG.iter().skip(1) {
        let level = block[idx];
        if level == 0 {
            run += 1;
        } else {
            w.put_ue_then_se(run, i32::from(level));
            run = 0;
        }
    }
    w.put_ue(EOB_RUN);
    dc
}

/// Reads a block written by [`encode_block`].
///
/// Returns the reconstructed block and its DC level (the next predictor).
///
/// # Errors
///
/// Returns [`CodecError::Malformed`] for truncated input, out-of-range
/// runs, zero levels, or coefficient overflow.
pub fn decode_block(r: &mut BitReader<'_>, dc_pred: i16) -> Result<(QBlock, i16), CodecError> {
    let mut block = [0i16; 64];
    let dc_diff = r.get_se()?;
    let dc = i32::from(dc_pred) + dc_diff;
    if !(-2048..=2047).contains(&dc) {
        return Err(CodecError::Malformed { reason: format!("DC overflow: {dc}") });
    }
    block[0] = dc as i16;
    let mut pos = 1usize; // zig-zag position of the next coefficient
    loop {
        let run = r.get_ue()?;
        if run == EOB_RUN {
            break;
        }
        let next = pos + run as usize;
        if next >= 64 {
            return Err(CodecError::Malformed { reason: format!("AC run past block end: {run}") });
        }
        let level = r.get_se()?;
        if level == 0 {
            return Err(CodecError::Malformed { reason: "zero AC level".into() });
        }
        if !(-2048..=2047).contains(&level) {
            return Err(CodecError::Malformed { reason: format!("AC overflow: {level}") });
        }
        block[ZIGZAG[next]] = level as i16;
        pos = next + 1;
    }
    Ok((block, block[0]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zigzag_starts_at_dc_and_low_freqs() {
        assert_eq!(ZIGZAG[0], 0);
        assert_eq!(ZIGZAG[1], 1);
        assert_eq!(ZIGZAG[2], 8);
        assert_eq!(ZIGZAG[63], 63);
    }

    fn roundtrip(block: &QBlock, dc_pred: i16) -> QBlock {
        let mut w = BitWriter::new();
        encode_block(&mut w, block, dc_pred);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let (out, _) = decode_block(&mut r, dc_pred).unwrap();
        out
    }

    #[test]
    fn empty_block_roundtrip() {
        let block = [0i16; 64];
        assert_eq!(roundtrip(&block, 0), block);
    }

    #[test]
    fn dense_block_roundtrip() {
        let mut block = [0i16; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (i as i16 % 17) - 8;
        }
        assert_eq!(roundtrip(&block, 5), block);
    }

    #[test]
    fn sparse_block_roundtrip() {
        let mut block = [0i16; 64];
        block[0] = 120;
        block[1] = -3;
        block[8] = 7;
        block[63] = -1;
        assert_eq!(roundtrip(&block, 100), block);
    }

    #[test]
    fn dc_prediction_chains() {
        let mut w = BitWriter::new();
        let mut blocks = Vec::new();
        let mut pred = 0i16;
        for dc in [100i16, 103, 99, 110] {
            let mut b = [0i16; 64];
            b[0] = dc;
            pred = encode_block(&mut w, &b, pred);
            blocks.push(b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut pred = 0i16;
        for b in &blocks {
            let (out, next) = decode_block(&mut r, pred).unwrap();
            assert_eq!(&out, b);
            pred = next;
        }
    }

    #[test]
    fn sparse_blocks_code_compactly() {
        let mut dense = [3i16; 64];
        dense[0] = 100;
        let mut sparse = [0i16; 64];
        sparse[0] = 100;
        sparse[5] = 2;
        let size = |b: &QBlock| {
            let mut w = BitWriter::new();
            encode_block(&mut w, b, 0);
            w.bit_len()
        };
        assert!(size(&sparse) * 4 < size(&dense));
    }

    #[test]
    fn malformed_inputs_rejected() {
        // Run past block end.
        let mut w = BitWriter::new();
        w.put_se(0); // DC diff
        w.put_ue(62); // run to position 63
        w.put_se(1);
        w.put_ue(5); // now runs past 64
        w.put_se(1);
        w.put_ue(EOB_RUN);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(decode_block(&mut r, 0).is_err());

        // Truncated stream.
        let mut w = BitWriter::new();
        w.put_se(4);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // DC parses; the AC loop then hits zero-filled padding, which may
        // decode as runs; eventually underruns or errors.
        assert!(decode_block(&mut r, 0).is_err());
    }
}
