//! An MPEG-1-flavoured software video codec with an annotation side-channel.
//!
//! The paper implements its player on top of the Berkeley MPEG tools and
//! embeds annotations in the stream so they are "available even before
//! decoding the data". This crate is the from-scratch stand-in: a complete
//! block-transform codec —
//!
//! * 8×8 DCT ([`dct`]) with MPEG-style quantisation ([`quant`]),
//! * zig-zag scan + run/level coding ([`zigzag`]),
//! * Exp-Golomb entropy coding over a bit-exact bitstream ([`bitio`]),
//! * 16×16-macroblock motion estimation and compensation ([`motion`]),
//! * I/P picture coding ([`picture`]),
//! * a packetised container with **user-data packets** that carry the
//!   annotation track ahead of the frames it describes ([`stream`]),
//! * PSNR utilities ([`metrics`]).
//!
//! # Example
//!
//! ```
//! use annolight_codec::{Decoder, Encoder, EncoderConfig};
//! use annolight_imgproc::Frame;
//!
//! let frames: Vec<Frame> = (0..4)
//!     .map(|i| Frame::from_fn(32, 32, |x, y| {
//!         let v = ((x + y + i * 3) * 4 % 200) as u8;
//!         [v, v, v]
//!     }))
//!     .collect();
//! let mut enc = Encoder::new(EncoderConfig { width: 32, height: 32, fps: 12.0, ..Default::default() })?;
//! enc.push_user_data(b"annotations ride here");
//! for f in &frames {
//!     enc.push_frame(f)?;
//! }
//! let stream = enc.finish();
//!
//! let mut dec = Decoder::new(&stream)?;
//! assert_eq!(dec.user_data().len(), 1); // available before any decode
//! let decoded = dec.decode_all()?;
//! assert_eq!(decoded.len(), 4);
//! # Ok::<(), annolight_codec::CodecError>(())
//! ```

// Unsafe is denied crate-wide; the only exemptions are the two SSE2 SAD
// row kernels in [`motion`], which carry per-block safety comments
// (bounds-checked slices, explicitly unaligned loads, baseline ISA).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
pub mod dct;
pub mod error;
pub mod metrics;
pub mod motion;
pub mod picture;
pub mod quant;
pub mod rate;
pub mod stream;
pub mod zigzag;

pub use error::CodecError;
pub use metrics::{psnr, psnr_luma};
pub use stream::{
    decode_all_yuv_batched, encode_yuv_batched, Decoder, EncodedStream, Encoder, EncoderConfig,
    Packet, PacketKind,
};
