//! Codec error type.

use std::error::Error;
use std::fmt;

/// Errors produced by encoding and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Dimensions must be non-zero multiples of 16.
    BadDimensions {
        /// Requested width.
        width: u32,
        /// Requested height.
        height: u32,
    },
    /// A pushed frame did not match the configured dimensions.
    FrameSizeMismatch {
        /// Expected dimensions.
        expected: (u32, u32),
        /// Actual frame dimensions.
        actual: (u32, u32),
    },
    /// The bitstream was truncated or corrupt.
    Malformed {
        /// What went wrong.
        reason: String,
    },
    /// The configured frame rate or GOP size is unusable.
    BadConfig {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadDimensions { width, height } => {
                write!(f, "dimensions {width}x{height} must be non-zero multiples of 16")
            }
            CodecError::FrameSizeMismatch { expected, actual } => write!(
                f,
                "frame is {}x{} but stream is {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
            CodecError::Malformed { reason } => write!(f, "malformed bitstream: {reason}"),
            CodecError::BadConfig { reason } => write!(f, "bad encoder config: {reason}"),
        }
    }
}

impl Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            CodecError::BadDimensions { width: 3, height: 16 },
            CodecError::FrameSizeMismatch { expected: (16, 16), actual: (32, 16) },
            CodecError::Malformed { reason: "eof".into() },
            CodecError::BadConfig { reason: "fps".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
