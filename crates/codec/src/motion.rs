//! Block motion estimation and compensation.
//!
//! 16×16 luma macroblocks, full-pel motion vectors in a ±8 search window,
//! estimated with a three-step search seeded at the zero vector. Chroma
//! uses the luma vector halved (4:2:0).

/// A full-pel motion vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct MotionVector {
    /// Horizontal displacement in pixels (positive = right).
    pub dx: i8,
    /// Vertical displacement in pixels (positive = down).
    pub dy: i8,
}

/// Maximum motion magnitude per axis.
pub const SEARCH_RANGE: i32 = 8;

/// Sum of absolute differences between a `size`×`size` block of `cur` at
/// `(cx, cy)` and a block of `reference` displaced by `(dx, dy)`.
/// Out-of-bounds reference pixels clamp to the edge.
#[allow(clippy::too_many_arguments)]
pub fn sad(
    cur: &[u8],
    reference: &[u8],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    dx: i32,
    dy: i32,
    size: usize,
) -> u32 {
    let mut acc = 0u32;
    for y in 0..size {
        for x in 0..size {
            let c = cur[(cy + y) * width + cx + x];
            let rx = (cx as i32 + x as i32 + dx).clamp(0, width as i32 - 1) as usize;
            let ry = (cy as i32 + y as i32 + dy).clamp(0, height as i32 - 1) as usize;
            let r = reference[ry * width + rx];
            acc += u32::from(c.abs_diff(r));
        }
    }
    acc
}

/// Three-step search (plus a unit-step descent refinement) for the best
/// motion vector of the 16×16 macroblock at `(mbx, mby)` (macroblock
/// coordinates). Returns the vector and its SAD.
///
/// The refinement walks ±1 neighbours until no improvement, so the result
/// is always a local SAD minimum; on smooth content this recovers exact
/// translations the coarse three-step pattern alone can miss.
pub fn estimate(
    cur: &[u8],
    reference: &[u8],
    width: usize,
    height: usize,
    mbx: usize,
    mby: usize,
) -> (MotionVector, u32) {
    let (cx, cy) = (mbx * 16, mby * 16);
    let mut best = (0i32, 0i32);
    let mut best_sad = sad(cur, reference, width, height, cx, cy, 0, 0, 16);
    let mut step = SEARCH_RANGE / 2;
    while step >= 1 {
        let (bx, by) = best;
        for (dx, dy) in [
            (-step, -step), (0, -step), (step, -step),
            (-step, 0),                 (step, 0),
            (-step, step),  (0, step),  (step, step),
        ] {
            let (nx, ny) = (bx + dx, by + dy);
            if nx.abs() > SEARCH_RANGE || ny.abs() > SEARCH_RANGE {
                continue;
            }
            let s = sad(cur, reference, width, height, cx, cy, nx, ny, 16);
            if s < best_sad {
                best_sad = s;
                best = (nx, ny);
            }
        }
        step /= 2;
    }
    // Unit-step descent until a local minimum (bounded by the window
    // perimeter, so it always terminates quickly).
    loop {
        let (bx, by) = best;
        let mut improved = false;
        for (dx, dy) in [
            (-1, -1), (0, -1), (1, -1),
            (-1, 0),           (1, 0),
            (-1, 1),  (0, 1),  (1, 1),
        ] {
            let (nx, ny) = (bx + dx, by + dy);
            if nx.abs() > SEARCH_RANGE || ny.abs() > SEARCH_RANGE {
                continue;
            }
            let s = sad(cur, reference, width, height, cx, cy, nx, ny, 16);
            if s < best_sad {
                best_sad = s;
                best = (nx, ny);
                improved = true;
            }
        }
        if !improved || best_sad == 0 {
            break;
        }
    }
    (MotionVector { dx: best.0 as i8, dy: best.1 as i8 }, best_sad)
}

/// Copies the motion-compensated prediction of a `size`×`size` block at
/// `(cx, cy)` from `reference` into `out` (a `size*size` buffer).
/// Out-of-bounds reference pixels clamp to the edge.
#[allow(clippy::too_many_arguments)]
pub fn predict_into(
    reference: &[u8],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    dx: i32,
    dy: i32,
    size: usize,
    out: &mut [u8],
) {
    debug_assert_eq!(out.len(), size * size);
    for y in 0..size {
        for x in 0..size {
            let rx = (cx as i32 + x as i32 + dx).clamp(0, width as i32 - 1) as usize;
            let ry = (cy as i32 + y as i32 + dy).clamp(0, height as i32 - 1) as usize;
            out[y * size + x] = reference[ry * width + rx];
        }
    }
}

/// A motion vector in half-pel units (`dx2 = 3` means +1.5 pixels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct HalfPelVector {
    /// Horizontal displacement in half-pels.
    pub dx2: i16,
    /// Vertical displacement in half-pels.
    pub dy2: i16,
}

impl HalfPelVector {
    /// Promotes a full-pel vector.
    pub fn from_full_pel(mv: MotionVector) -> Self {
        Self { dx2: i16::from(mv.dx) * 2, dy2: i16::from(mv.dy) * 2 }
    }
}

/// Samples `reference` at `(x + dx2/2, y + dy2/2)` with bilinear
/// interpolation at half-pel positions (H.261-style rounding averages) and
/// edge clamping.
fn sample_halfpel(reference: &[u8], width: usize, height: usize, x: i32, y: i32, dx2: i32, dy2: i32) -> u8 {
    let bx = x + dx2.div_euclid(2);
    let by = y + dy2.div_euclid(2);
    let fx = dx2.rem_euclid(2);
    let fy = dy2.rem_euclid(2);
    let at = |px: i32, py: i32| -> u32 {
        let cx = px.clamp(0, width as i32 - 1) as usize;
        let cy = py.clamp(0, height as i32 - 1) as usize;
        u32::from(reference[cy * width + cx])
    };
    match (fx, fy) {
        (0, 0) => at(bx, by) as u8,
        (1, 0) => ((at(bx, by) + at(bx + 1, by) + 1) / 2) as u8,
        (0, 1) => ((at(bx, by) + at(bx, by + 1) + 1) / 2) as u8,
        _ => ((at(bx, by) + at(bx + 1, by) + at(bx, by + 1) + at(bx + 1, by + 1) + 2) / 4) as u8,
    }
}

/// Copies the half-pel motion-compensated prediction of a `size`×`size`
/// block at `(cx, cy)` from `reference` into `out`.
#[allow(clippy::too_many_arguments)]
pub fn predict_halfpel_into(
    reference: &[u8],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    dx2: i32,
    dy2: i32,
    size: usize,
    out: &mut [u8],
) {
    debug_assert_eq!(out.len(), size * size);
    for y in 0..size {
        for x in 0..size {
            out[y * size + x] = sample_halfpel(
                reference,
                width,
                height,
                (cx + x) as i32,
                (cy + y) as i32,
                dx2,
                dy2,
            );
        }
    }
}

/// Full-pel search ([`estimate`]) followed by a half-pel refinement over
/// the eight half-pel neighbours. Returns the vector in half-pel units
/// and its SAD.
pub fn estimate_halfpel(
    cur: &[u8],
    reference: &[u8],
    width: usize,
    height: usize,
    mbx: usize,
    mby: usize,
) -> (HalfPelVector, u32) {
    let (full, full_sad) = estimate(cur, reference, width, height, mbx, mby);
    let (cx, cy) = (mbx * 16, mby * 16);
    let base = HalfPelVector::from_full_pel(full);
    let mut best = base;
    let mut best_sad = full_sad;
    let mut pred = [0u8; 256];
    for (ddx, ddy) in [
        (-1i16, -1i16), (0, -1), (1, -1),
        (-1, 0),                 (1, 0),
        (-1, 1),  (0, 1),  (1, 1),
    ] {
        let cand = HalfPelVector { dx2: base.dx2 + ddx, dy2: base.dy2 + ddy };
        if i32::from(cand.dx2).unsigned_abs() > 2 * SEARCH_RANGE as u32
            || i32::from(cand.dy2).unsigned_abs() > 2 * SEARCH_RANGE as u32
        {
            continue;
        }
        predict_halfpel_into(
            reference, width, height, cx, cy, cand.dx2.into(), cand.dy2.into(), 16, &mut pred,
        );
        let mut s = 0u32;
        for y in 0..16 {
            for x in 0..16 {
                s += u32::from(cur[(cy + y) * width + cx + x].abs_diff(pred[y * 16 + x]));
            }
        }
        if s < best_sad {
            best_sad = s;
            best = cand;
        }
    }
    (best, best_sad)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 32×32 test plane with a bright square at `(ox, oy)`.
    fn plane_with_square(ox: usize, oy: usize) -> Vec<u8> {
        let mut p = vec![20u8; 32 * 32];
        for y in 0..8 {
            for x in 0..8 {
                p[(oy + y) * 32 + ox + x] = 200;
            }
        }
        p
    }

    #[test]
    fn sad_zero_for_identical() {
        let p = plane_with_square(8, 8);
        assert_eq!(sad(&p, &p, 32, 32, 0, 0, 0, 0, 16), 0);
    }

    #[test]
    fn estimate_finds_known_shift() {
        // Current frame: square at (10, 8); reference: square at (7, 8).
        // The block content moved +3 in x, so the best vector points back
        // by (-3, 0) into the reference.
        let cur = plane_with_square(10, 8);
        let reference = plane_with_square(7, 8);
        let (mv, s) = estimate(&cur, &reference, 32, 32, 0, 0);
        assert_eq!((mv.dx, mv.dy), (-3, 0), "sad {s}");
        assert_eq!(s, 0);
    }

    #[test]
    fn estimate_finds_diagonal_shift() {
        let cur = plane_with_square(12, 12);
        let reference = plane_with_square(8, 8);
        let (mv, s) = estimate(&cur, &reference, 32, 32, 0, 0);
        assert_eq!((mv.dx, mv.dy), (-4, -4));
        assert_eq!(s, 0);
    }

    #[test]
    fn estimate_static_content_zero_vector() {
        let p = plane_with_square(8, 8);
        let (mv, s) = estimate(&p, &p, 32, 32, 0, 0);
        assert_eq!(mv, MotionVector::default());
        assert_eq!(s, 0);
    }

    #[test]
    fn vector_never_exceeds_range() {
        // Content that moved farther than the window: the estimator still
        // stays inside ±SEARCH_RANGE.
        let cur = plane_with_square(24, 8);
        let reference = plane_with_square(0, 8);
        let (mv, _) = estimate(&cur, &reference, 32, 32, 1, 0);
        assert!(i32::from(mv.dx).abs() <= SEARCH_RANGE);
        assert!(i32::from(mv.dy).abs() <= SEARCH_RANGE);
    }

    #[test]
    fn predict_reproduces_reference_block() {
        let reference = plane_with_square(7, 8);
        let mut out = vec![0u8; 256];
        predict_into(&reference, 32, 32, 0, 0, -3 + 3, 0, 16, &mut out);
        // Zero-displacement prediction equals the reference block itself.
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(out[y * 16 + x], reference[y * 32 + x]);
            }
        }
    }

    #[test]
    fn predict_clamps_at_edges() {
        let reference: Vec<u8> = (0..32 * 32).map(|i| (i % 256) as u8).collect();
        let mut out = vec![0u8; 64];
        // Predict an 8x8 block at the top-left corner displaced off-plane.
        predict_into(&reference, 32, 32, 0, 0, -5, -5, 8, &mut out);
        assert_eq!(out[0], reference[0]);
    }

    #[test]
    fn halfpel_full_positions_match_fullpel() {
        let reference = plane_with_square(7, 8);
        let mut a = vec![0u8; 256];
        let mut b = vec![0u8; 256];
        predict_into(&reference, 32, 32, 0, 0, -3, 2, 16, &mut a);
        predict_halfpel_into(&reference, 32, 32, 0, 0, -6, 4, 16, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn halfpel_interpolates_between_pixels() {
        // A horizontal step edge: the half-pel sample between 20 and 200
        // is their rounding average.
        let mut reference = vec![20u8; 32 * 32];
        for row in reference.chunks_mut(32) {
            for v in &mut row[16..] {
                *v = 200;
            }
        }
        let mut out = vec![0u8; 64];
        // dx2 = 1: sample halfway between columns.
        predict_halfpel_into(&reference, 32, 32, 15, 0, 1, 0, 8, &mut out);
        // Block column 0 = source column 15 + 0.5 → (20 + 200 + 1)/2 = 110.
        assert_eq!(out[0], 110);
    }

    #[test]
    fn halfpel_beats_fullpel_on_half_shift() {
        // Content shifted by exactly half a pixel (simulated by averaging
        // neighbours): the half-pel estimator must find a strictly lower
        // SAD than full-pel.
        let w = 48usize;
        let reference: Vec<u8> = (0..w * w)
            .map(|i| {
                let x = (i % w) as f64;
                (128.0 + 100.0 * (x * 0.2).sin()) as u8
            })
            .collect();
        let cur: Vec<u8> = (0..w * w)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                let a = u32::from(reference[y * w + x]);
                let b = u32::from(reference[y * w + (x + 1).min(w - 1)]);
                ((a + b + 1) / 2) as u8
            })
            .collect();
        let (_, full_sad) = estimate(&cur, &reference, w, w, 1, 1);
        let (hv, half_sad) = estimate_halfpel(&cur, &reference, w, w, 1, 1);
        assert!(half_sad < full_sad, "half {half_sad} vs full {full_sad}");
        assert_eq!(hv.dx2.rem_euclid(2), 1, "expected a half-pel x component: {hv:?}");
    }

    #[test]
    fn halfpel_vector_promotion() {
        let hv = HalfPelVector::from_full_pel(MotionVector { dx: -3, dy: 5 });
        assert_eq!((hv.dx2, hv.dy2), (-6, 10));
    }

    #[test]
    fn mc_then_residual_zero_for_pure_translation() {
        let cur = plane_with_square(10, 8);
        let reference = plane_with_square(7, 8);
        let (mv, _) = estimate(&cur, &reference, 32, 32, 0, 0);
        let mut pred = vec![0u8; 256];
        predict_into(&reference, 32, 32, 0, 0, mv.dx.into(), mv.dy.into(), 16, &mut pred);
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(pred[y * 16 + x], cur[y * 32 + x]);
            }
        }
    }
}
