//! Block motion estimation and compensation.
//!
//! 16×16 luma macroblocks, full-pel motion vectors in a ±8 search window,
//! estimated with a three-step search seeded at the zero vector (plus
//! optional caller-supplied predictor seeds). Chroma uses the luma vector
//! halved (4:2:0).
//!
//! Two exact speed tricks, both provably bit-identical to the exhaustive
//! evaluation under the strict-less acceptance rule used throughout:
//!
//! * **Early-exit SAD** ([`sad_bounded`]): the row loop aborts as soon as
//!   the running sum reaches the current best. A candidate that would be
//!   *accepted* (true SAD < best) is never aborted — every partial sum of
//!   a total below the limit is below the limit — so accepted candidates
//!   return exact SADs; rejected candidates return some value ≥ best,
//!   which `<`-comparison rejects exactly as the full sum would.
//! * **Visited-offset skipping**: `best_sad` is non-increasing, so any
//!   offset already evaluated has true SAD ≥ the `best_sad` in force when
//!   it was tried ≥ the current `best_sad`; re-evaluating it can never
//!   pass a strict-less test. Each offset is therefore evaluated at most
//!   once per search (the naive refinement re-scored the reigning best 8
//!   times per descent step).

/// A full-pel motion vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct MotionVector {
    /// Horizontal displacement in pixels (positive = right).
    pub dx: i8,
    /// Vertical displacement in pixels (positive = down).
    pub dy: i8,
}

/// Maximum motion magnitude per axis.
pub const SEARCH_RANGE: i32 = 8;

/// Sum of absolute differences between a `size`×`size` block of `cur` at
/// `(cx, cy)` and a block of `reference` displaced by `(dx, dy)`.
/// Out-of-bounds reference pixels clamp to the edge.
#[allow(clippy::too_many_arguments)]
pub fn sad(
    cur: &[u8],
    reference: &[u8],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    dx: i32,
    dy: i32,
    size: usize,
) -> u32 {
    sad_bounded(cur, reference, width, height, cx, cy, dx, dy, size, u32::MAX)
}

/// [`sad`] with a running-best abort: after each row, if the partial sum
/// has reached `limit`, that partial sum is returned immediately.
///
/// The return value is exact whenever it is `< limit`; a return `≥ limit`
/// is a lower bound on the true SAD, which is all a strict-less
/// comparison against `limit` needs (see the module docs for why this is
/// bit-identical to exhaustive evaluation).
#[allow(clippy::too_many_arguments)]
pub fn sad_bounded(
    cur: &[u8],
    reference: &[u8],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    dx: i32,
    dy: i32,
    size: usize,
    limit: u32,
) -> u32 {
    let mut acc = 0u32;
    for y in 0..size {
        for x in 0..size {
            let c = cur[(cy + y) * width + cx + x];
            let rx = (cx as i32 + x as i32 + dx).clamp(0, width as i32 - 1) as usize;
            let ry = (cy as i32 + y as i32 + dy).clamp(0, height as i32 - 1) as usize;
            let r = reference[ry * width + rx];
            acc += u32::from(c.abs_diff(r));
        }
        if acc >= limit {
            return acc;
        }
    }
    acc
}

/// Whether SAD evaluation may abort early against the running best
/// (`EarlyExit`, the canonical fast path) or must always complete
/// (`Exhaustive`, the reference used to prove bit-identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Abort SAD rows once the partial sum reaches the running best.
    #[default]
    EarlyExit,
    /// Always evaluate full SADs with the retained per-pixel clamped
    /// loop, and never skip already-visited offsets (reference
    /// behaviour: the exact pre-fast-path search trajectory, duplicate
    /// re-evaluations included).
    Exhaustive,
}

impl SearchMode {
    #[inline]
    fn limit(self, best: u32) -> u32 {
        match self {
            Self::EarlyExit => best,
            Self::Exhaustive => u32::MAX,
        }
    }

    /// Evaluates one 16×16 full-pel SAD candidate under this mode.
    ///
    /// `EarlyExit` uses the interior fast loop (unclamped slice rows the
    /// compiler can vectorise) with the running-best abort; `Exhaustive`
    /// runs the retained per-pixel clamped evaluation to completion. Both
    /// compute the identical sum for any candidate that can be accepted
    /// (strict-less), so the two modes return bit-identical vectors.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn sad16(
        self,
        cur: &[u8],
        reference: &[u8],
        width: usize,
        height: usize,
        cx: usize,
        cy: usize,
        dx: i32,
        dy: i32,
        best: u32,
    ) -> u32 {
        match self {
            Self::EarlyExit => sad16_fast(cur, reference, width, height, cx, cy, dx, dy, best),
            Self::Exhaustive => {
                sad_bounded(cur, reference, width, height, cx, cy, dx, dy, 16, u32::MAX)
            }
        }
    }

    /// Evaluates one 16×16 half-pel SAD candidate under this mode (same
    /// contract as [`SearchMode::sad16`]).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn sad16_halfpel(
        self,
        cur: &[u8],
        reference: &[u8],
        width: usize,
        height: usize,
        cx: usize,
        cy: usize,
        dx2: i32,
        dy2: i32,
        best: u32,
    ) -> u32 {
        match self {
            Self::EarlyExit => {
                sad16_halfpel_fast(cur, reference, width, height, cx, cy, dx2, dy2, best)
            }
            Self::Exhaustive => {
                sad_halfpel_bounded(cur, reference, width, height, cx, cy, dx2, dy2, u32::MAX)
            }
        }
    }
}

/// Exact sum of absolute differences over one 16-pixel row.
///
/// On x86-64 this is a single `psadbw` (SSE2 is part of the baseline
/// ISA), which computes the identical integer sum the scalar loop does —
/// bit-exact, just ~8× fewer instructions. Other targets keep the
/// autovectorisable scalar loop.
#[inline]
#[allow(unsafe_code)]
fn row_sad16(c: &[u8], r: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: both slices are bounds-checked to 16 bytes; unaligned loads
    // are explicitly `loadu`; SSE2 is unconditionally available on x86-64.
    unsafe {
        use std::arch::x86_64::*;
        let a = _mm_loadu_si128(c[..16].as_ptr().cast());
        let b = _mm_loadu_si128(r[..16].as_ptr().cast());
        let s = _mm_sad_epu8(a, b);
        (_mm_cvtsi128_si32(s) as u32) + (_mm_extract_epi16(s, 4) as u32)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        c[..16].iter().zip(&r[..16]).map(|(a, b)| u32::from(a.abs_diff(*b))).sum()
    }
}

/// Interpolates one 16-pixel half-pel row into an SSE2 register.
///
/// `r0`/`r1` are the two source rows (`r1 == r0` when `fy == 0`), both at
/// least `16 + fx` pixels. The two-tap phases use `pavgb` (exactly
/// `(a + b + 1) >> 1`, the codec's rounding) and the four-tap phase
/// widens to `u16` for the exact `(a+b+c+d+2) >> 2` — identical
/// arithmetic to [`sample_halfpel`].
///
/// # Safety
///
/// Requires `r0.len() >= 16 + fx` and `r1.len() >= 16 + fx` (enforced
/// here with slice bounds checks, so the function is sound for any
/// input); callers must be on x86-64 (SSE2 is baseline).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[inline]
unsafe fn interp16(r0: &[u8], r1: &[u8], fx: usize, fy: usize) -> std::arch::x86_64::__m128i {
    use std::arch::x86_64::*;
    // SAFETY: every load below is over a bounds-checked 16-byte subslice
    // and explicitly unaligned.
    unsafe {
        match (fx, fy) {
            (0, 0) => _mm_loadu_si128(r0[..16].as_ptr().cast()),
            (1, 0) => {
                let a = _mm_loadu_si128(r0[..16].as_ptr().cast());
                let b = _mm_loadu_si128(r0[1..17].as_ptr().cast());
                _mm_avg_epu8(a, b)
            }
            (0, 1) => {
                let a = _mm_loadu_si128(r0[..16].as_ptr().cast());
                let b = _mm_loadu_si128(r1[..16].as_ptr().cast());
                _mm_avg_epu8(a, b)
            }
            _ => {
                let a = _mm_loadu_si128(r0[..16].as_ptr().cast());
                let b = _mm_loadu_si128(r0[1..17].as_ptr().cast());
                let d = _mm_loadu_si128(r1[..16].as_ptr().cast());
                let e = _mm_loadu_si128(r1[1..17].as_ptr().cast());
                let zero = _mm_setzero_si128();
                let two = _mm_set1_epi16(2);
                // Widen to u16 lanes: (a + b + d + e + 2) >> 2 per pixel
                // (max 1022, no overflow), then repack. `packus` saturates
                // but every lane is already <= 255.
                let lo = _mm_srli_epi16(
                    _mm_add_epi16(
                        _mm_add_epi16(
                            _mm_unpacklo_epi8(a, zero),
                            _mm_unpacklo_epi8(b, zero),
                        ),
                        _mm_add_epi16(
                            _mm_add_epi16(
                                _mm_unpacklo_epi8(d, zero),
                                _mm_unpacklo_epi8(e, zero),
                            ),
                            two,
                        ),
                    ),
                    2,
                );
                let hi = _mm_srli_epi16(
                    _mm_add_epi16(
                        _mm_add_epi16(
                            _mm_unpackhi_epi8(a, zero),
                            _mm_unpackhi_epi8(b, zero),
                        ),
                        _mm_add_epi16(
                            _mm_add_epi16(
                                _mm_unpackhi_epi8(d, zero),
                                _mm_unpackhi_epi8(e, zero),
                            ),
                            two,
                        ),
                    ),
                    2,
                );
                _mm_packus_epi16(lo, hi)
            }
        }
    }
}

/// Exact 16-pixel half-pel interpolated row SAD: interpolates the
/// reference row(s) with the codec's rounding averages and sums absolute
/// differences against `c`.
///
/// `r0`/`r1` are the two source rows (`r1 == r0` when `fy == 0`), both at
/// least `16 + fx` pixels. On x86-64 the two-tap phases use `pavgb`
/// (exactly `(a + b + 1) >> 1`, the codec's rounding) and the four-tap
/// phase widens to `u16` for the exact `(a+b+c+d+2) >> 2`; the final sum
/// is one `psadbw`. Identical arithmetic to [`sample_halfpel`].
#[inline]
#[allow(unsafe_code)]
fn row_sad16_halfpel(c: &[u8], r0: &[u8], r1: &[u8], fx: usize, fy: usize) -> u32 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: slices are bounds-checked to the widths read below;
    // unaligned loads are explicitly `loadu`; SSE2 is baseline on x86-64.
    unsafe {
        use std::arch::x86_64::*;
        let cur = _mm_loadu_si128(c[..16].as_ptr().cast());
        let pred = interp16(r0, r1, fx, fy);
        let s = _mm_sad_epu8(cur, pred);
        (_mm_cvtsi128_si32(s) as u32) + (_mm_extract_epi16(s, 4) as u32)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let c = &c[..16];
        match (fx, fy) {
            (0, 0) => c.iter().zip(&r0[..16]).map(|(a, b)| u32::from(a.abs_diff(*b))).sum(),
            (1, 0) => (0..16)
                .map(|x| {
                    let p = (u32::from(r0[x]) + u32::from(r0[x + 1]) + 1) / 2;
                    (u32::from(c[x]) as i32 - p as i32).unsigned_abs()
                })
                .sum(),
            (0, 1) => (0..16)
                .map(|x| {
                    let p = (u32::from(r0[x]) + u32::from(r1[x]) + 1) / 2;
                    (u32::from(c[x]) as i32 - p as i32).unsigned_abs()
                })
                .sum(),
            _ => (0..16)
                .map(|x| {
                    let p = (u32::from(r0[x])
                        + u32::from(r0[x + 1])
                        + u32::from(r1[x])
                        + u32::from(r1[x + 1])
                        + 2)
                        / 4;
                    (u32::from(c[x]) as i32 - p as i32).unsigned_abs()
                })
                .sum(),
        }
    }
}

/// Materialises the edge-clamped displaced row `row[ox .. ox + buf.len()]`
/// into `buf`: a left run of `row[0]`, a verbatim middle copy, and a right
/// run of `row[width - 1]` — exactly what per-pixel
/// `clamp(0, width - 1)` indexing produces, built with two fills and one
/// `memcpy` so the SIMD row kernels apply at plane borders too.
#[inline]
fn clamped_row(row: &[u8], width: usize, ox: i32, buf: &mut [u8]) {
    let n = buf.len() as i32;
    let left = (-ox).clamp(0, n) as usize;
    let right_start = (width as i32 - ox).clamp(0, n) as usize;
    buf[..left].fill(row[0]);
    buf[right_start..].fill(row[width - 1]);
    if left < right_start {
        let src = (ox + left as i32) as usize;
        buf[left..right_start].copy_from_slice(&row[src..src + (right_start - left)]);
    }
}

/// Sum of absolute deviations of a 16×16 block from its truncated mean —
/// the encoder's intra-cost proxy — via the SAD row kernel: the block sum
/// is Σ|v − 0| and the deviation Σ|v − mean| (`mean ≤ 255` always fits a
/// byte), so both passes are `psadbw` rows on x86-64. Arithmetic is
/// identical to the retained per-pixel loop.
pub(crate) fn mean_deviation16(plane: &[u8], stride: usize, px: usize, py: usize) -> u32 {
    let zero = [0u8; 16];
    let mut sum = 0u32;
    for y in 0..16 {
        sum += row_sad16(&plane[(py + y) * stride + px..][..16], &zero);
    }
    let mean = [(sum / 256) as u8; 16];
    let mut dev = 0u32;
    for y in 0..16 {
        dev += row_sad16(&plane[(py + y) * stride + px..][..16], &mean);
    }
    dev
}

/// Interior-specialised 16×16 SAD with running-best abort.
///
/// When the displaced block lies fully inside the reference plane the
/// per-pixel edge clamps are no-ops, so each row is a [`row_sad16`]
/// (`psadbw` on x86-64). Border candidates materialise each clamped row
/// via [`clamped_row`] and run the same kernel. Either way the sum
/// matches [`sad_bounded`] exactly.
#[allow(clippy::too_many_arguments)]
#[inline]
fn sad16_fast(
    cur: &[u8],
    reference: &[u8],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    dx: i32,
    dy: i32,
    limit: u32,
) -> u32 {
    let ox = cx as i32 + dx;
    let oy = cy as i32 + dy;
    if ox < 0 || oy < 0 || ox + 16 > width as i32 || oy + 16 > height as i32 {
        // Border candidate: clamp rows into a stack buffer, same kernel.
        let mut buf = [0u8; 16];
        let mut acc = 0u32;
        for y in 0..16 {
            let ry = (oy + y).clamp(0, height as i32 - 1) as usize;
            clamped_row(&reference[ry * width..][..width], width, ox, &mut buf);
            acc += row_sad16(&cur[(cy + y as usize) * width + cx..][..16], &buf);
            if acc >= limit {
                return acc;
            }
        }
        return acc;
    }
    let (ox, oy) = (ox as usize, oy as usize);
    let mut acc = 0u32;
    for y in 0..16 {
        let c = &cur[(cy + y) * width + cx..][..16];
        let r = &reference[(oy + y) * width + ox..][..16];
        acc += row_sad16(c, r);
        if acc >= limit {
            return acc;
        }
    }
    acc
}

/// Interior-specialised 16×16 half-pel SAD with running-best abort.
///
/// Hoists the half-pel phase (`fx`, `fy`) and base offset out of the
/// pixel loop and interpolates over plain slices when the (up to
/// 17×17) source window lies fully inside the plane; border candidates
/// fall back to the clamped per-pixel loop. The rounding averages are
/// identical to [`sample_halfpel`], so the sum matches
/// [`sad_halfpel_bounded`] exactly.
#[allow(clippy::too_many_arguments)]
fn sad16_halfpel_fast(
    cur: &[u8],
    reference: &[u8],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    dx2: i32,
    dy2: i32,
    limit: u32,
) -> u32 {
    let fx = dx2.rem_euclid(2) as usize;
    let fy = dy2.rem_euclid(2) as usize;
    let bx = cx as i32 + dx2.div_euclid(2);
    let by = cy as i32 + dy2.div_euclid(2);
    if bx < 0
        || by < 0
        || bx + 16 + fx as i32 > width as i32
        || by + 16 + fy as i32 > height as i32
    {
        // Border candidate: materialise both clamped source rows and run
        // the same interpolating row kernel. Each tap coordinate clamps
        // independently, exactly as [`sample_halfpel`] does.
        let (mut b0, mut b1) = ([0u8; 17], [0u8; 17]);
        let mut acc = 0u32;
        for y in 0..16i32 {
            let ry0 = (by + y).clamp(0, height as i32 - 1) as usize;
            let ry1 = (by + y + fy as i32).clamp(0, height as i32 - 1) as usize;
            clamped_row(&reference[ry0 * width..][..width], width, bx, &mut b0[..16 + fx]);
            clamped_row(&reference[ry1 * width..][..width], width, bx, &mut b1[..16 + fx]);
            let c = &cur[(cy + y as usize) * width + cx..][..16];
            acc += row_sad16_halfpel(c, &b0, &b1, fx, fy);
            if acc >= limit {
                return acc;
            }
        }
        return acc;
    }
    let (bx, by) = (bx as usize, by as usize);
    let mut acc = 0u32;
    for y in 0..16 {
        let c = &cur[(cy + y) * width + cx..][..16];
        let r0 = &reference[(by + y) * width + bx..][..16 + fx];
        let r1 = &reference[(by + y + fy) * width + bx..][..16 + fx];
        acc += row_sad16_halfpel(c, r0, r1, fx, fy);
        if acc >= limit {
            return acc;
        }
    }
    acc
}

/// Bitset over the `(2·SEARCH_RANGE+1)²` = 17×17 offset window, tracking
/// which candidates a search has already evaluated.
#[derive(Default)]
struct Visited([u64; 5]);

impl Visited {
    /// Marks `(dx, dy)` (each in `-SEARCH_RANGE..=SEARCH_RANGE`) visited;
    /// returns `true` if it was not yet marked.
    #[inline]
    fn first_visit(&mut self, dx: i32, dy: i32) -> bool {
        let idx = ((dx + SEARCH_RANGE) * (2 * SEARCH_RANGE + 1) + (dy + SEARCH_RANGE)) as usize;
        let (word, bit) = (idx / 64, idx % 64);
        let fresh = self.0[word] & (1u64 << bit) == 0;
        self.0[word] |= 1u64 << bit;
        fresh
    }
}

/// Three-step search (plus a unit-step descent refinement) for the best
/// motion vector of the 16×16 macroblock at `(mbx, mby)` (macroblock
/// coordinates). Returns the vector and its SAD.
///
/// The refinement walks ±1 neighbours until no improvement, so the result
/// is always a local SAD minimum; on smooth content this recovers exact
/// translations the coarse three-step pattern alone can miss.
pub fn estimate(
    cur: &[u8],
    reference: &[u8],
    width: usize,
    height: usize,
    mbx: usize,
    mby: usize,
) -> (MotionVector, u32) {
    estimate_seeded(cur, reference, width, height, mbx, mby, &[], SearchMode::EarlyExit)
}

/// [`estimate`] with caller-supplied predictor seeds (typically the left
/// and up neighbours' vectors) tried after the zero vector and before the
/// three-step pattern, and an explicit [`SearchMode`].
///
/// Seeds only *reorder* evaluation: acceptance stays strict-less, so for
/// a given seed list `EarlyExit` and `Exhaustive` return bit-identical
/// vectors and SADs. With an empty seed list the search trajectory is
/// exactly the historical [`estimate`] (three-step from zero plus
/// unit-step descent), minus redundant re-evaluations.
#[allow(clippy::too_many_arguments)]
pub fn estimate_seeded(
    cur: &[u8],
    reference: &[u8],
    width: usize,
    height: usize,
    mbx: usize,
    mby: usize,
    seeds: &[MotionVector],
    mode: SearchMode,
) -> (MotionVector, u32) {
    let (cx, cy) = (mbx * 16, mby * 16);
    let mut visited = Visited::default();
    visited.first_visit(0, 0);
    let mut best = (0i32, 0i32);
    let mut best_sad = mode.sad16(cur, reference, width, height, cx, cy, 0, 0, u32::MAX);
    // Zero SAD can never be beaten under strict-less acceptance, so
    // stopping here is exact. Only the fast path takes the shortcut: the
    // exhaustive reference keeps the historical full trajectory (whose
    // extra candidates provably change nothing).
    let done = |s: u32| mode == SearchMode::EarlyExit && s == 0;
    if done(best_sad) {
        return (MotionVector::default(), 0);
    }
    // Predictor seeds: motion fields are spatially coherent, so a
    // neighbour's vector usually lands near the optimum and tightens the
    // early-exit limit for everything that follows.
    for seed in seeds {
        let (nx, ny) = (i32::from(seed.dx), i32::from(seed.dy));
        if nx.abs() > SEARCH_RANGE
            || ny.abs() > SEARCH_RANGE
            || (mode == SearchMode::EarlyExit && !visited.first_visit(nx, ny))
        {
            continue;
        }
        let s = mode.sad16(cur, reference, width, height, cx, cy, nx, ny, mode.limit(best_sad));
        if s < best_sad {
            best_sad = s;
            best = (nx, ny);
        }
    }
    let mut step = SEARCH_RANGE / 2;
    while step >= 1 && !done(best_sad) {
        let (bx, by) = best;
        for (dx, dy) in [
            (-step, -step), (0, -step), (step, -step),
            (-step, 0),                 (step, 0),
            (-step, step),  (0, step),  (step, step),
        ] {
            let (nx, ny) = (bx + dx, by + dy);
            if nx.abs() > SEARCH_RANGE
                || ny.abs() > SEARCH_RANGE
                || (mode == SearchMode::EarlyExit && !visited.first_visit(nx, ny))
            {
                continue;
            }
            let s = mode.sad16(cur, reference, width, height, cx, cy, nx, ny, mode.limit(best_sad));
            if s < best_sad {
                best_sad = s;
                best = (nx, ny);
            }
        }
        step /= 2;
    }
    // Unit-step descent until a local minimum (bounded by the window
    // perimeter, so it always terminates quickly).
    while !done(best_sad) {
        let (bx, by) = best;
        let mut improved = false;
        for (dx, dy) in [
            (-1, -1), (0, -1), (1, -1),
            (-1, 0),           (1, 0),
            (-1, 1),  (0, 1),  (1, 1),
        ] {
            let (nx, ny) = (bx + dx, by + dy);
            if nx.abs() > SEARCH_RANGE
                || ny.abs() > SEARCH_RANGE
                || (mode == SearchMode::EarlyExit && !visited.first_visit(nx, ny))
            {
                continue;
            }
            let s = mode.sad16(cur, reference, width, height, cx, cy, nx, ny, mode.limit(best_sad));
            if s < best_sad {
                best_sad = s;
                best = (nx, ny);
                improved = true;
            }
        }
        if !improved || best_sad == 0 {
            break;
        }
    }
    (MotionVector { dx: best.0 as i8, dy: best.1 as i8 }, best_sad)
}

/// Copies the motion-compensated prediction of a `size`×`size` block at
/// `(cx, cy)` from `reference` into `out` (a `size*size` buffer).
/// Out-of-bounds reference pixels clamp to the edge.
#[allow(clippy::too_many_arguments)]
pub fn predict_into(
    reference: &[u8],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    dx: i32,
    dy: i32,
    size: usize,
    out: &mut [u8],
) {
    debug_assert_eq!(out.len(), size * size);
    for y in 0..size {
        for x in 0..size {
            let rx = (cx as i32 + x as i32 + dx).clamp(0, width as i32 - 1) as usize;
            let ry = (cy as i32 + y as i32 + dy).clamp(0, height as i32 - 1) as usize;
            out[y * size + x] = reference[ry * width + rx];
        }
    }
}

/// A motion vector in half-pel units (`dx2 = 3` means +1.5 pixels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct HalfPelVector {
    /// Horizontal displacement in half-pels.
    pub dx2: i16,
    /// Vertical displacement in half-pels.
    pub dy2: i16,
}

impl HalfPelVector {
    /// Promotes a full-pel vector.
    pub fn from_full_pel(mv: MotionVector) -> Self {
        Self { dx2: i16::from(mv.dx) * 2, dy2: i16::from(mv.dy) * 2 }
    }
}

/// Samples `reference` at `(x + dx2/2, y + dy2/2)` with bilinear
/// interpolation at half-pel positions (H.261-style rounding averages) and
/// edge clamping.
fn sample_halfpel(reference: &[u8], width: usize, height: usize, x: i32, y: i32, dx2: i32, dy2: i32) -> u8 {
    let bx = x + dx2.div_euclid(2);
    let by = y + dy2.div_euclid(2);
    let fx = dx2.rem_euclid(2);
    let fy = dy2.rem_euclid(2);
    let at = |px: i32, py: i32| -> u32 {
        let cx = px.clamp(0, width as i32 - 1) as usize;
        let cy = py.clamp(0, height as i32 - 1) as usize;
        u32::from(reference[cy * width + cx])
    };
    match (fx, fy) {
        (0, 0) => at(bx, by) as u8,
        (1, 0) => ((at(bx, by) + at(bx + 1, by) + 1) / 2) as u8,
        (0, 1) => ((at(bx, by) + at(bx, by + 1) + 1) / 2) as u8,
        _ => ((at(bx, by) + at(bx + 1, by) + at(bx, by + 1) + at(bx + 1, by + 1) + 2) / 4) as u8,
    }
}

/// Copies the half-pel motion-compensated prediction of a `size`×`size`
/// block at `(cx, cy)` from `reference` into `out`.
#[allow(clippy::too_many_arguments)]
pub fn predict_halfpel_into(
    reference: &[u8],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    dx2: i32,
    dy2: i32,
    size: usize,
    out: &mut [u8],
) {
    debug_assert_eq!(out.len(), size * size);
    // Interior fast path: hoist the half-pel phase out of the pixel loop
    // and interpolate over plain slices. The rounding averages are
    // identical to [`sample_halfpel`], so the output bytes match the
    // clamped fallback exactly whenever both are in range.
    let fx = dx2.rem_euclid(2) as usize;
    let fy = dy2.rem_euclid(2) as usize;
    let bx = cx as i32 + dx2.div_euclid(2);
    let by = cy as i32 + dy2.div_euclid(2);
    if bx >= 0
        && by >= 0
        && bx + (size + fx) as i32 <= width as i32
        && by + (size + fy) as i32 <= height as i32
    {
        let (bx, by) = (bx as usize, by as usize);
        for y in 0..size {
            let r0 = &reference[(by + y) * width + bx..][..size + fx];
            let r1 = &reference[(by + y + fy) * width + bx..][..size + fx];
            let row = &mut out[y * size..][..size];
            #[cfg(target_arch = "x86_64")]
            #[allow(unsafe_code)]
            if size == 16 {
                // SAFETY: `r0`/`r1` are exactly `16 + fx` bytes, `row` is
                // 16; `interp16` bounds-checks its own loads and the
                // store is explicitly unaligned. Same arithmetic as the
                // scalar arms below (pavgb/u16-widening rounding).
                unsafe {
                    use std::arch::x86_64::*;
                    _mm_storeu_si128(row.as_mut_ptr().cast(), interp16(r0, r1, fx, fy));
                }
                continue;
            }
            match (fx, fy) {
                (0, 0) => row.copy_from_slice(r0),
                (1, 0) => {
                    for (x, o) in row.iter_mut().enumerate() {
                        *o = ((u32::from(r0[x]) + u32::from(r0[x + 1]) + 1) / 2) as u8;
                    }
                }
                (0, 1) => {
                    for (x, o) in row.iter_mut().enumerate() {
                        *o = ((u32::from(r0[x]) + u32::from(r1[x]) + 1) / 2) as u8;
                    }
                }
                _ => {
                    for (x, o) in row.iter_mut().enumerate() {
                        *o = ((u32::from(r0[x])
                            + u32::from(r0[x + 1])
                            + u32::from(r1[x])
                            + u32::from(r1[x + 1])
                            + 2)
                            / 4) as u8;
                    }
                }
            }
        }
        return;
    }
    predict_halfpel_into_reference(reference, width, height, cx, cy, dx2, dy2, size, out);
}

/// [`predict_halfpel_into`] via the retained per-pixel clamped sampler —
/// exactly the pre-fast-path loop, with identical output bytes. The
/// interior-specialised path falls back to this at plane borders, and the
/// reference codec path uses it unconditionally for honest baseline
/// timing.
#[allow(clippy::too_many_arguments)]
pub fn predict_halfpel_into_reference(
    reference: &[u8],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    dx2: i32,
    dy2: i32,
    size: usize,
    out: &mut [u8],
) {
    debug_assert_eq!(out.len(), size * size);
    for y in 0..size {
        for x in 0..size {
            out[y * size + x] = sample_halfpel(
                reference,
                width,
                height,
                (cx + x) as i32,
                (cy + y) as i32,
                dx2,
                dy2,
            );
        }
    }
}

/// [`sad`] against a half-pel-displaced prediction, with the same
/// row-level running-best abort as [`sad_bounded`].
#[allow(clippy::too_many_arguments)]
fn sad_halfpel_bounded(
    cur: &[u8],
    reference: &[u8],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    dx2: i32,
    dy2: i32,
    limit: u32,
) -> u32 {
    let mut acc = 0u32;
    for y in 0..16 {
        for x in 0..16 {
            let c = cur[(cy + y) * width + cx + x];
            let p = sample_halfpel(
                reference,
                width,
                height,
                (cx + x) as i32,
                (cy + y) as i32,
                dx2,
                dy2,
            );
            acc += u32::from(c.abs_diff(p));
        }
        if acc >= limit {
            return acc;
        }
    }
    acc
}

/// Full-pel search ([`estimate`]) followed by a half-pel refinement over
/// the eight half-pel neighbours. Returns the vector in half-pel units
/// and its SAD.
pub fn estimate_halfpel(
    cur: &[u8],
    reference: &[u8],
    width: usize,
    height: usize,
    mbx: usize,
    mby: usize,
) -> (HalfPelVector, u32) {
    estimate_halfpel_seeded(cur, reference, width, height, mbx, mby, &[], SearchMode::EarlyExit)
}

/// [`estimate_halfpel`] with predictor seeds for the full-pel stage and an
/// explicit [`SearchMode`] (also applied to the half-pel refinement SADs —
/// strict-less acceptance keeps both modes bit-identical).
#[allow(clippy::too_many_arguments)]
pub fn estimate_halfpel_seeded(
    cur: &[u8],
    reference: &[u8],
    width: usize,
    height: usize,
    mbx: usize,
    mby: usize,
    seeds: &[MotionVector],
    mode: SearchMode,
) -> (HalfPelVector, u32) {
    let (full, full_sad) = estimate_seeded(cur, reference, width, height, mbx, mby, seeds, mode);
    let (cx, cy) = (mbx * 16, mby * 16);
    let base = HalfPelVector::from_full_pel(full);
    // A perfect full-pel match can never be beaten under strict-less
    // acceptance (SADs are non-negative), so the fast path skips the
    // half-pel refinement entirely — exact, and a large win on static
    // content where most macroblocks match their reference perfectly.
    if mode == SearchMode::EarlyExit && full_sad == 0 {
        return (base, 0);
    }
    let mut best = base;
    let mut best_sad = full_sad;
    for (ddx, ddy) in [
        (-1i16, -1i16), (0, -1), (1, -1),
        (-1, 0),                 (1, 0),
        (-1, 1),  (0, 1),  (1, 1),
    ] {
        let cand = HalfPelVector { dx2: base.dx2 + ddx, dy2: base.dy2 + ddy };
        if i32::from(cand.dx2).unsigned_abs() > 2 * SEARCH_RANGE as u32
            || i32::from(cand.dy2).unsigned_abs() > 2 * SEARCH_RANGE as u32
        {
            continue;
        }
        let s = mode.sad16_halfpel(
            cur,
            reference,
            width,
            height,
            cx,
            cy,
            cand.dx2.into(),
            cand.dy2.into(),
            mode.limit(best_sad),
        );
        if s < best_sad {
            best_sad = s;
            best = cand;
        }
    }
    (best, best_sad)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 32×32 test plane with a bright square at `(ox, oy)`.
    fn plane_with_square(ox: usize, oy: usize) -> Vec<u8> {
        let mut p = vec![20u8; 32 * 32];
        for y in 0..8 {
            for x in 0..8 {
                p[(oy + y) * 32 + ox + x] = 200;
            }
        }
        p
    }

    #[test]
    fn sad_zero_for_identical() {
        let p = plane_with_square(8, 8);
        assert_eq!(sad(&p, &p, 32, 32, 0, 0, 0, 0, 16), 0);
    }

    #[test]
    fn estimate_finds_known_shift() {
        // Current frame: square at (10, 8); reference: square at (7, 8).
        // The block content moved +3 in x, so the best vector points back
        // by (-3, 0) into the reference.
        let cur = plane_with_square(10, 8);
        let reference = plane_with_square(7, 8);
        let (mv, s) = estimate(&cur, &reference, 32, 32, 0, 0);
        assert_eq!((mv.dx, mv.dy), (-3, 0), "sad {s}");
        assert_eq!(s, 0);
    }

    #[test]
    fn estimate_finds_diagonal_shift() {
        let cur = plane_with_square(12, 12);
        let reference = plane_with_square(8, 8);
        let (mv, s) = estimate(&cur, &reference, 32, 32, 0, 0);
        assert_eq!((mv.dx, mv.dy), (-4, -4));
        assert_eq!(s, 0);
    }

    #[test]
    fn estimate_static_content_zero_vector() {
        let p = plane_with_square(8, 8);
        let (mv, s) = estimate(&p, &p, 32, 32, 0, 0);
        assert_eq!(mv, MotionVector::default());
        assert_eq!(s, 0);
    }

    #[test]
    fn vector_never_exceeds_range() {
        // Content that moved farther than the window: the estimator still
        // stays inside ±SEARCH_RANGE.
        let cur = plane_with_square(24, 8);
        let reference = plane_with_square(0, 8);
        let (mv, _) = estimate(&cur, &reference, 32, 32, 1, 0);
        assert!(i32::from(mv.dx).abs() <= SEARCH_RANGE);
        assert!(i32::from(mv.dy).abs() <= SEARCH_RANGE);
    }

    #[test]
    fn predict_reproduces_reference_block() {
        let reference = plane_with_square(7, 8);
        let mut out = vec![0u8; 256];
        predict_into(&reference, 32, 32, 0, 0, -3 + 3, 0, 16, &mut out);
        // Zero-displacement prediction equals the reference block itself.
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(out[y * 16 + x], reference[y * 32 + x]);
            }
        }
    }

    #[test]
    fn predict_clamps_at_edges() {
        let reference: Vec<u8> = (0..32 * 32).map(|i| (i % 256) as u8).collect();
        let mut out = vec![0u8; 64];
        // Predict an 8x8 block at the top-left corner displaced off-plane.
        predict_into(&reference, 32, 32, 0, 0, -5, -5, 8, &mut out);
        assert_eq!(out[0], reference[0]);
    }

    #[test]
    fn halfpel_full_positions_match_fullpel() {
        let reference = plane_with_square(7, 8);
        let mut a = vec![0u8; 256];
        let mut b = vec![0u8; 256];
        predict_into(&reference, 32, 32, 0, 0, -3, 2, 16, &mut a);
        predict_halfpel_into(&reference, 32, 32, 0, 0, -6, 4, 16, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn halfpel_interpolates_between_pixels() {
        // A horizontal step edge: the half-pel sample between 20 and 200
        // is their rounding average.
        let mut reference = vec![20u8; 32 * 32];
        for row in reference.chunks_mut(32) {
            for v in &mut row[16..] {
                *v = 200;
            }
        }
        let mut out = vec![0u8; 64];
        // dx2 = 1: sample halfway between columns.
        predict_halfpel_into(&reference, 32, 32, 15, 0, 1, 0, 8, &mut out);
        // Block column 0 = source column 15 + 0.5 → (20 + 200 + 1)/2 = 110.
        assert_eq!(out[0], 110);
    }

    #[test]
    fn halfpel_beats_fullpel_on_half_shift() {
        // Content shifted by exactly half a pixel (simulated by averaging
        // neighbours): the half-pel estimator must find a strictly lower
        // SAD than full-pel.
        let w = 48usize;
        let reference: Vec<u8> = (0..w * w)
            .map(|i| {
                let x = (i % w) as f64;
                (128.0 + 100.0 * (x * 0.2).sin()) as u8
            })
            .collect();
        let cur: Vec<u8> = (0..w * w)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                let a = u32::from(reference[y * w + x]);
                let b = u32::from(reference[y * w + (x + 1).min(w - 1)]);
                ((a + b + 1) / 2) as u8
            })
            .collect();
        let (_, full_sad) = estimate(&cur, &reference, w, w, 1, 1);
        let (hv, half_sad) = estimate_halfpel(&cur, &reference, w, w, 1, 1);
        assert!(half_sad < full_sad, "half {half_sad} vs full {full_sad}");
        assert_eq!(hv.dx2.rem_euclid(2), 1, "expected a half-pel x component: {hv:?}");
    }

    #[test]
    fn halfpel_vector_promotion() {
        let hv = HalfPelVector::from_full_pel(MotionVector { dx: -3, dy: 5 });
        assert_eq!((hv.dx2, hv.dy2), (-6, 10));
    }

    /// A deterministic textured plane (no RNG needed in unit tests).
    fn textured_plane(w: usize, h: usize, seed: u32) -> Vec<u8> {
        (0..w * h)
            .map(|i| {
                let v = (i as u32).wrapping_mul(2654435761).wrapping_add(seed.wrapping_mul(97));
                ((v >> 13) & 0xff) as u8
            })
            .collect()
    }

    #[test]
    fn early_exit_bit_identical_to_exhaustive() {
        let w = 64usize;
        let cur = textured_plane(w, w, 7);
        let mut reference = textured_plane(w, w, 7);
        // Perturb the reference so SADs are non-trivial everywhere.
        for (i, v) in reference.iter_mut().enumerate() {
            *v = v.wrapping_add((i % 23) as u8);
        }
        let seed_sets: [&[MotionVector]; 3] = [
            &[],
            &[MotionVector { dx: 3, dy: -2 }],
            &[MotionVector { dx: -8, dy: 8 }, MotionVector { dx: 1, dy: 0 }],
        ];
        for mby in 0..w / 16 {
            for mbx in 0..w / 16 {
                for seeds in seed_sets {
                    let fast = estimate_seeded(
                        &cur, &reference, w, w, mbx, mby, seeds, SearchMode::EarlyExit,
                    );
                    let slow = estimate_seeded(
                        &cur, &reference, w, w, mbx, mby, seeds, SearchMode::Exhaustive,
                    );
                    assert_eq!(fast, slow, "mb ({mbx},{mby}) seeds {seeds:?}");
                    let hfast = estimate_halfpel_seeded(
                        &cur, &reference, w, w, mbx, mby, seeds, SearchMode::EarlyExit,
                    );
                    let hslow = estimate_halfpel_seeded(
                        &cur, &reference, w, w, mbx, mby, seeds, SearchMode::Exhaustive,
                    );
                    assert_eq!(hfast, hslow, "halfpel mb ({mbx},{mby}) seeds {seeds:?}");
                }
            }
        }
    }

    #[test]
    fn seeded_recovers_out_of_pattern_shift() {
        // A (+7, -5) translation is off the three-step lattice from zero;
        // the unseeded search may land on a local minimum, but a correct
        // seed must pin the true offset with SAD 0.
        let w = 64usize;
        let reference = textured_plane(w, w, 3);
        let mut cur = vec![0u8; w * w];
        let (sx, sy) = (7i32, -5i32);
        for y in 0..w {
            for x in 0..w {
                let rx = (x as i32 - sx).clamp(0, w as i32 - 1) as usize;
                let ry = (y as i32 - sy).clamp(0, w as i32 - 1) as usize;
                cur[y * w + x] = reference[ry * w + rx];
            }
        }
        let seed = [MotionVector { dx: -(sx as i8), dy: -(sy as i8) }];
        let (mv, s) =
            estimate_seeded(&cur, &reference, w, w, 1, 1, &seed, SearchMode::EarlyExit);
        assert_eq!((mv.dx, mv.dy), (-7, 5));
        assert_eq!(s, 0);
    }

    #[test]
    fn sad_bounded_exact_below_limit_and_lower_bound_above() {
        let w = 32usize;
        let cur = textured_plane(w, w, 1);
        let reference = textured_plane(w, w, 2);
        let full = sad(&cur, &reference, w, w, 0, 0, 2, -1, 16);
        assert_eq!(
            sad_bounded(&cur, &reference, w, w, 0, 0, 2, -1, 16, full + 1),
            full,
            "below-limit evaluation must be exact"
        );
        let aborted = sad_bounded(&cur, &reference, w, w, 0, 0, 2, -1, 16, full / 2);
        assert!(aborted >= full / 2, "abort must return a value >= limit");
        assert!(aborted <= full, "abort is a lower bound on the true SAD");
    }

    #[test]
    fn out_of_range_seeds_are_ignored() {
        let p = textured_plane(32, 32, 9);
        let wild = [
            MotionVector { dx: 127, dy: -128 },
            MotionVector { dx: 9, dy: 0 },
            MotionVector { dx: 0, dy: 0 }, // duplicate of the zero start
        ];
        let (mv, s) = estimate_seeded(&p, &p, 32, 32, 0, 0, &wild, SearchMode::EarlyExit);
        assert_eq!(mv, MotionVector::default());
        assert_eq!(s, 0);
    }

    #[test]
    fn row_sad_kernels_match_scalar_oracle() {
        // Exercise the (possibly SIMD) row kernels against a plain scalar
        // evaluation, including saturating extremes and every half-pel
        // phase (the four-tap phase uses different widening arithmetic).
        let mut c = [0u8; 16];
        let mut r0 = [0u8; 17];
        let mut r1 = [0u8; 17];
        let mut state = 0x2453_67A1u32;
        for round in 0..200 {
            for x in 0..17 {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                let v = (state >> 24) as u8;
                // Mix in hard extremes so rounding/saturation edges hit.
                let v = match (round + x) % 7 {
                    0 => 0,
                    1 => 255,
                    _ => v,
                };
                if x < 16 {
                    c[x] = v.rotate_left((round % 8) as u32);
                }
                r0[x] = v;
                r1[x] = v.wrapping_add(round as u8);
            }
            let scalar: u32 =
                c.iter().zip(&r0[..16]).map(|(a, b)| u32::from(a.abs_diff(*b))).sum();
            assert_eq!(row_sad16(&c, &r0[..16]), scalar, "full-pel row, round {round}");
            for (fx, fy) in [(0usize, 0usize), (1, 0), (0, 1), (1, 1)] {
                let oracle: u32 = (0..16)
                    .map(|x| {
                        let p = (u32::from(r0[x])
                            + u32::from(r0[x + fx])
                            + u32::from(r1[x])
                            + u32::from(r1[x + fx])
                            + 2)
                            / 4;
                        let p = match (fx, fy) {
                            (0, 0) => u32::from(r0[x]),
                            (1, 0) => (u32::from(r0[x]) + u32::from(r0[x + 1]) + 1) / 2,
                            (0, 1) => (u32::from(r0[x]) + u32::from(r1[x]) + 1) / 2,
                            _ => p,
                        };
                        u32::from(c[x]).abs_diff(p)
                    })
                    .sum();
                assert_eq!(
                    row_sad16_halfpel(&c, &r0, &r1, fx, fy),
                    oracle,
                    "phase ({fx},{fy}), round {round}"
                );
            }
        }
    }

    #[test]
    fn mc_then_residual_zero_for_pure_translation() {
        let cur = plane_with_square(10, 8);
        let reference = plane_with_square(7, 8);
        let (mv, _) = estimate(&cur, &reference, 32, 32, 0, 0);
        let mut pred = vec![0u8; 256];
        predict_into(&reference, 32, 32, 0, 0, mv.dx.into(), mv.dy.into(), 16, &mut pred);
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(pred[y * 16 + x], cur[y * 32 + x]);
            }
        }
    }
}
