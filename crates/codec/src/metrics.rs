//! Distortion metrics.

use annolight_imgproc::{Frame, Yuv420Frame};

/// Peak signal-to-noise ratio between two RGB frames, in dB, computed over
/// all three channels. Returns `f64::INFINITY` for identical frames.
///
/// # Panics
///
/// Panics if the frames have different dimensions.
pub fn psnr(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "PSNR requires equal dimensions"
    );
    mse_to_psnr(mse(a.as_bytes(), b.as_bytes()))
}

/// PSNR over the luma planes of two 4:2:0 frames, in dB.
///
/// # Panics
///
/// Panics if the frames have different dimensions.
pub fn psnr_luma(a: &Yuv420Frame, b: &Yuv420Frame) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "PSNR requires equal dimensions"
    );
    mse_to_psnr(mse(a.y_plane(), b.y_plane()))
}

fn mse(a: &[u8], b: &[u8]) -> f64 {
    let sum: u64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = i64::from(x) - i64::from(y);
            (d * d) as u64
        })
        .sum();
    sum as f64 / a.len() as f64
}

fn mse_to_psnr(mse: f64) -> f64 {
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_imgproc::Rgb8;

    #[test]
    fn identical_frames_are_infinite() {
        let f = Frame::filled(8, 8, Rgb8::gray(128));
        assert_eq!(psnr(&f, &f), f64::INFINITY);
    }

    #[test]
    fn known_mse_value() {
        // Every byte differs by 5: MSE = 25, PSNR = 10·log10(65025/25).
        let a = Frame::filled(4, 4, Rgb8::gray(100));
        let b = Frame::filled(4, 4, Rgb8::gray(105));
        let expect = 10.0 * (255.0f64 * 255.0 / 25.0).log10();
        assert!((psnr(&a, &b) - expect).abs() < 1e-9);
    }

    #[test]
    fn larger_error_means_lower_psnr() {
        let a = Frame::filled(4, 4, Rgb8::gray(100));
        let b = Frame::filled(4, 4, Rgb8::gray(110));
        let c = Frame::filled(4, 4, Rgb8::gray(160));
        assert!(psnr(&a, &b) > psnr(&a, &c));
    }

    #[test]
    fn luma_psnr_ignores_chroma() {
        let a = Frame::filled(16, 16, Rgb8::new(100, 100, 100)).to_yuv420().unwrap();
        let mut b = a.clone();
        for u in b.u_plane_mut() {
            *u = u.wrapping_add(30);
        }
        assert_eq!(psnr_luma(&a, &b), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn dimension_mismatch_panics() {
        let a = Frame::new(4, 4);
        let b = Frame::new(8, 4);
        let _ = psnr(&a, &b);
    }
}
