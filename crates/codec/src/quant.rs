//! MPEG-style coefficient quantisation.
//!
//! Intra blocks use the MPEG-1 default perceptual matrix (coarser at high
//! frequencies); inter (residual) blocks use a flat matrix, both scaled by
//! a per-picture `qscale` in `1..=31`.

use crate::dct::Block;

/// The MPEG-1 default intra quantisation matrix (zig-zag-free, row-major).
pub const INTRA_MATRIX: [u16; 64] = [
    8, 16, 19, 22, 26, 27, 29, 34,
    16, 16, 22, 24, 27, 29, 34, 37,
    19, 22, 26, 27, 29, 34, 34, 38,
    22, 22, 26, 27, 29, 34, 37, 40,
    22, 26, 27, 29, 32, 35, 40, 48,
    26, 27, 29, 32, 35, 40, 48, 58,
    26, 27, 29, 34, 38, 46, 56, 69,
    27, 29, 35, 38, 46, 56, 69, 83,
];

/// The flat inter (residual) matrix.
pub const INTER_MATRIX: [u16; 64] = [16; 64];

/// Per-picture quantiser scale, `1..=31` (MPEG-1 range). Larger = coarser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QScale(u8);

impl QScale {
    /// Creates a quantiser scale.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ q ≤ 31`.
    pub fn new(q: u8) -> Self {
        assert!((1..=31).contains(&q), "qscale {q} outside 1..=31");
        Self(q)
    }

    /// The raw scale value.
    pub fn value(self) -> u8 {
        self.0
    }
}

impl Default for QScale {
    fn default() -> Self {
        Self(8)
    }
}

/// Quantised coefficients (integer levels).
pub type QBlock = [i16; 64];

/// Quantises a DCT coefficient block.
///
/// The DC coefficient of intra blocks is quantised with a fixed divisor of
/// 8 (as in MPEG-1, where intra DC has its own precision) so that average
/// brightness survives even at coarse scales.
pub fn quantize(coeffs: &Block, matrix: &[u16; 64], qscale: QScale, intra: bool) -> QBlock {
    let mut out = [0i16; 64];
    for i in 0..64 {
        let div = if intra && i == 0 {
            8.0
        } else {
            f32::from(matrix[i]) * f32::from(qscale.value()) / 8.0
        };
        out[i] = (coeffs[i] / div).round().clamp(-2047.0, 2047.0) as i16;
    }
    out
}

/// Reconstructs DCT coefficients from quantised levels.
pub fn dequantize(levels: &QBlock, matrix: &[u16; 64], qscale: QScale, intra: bool) -> Block {
    let mut out = [0.0f32; 64];
    for i in 0..64 {
        let mul = if intra && i == 0 {
            8.0
        } else {
            f32::from(matrix[i]) * f32::from(qscale.value()) / 8.0
        };
        out[i] = f32::from(levels[i]) * mul;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct;

    #[test]
    fn qscale_bounds() {
        assert_eq!(QScale::new(1).value(), 1);
        assert_eq!(QScale::new(31).value(), 31);
    }

    #[test]
    #[should_panic(expected = "outside 1..=31")]
    fn qscale_rejects_zero() {
        QScale::new(0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=31")]
    fn qscale_rejects_32() {
        QScale::new(32);
    }

    #[test]
    fn quant_dequant_bounded_error() {
        let mut coeffs = [0.0f32; 64];
        for (i, v) in coeffs.iter_mut().enumerate() {
            *v = ((i as f32) - 32.0) * 7.3;
        }
        let q = QScale::new(4);
        let levels = quantize(&coeffs, &INTRA_MATRIX, q, true);
        let rec = dequantize(&levels, &INTRA_MATRIX, q, true);
        for i in 0..64 {
            let step = if i == 0 { 8.0 } else { f32::from(INTRA_MATRIX[i]) * 4.0 / 8.0 };
            assert!(
                (coeffs[i] - rec[i]).abs() <= step / 2.0 + 1e-3,
                "coeff {i}: {} vs {} (step {step})",
                coeffs[i],
                rec[i]
            );
        }
    }

    #[test]
    fn zero_block_stays_zero() {
        let levels = quantize(&[0.0; 64], &INTER_MATRIX, QScale::new(16), false);
        assert!(levels.iter().all(|&l| l == 0));
    }

    #[test]
    fn coarser_scale_zeroes_more() {
        let mut coeffs = [0.0f32; 64];
        for (i, v) in coeffs.iter_mut().enumerate() {
            *v = 30.0 / (1.0 + i as f32); // decaying spectrum
        }
        let count = |q: u8| {
            quantize(&coeffs, &INTRA_MATRIX, QScale::new(q), true)
                .iter()
                .filter(|&&l| l != 0)
                .count()
        };
        assert!(count(1) >= count(8));
        assert!(count(8) >= count(31));
    }

    #[test]
    fn dc_preserved_at_coarse_scale() {
        // A flat 8x8 block must keep its average even at qscale 31.
        let block = [60.0f32; 64];
        let coeffs = dct::forward(&block);
        let q = QScale::new(31);
        let levels = quantize(&coeffs, &INTRA_MATRIX, q, true);
        let rec = dct::inverse(&dequantize(&levels, &INTRA_MATRIX, q, true));
        let mean: f32 = rec.iter().sum::<f32>() / 64.0;
        assert!((mean - 60.0).abs() < 4.5, "mean {mean}");
    }

    #[test]
    fn intra_matrix_is_perceptual() {
        // Low frequencies must be quantised more finely than high ones.
        assert!(INTRA_MATRIX[0] < INTRA_MATRIX[63]);
        assert!(INTRA_MATRIX[1] < INTRA_MATRIX[62]);
    }
}
