//! MPEG-style coefficient quantisation.
//!
//! Intra blocks use the MPEG-1 default perceptual matrix (coarser at high
//! frequencies); inter (residual) blocks use a flat matrix, both scaled by
//! a per-picture `qscale` in `1..=31`.
//!
//! Two parallel implementations:
//!
//! * the float [`quantize`]/[`dequantize`] reference pair, operating on
//!   orthonormal DCT coefficients, and
//! * the fused fixed-point [`quantize_aan`]/[`dequantize_aan`] fast pair,
//!   whose [`FusedTables`] fold the AAN per-coefficient scale factors
//!   ([`crate::dct::aan_scale`]) *and* the quantiser step into a single
//!   reciprocal multiply per coefficient (libjpeg/ffmpeg lineage). The
//!   fused dequantiser emits coefficients already in the
//!   [`crate::dct::inverse_aan`] input convention
//!   (`sf(v)·sf(u)/8 · 2^IDCT_FRAC_BITS`), so the inverse transform needs
//!   no per-coefficient multiplies of its own.

use crate::dct::{self, Block, IntBlock};
use std::sync::OnceLock;

/// The MPEG-1 default intra quantisation matrix (zig-zag-free, row-major).
pub const INTRA_MATRIX: [u16; 64] = [
    8, 16, 19, 22, 26, 27, 29, 34,
    16, 16, 22, 24, 27, 29, 34, 37,
    19, 22, 26, 27, 29, 34, 34, 38,
    22, 22, 26, 27, 29, 34, 37, 40,
    22, 26, 27, 29, 32, 35, 40, 48,
    26, 27, 29, 32, 35, 40, 48, 58,
    26, 27, 29, 34, 38, 46, 56, 69,
    27, 29, 35, 38, 46, 56, 69, 83,
];

/// The flat inter (residual) matrix.
pub const INTER_MATRIX: [u16; 64] = [16; 64];

/// Per-picture quantiser scale, `1..=31` (MPEG-1 range). Larger = coarser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QScale(u8);

impl QScale {
    /// Creates a quantiser scale.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ q ≤ 31`.
    pub fn new(q: u8) -> Self {
        assert!((1..=31).contains(&q), "qscale {q} outside 1..=31");
        Self(q)
    }

    /// The raw scale value.
    pub fn value(self) -> u8 {
        self.0
    }
}

impl Default for QScale {
    fn default() -> Self {
        Self(8)
    }
}

/// Quantised coefficients (integer levels).
pub type QBlock = [i16; 64];

/// Quantises a DCT coefficient block.
///
/// The DC coefficient of intra blocks is quantised with a fixed divisor of
/// 8 (as in MPEG-1, where intra DC has its own precision) so that average
/// brightness survives even at coarse scales.
pub fn quantize(coeffs: &Block, matrix: &[u16; 64], qscale: QScale, intra: bool) -> QBlock {
    let mut out = [0i16; 64];
    for i in 0..64 {
        let div = if intra && i == 0 {
            8.0
        } else {
            f32::from(matrix[i]) * f32::from(qscale.value()) / 8.0
        };
        out[i] = (coeffs[i] / div).round().clamp(-2047.0, 2047.0) as i16;
    }
    out
}

/// Reconstructs DCT coefficients from quantised levels.
pub fn dequantize(levels: &QBlock, matrix: &[u16; 64], qscale: QScale, intra: bool) -> Block {
    let mut out = [0.0f32; 64];
    for i in 0..64 {
        let mul = if intra && i == 0 {
            8.0
        } else {
            f32::from(matrix[i]) * f32::from(qscale.value()) / 8.0
        };
        out[i] = f32::from(levels[i]) * mul;
    }
    out
}

// ---------------------------------------------------------------------------
// Fused fixed-point quantisation (AAN fast path).
// ---------------------------------------------------------------------------

/// Fraction bits of the fused quantiser reciprocals.
const RBITS: u32 = 20;
const RHALF: i64 = 1 << (RBITS - 1);

/// Per-`(qscale, intra)` fused tables: one reciprocal multiplier per
/// coefficient on the quantise side, one step multiplier on the dequantise
/// side, both with the AAN scale factors and the forward transform's
/// `2^FWD_EXTRA_BITS` prescale folded in.
#[derive(Debug, Clone)]
pub struct FusedTables {
    /// `round(2^RBITS / div[i])` where
    /// `div[i] = step[i] · 8·sf(v)·sf(u) · 2^FWD_EXTRA_BITS` — dividing an
    /// [`crate::dct::forward_aan`] output by `div` yields the float-path
    /// quantised level.
    quant: [i32; 64],
    /// `round(step[i] · sf(v)·sf(u)/8 · 2^IDCT_FRAC_BITS)` — multiplying a
    /// level by this produces [`crate::dct::inverse_aan`]'s expected input.
    dequant: [i32; 64],
}

impl FusedTables {
    fn build(matrix: &[u16; 64], qscale: QScale, intra: bool) -> Self {
        let mut quant = [0i32; 64];
        let mut dequant = [0i32; 64];
        for i in 0..64 {
            let (r, c) = (i / 8, i % 8);
            let step = if intra && i == 0 {
                8.0
            } else {
                f64::from(matrix[i]) * f64::from(qscale.value()) / 8.0
            };
            let sf = dct::aan_scale(r) * dct::aan_scale(c);
            let div = step * 8.0 * sf * f64::from(1u32 << dct::FWD_EXTRA_BITS);
            quant[i] = (((1u64 << RBITS) as f64) / div).round() as i32;
            dequant[i] = (step * sf / 8.0 * f64::from(1u32 << dct::IDCT_FRAC_BITS)).round() as i32;
        }
        Self { quant, dequant }
    }
}

/// Returns the fused tables for `(qscale, intra)`, built once per process
/// (62 table pairs total) and shared across threads.
pub fn fused_tables(qscale: QScale, intra: bool) -> &'static FusedTables {
    static TABLES: OnceLock<Vec<FusedTables>> = OnceLock::new();
    let all = TABLES.get_or_init(|| {
        let mut v = Vec::with_capacity(62);
        for q in 1..=31u8 {
            let qs = QScale::new(q);
            v.push(FusedTables::build(&INTRA_MATRIX, qs, true));
            v.push(FusedTables::build(&INTER_MATRIX, qs, false));
        }
        v
    });
    &all[usize::from(qscale.value() - 1) * 2 + usize::from(!intra)]
}

/// Quantises an [`crate::dct::forward_aan`] output block with a single
/// reciprocal multiply per coefficient. Round-to-nearest on the magnitude
/// (sign restored afterwards), clamped to the ±2047 level range the
/// entropy coder enforces.
pub fn quantize_aan(coeffs: &IntBlock, tables: &FusedTables) -> QBlock {
    let mut out = [0i16; 64];
    for i in 0..64 {
        let c = coeffs[i];
        let mag = i64::from(c.unsigned_abs());
        let level = ((mag * i64::from(tables.quant[i]) + RHALF) >> RBITS).min(2047) as i16;
        out[i] = if c < 0 { -level } else { level };
    }
    out
}

/// Reconstructs [`crate::dct::inverse_aan`]-convention coefficients from
/// quantised levels: one integer multiply per coefficient, no descale.
pub fn dequantize_aan(levels: &QBlock, tables: &FusedTables) -> IntBlock {
    let mut out = [0i32; 64];
    for i in 0..64 {
        // |level| ≤ 2048 and dequant ≤ ~3.2e5, so the product stays well
        // inside i32; compute in i64 and narrow exactly.
        out[i] = (i64::from(levels[i]) * i64::from(tables.dequant[i])) as i32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct;

    #[test]
    fn qscale_bounds() {
        assert_eq!(QScale::new(1).value(), 1);
        assert_eq!(QScale::new(31).value(), 31);
    }

    #[test]
    #[should_panic(expected = "outside 1..=31")]
    fn qscale_rejects_zero() {
        QScale::new(0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=31")]
    fn qscale_rejects_32() {
        QScale::new(32);
    }

    #[test]
    fn quant_dequant_bounded_error() {
        let mut coeffs = [0.0f32; 64];
        for (i, v) in coeffs.iter_mut().enumerate() {
            *v = ((i as f32) - 32.0) * 7.3;
        }
        let q = QScale::new(4);
        let levels = quantize(&coeffs, &INTRA_MATRIX, q, true);
        let rec = dequantize(&levels, &INTRA_MATRIX, q, true);
        for i in 0..64 {
            let step = if i == 0 { 8.0 } else { f32::from(INTRA_MATRIX[i]) * 4.0 / 8.0 };
            assert!(
                (coeffs[i] - rec[i]).abs() <= step / 2.0 + 1e-3,
                "coeff {i}: {} vs {} (step {step})",
                coeffs[i],
                rec[i]
            );
        }
    }

    #[test]
    fn zero_block_stays_zero() {
        let levels = quantize(&[0.0; 64], &INTER_MATRIX, QScale::new(16), false);
        assert!(levels.iter().all(|&l| l == 0));
    }

    #[test]
    fn coarser_scale_zeroes_more() {
        let mut coeffs = [0.0f32; 64];
        for (i, v) in coeffs.iter_mut().enumerate() {
            *v = 30.0 / (1.0 + i as f32); // decaying spectrum
        }
        let count = |q: u8| {
            quantize(&coeffs, &INTRA_MATRIX, QScale::new(q), true)
                .iter()
                .filter(|&&l| l != 0)
                .count()
        };
        assert!(count(1) >= count(8));
        assert!(count(8) >= count(31));
    }

    #[test]
    fn dc_preserved_at_coarse_scale() {
        // A flat 8x8 block must keep its average even at qscale 31.
        let block = [60.0f32; 64];
        let coeffs = dct::forward_reference(&block);
        let q = QScale::new(31);
        let levels = quantize(&coeffs, &INTRA_MATRIX, q, true);
        let rec = dct::inverse_reference(&dequantize(&levels, &INTRA_MATRIX, q, true));
        let mean: f32 = rec.iter().sum::<f32>() / 64.0;
        assert!((mean - 60.0).abs() < 4.5, "mean {mean}");
    }

    #[test]
    fn intra_matrix_is_perceptual() {
        // Low frequencies must be quantised more finely than high ones.
        assert!(INTRA_MATRIX[0] < INTRA_MATRIX[63]);
        assert!(INTRA_MATRIX[1] < INTRA_MATRIX[62]);
    }

    #[test]
    fn fused_tables_are_cached_and_exact_for_dc() {
        let a = fused_tables(QScale::new(8), true);
        let b = fused_tables(QScale::new(8), true);
        assert!(std::ptr::eq(a, b), "same qscale must share one table");
        // Intra DC: div = 8·8·1·1·4 = 256, recip = 2^20/256 = 4096; the
        // dequant multiplier is 8·1/8·2^12 = 4096 — both exact.
        assert_eq!(a.quant[0], 4096);
        assert_eq!(a.dequant[0], 4096);
        let inter = fused_tables(QScale::new(8), false);
        assert!(!std::ptr::eq(a, inter));
    }

    #[test]
    fn fused_quant_matches_float_path() {
        // Quantising an AAN-scaled block through the fused reciprocals must
        // land on the same levels the float reference produces from the
        // orthonormal coefficients (up to rare off-by-one at ties).
        let mut spatial = [0.0f32; 64];
        for (i, v) in spatial.iter_mut().enumerate() {
            *v = ((i as i32 * 29 % 255) - 128) as f32;
        }
        let mut ib = [0i32; 64];
        for i in 0..64 {
            ib[i] = spatial[i] as i32;
        }
        for (q, intra) in [(2u8, true), (8, true), (24, true), (8, false), (31, false)] {
            let qs = QScale::new(q);
            let matrix = if intra { &INTRA_MATRIX } else { &INTER_MATRIX };
            let float_levels = quantize(&dct::forward_reference(&spatial), matrix, qs, intra);
            let fused_levels = quantize_aan(&dct::forward_aan(&ib), fused_tables(qs, intra));
            let mut mismatches = 0;
            for i in 0..64 {
                let d = (i32::from(float_levels[i]) - i32::from(fused_levels[i])).abs();
                assert!(d <= 1, "q{q} intra={intra} coeff {i}: {} vs {}",
                    float_levels[i], fused_levels[i]);
                mismatches += usize::from(d != 0);
            }
            assert!(mismatches <= 6, "q{q} intra={intra}: {mismatches} off-by-one levels");
        }
    }

    #[test]
    fn fused_dequant_matches_float_path_descaled() {
        let mut levels = [0i16; 64];
        for (i, l) in levels.iter_mut().enumerate() {
            *l = ((i as i32 * 13 % 41) - 20) as i16;
        }
        for (q, intra) in [(1u8, true), (8, true), (31, false)] {
            let qs = QScale::new(q);
            let matrix = if intra { &INTRA_MATRIX } else { &INTER_MATRIX };
            let float_coeffs = dequantize(&levels, matrix, qs, intra);
            let fused = dequantize_aan(&levels, fused_tables(qs, intra));
            for i in 0..64 {
                let (r, c) = (i / 8, i % 8);
                let s = dct::aan_scale(r) * dct::aan_scale(c) / 8.0
                    * f64::from(1u32 << dct::IDCT_FRAC_BITS);
                let descaled = f64::from(fused[i]) / s;
                let err = (descaled - f64::from(float_coeffs[i])).abs();
                // Table rounding bounds the error at ±|level|/2 table LSBs.
                let tol = 0.51 * f64::from(levels[i].unsigned_abs()).max(1.0) / s + 1e-6;
                assert!(err <= tol,
                    "q{q} intra={intra} coeff {i}: {descaled} vs {} (tol {tol})",
                    float_coeffs[i]);
            }
        }
    }

    #[test]
    fn quantize_aan_clamps_extremes() {
        let t = fused_tables(QScale::new(1), false);
        let big = [i32::MAX; 64];
        let lo = [i32::MIN; 64];
        let hi = quantize_aan(&big, t);
        let lv = quantize_aan(&lo, t);
        assert!(hi.iter().all(|&l| l == 2047));
        assert!(lv.iter().all(|&l| l == -2047));
    }
}
