//! I- and P-picture coding.
//!
//! Pictures are coded macroblock by macroblock (16×16 luma + two 8×8
//! chroma blocks in 4:2:0). Intra macroblocks level-shift and DCT the
//! samples directly; inter macroblocks code the residual against a
//! motion-compensated prediction from the previous reconstructed picture.
//! The encoder reconstructs exactly what the decoder will, so there is no
//! drift across a GOP.
//!
//! # Fast path and parallel stage split
//!
//! Each picture is processed in two stages:
//!
//! 1. **Compute** (parallel): per macroblock *band* ([`BAND_MB_ROWS`]
//!    rows), DCT/quantisation (and on P pictures, motion search and
//!    compensation) produce quantised levels plus reconstruction strips.
//!    Bands are self-contained — motion-vector predictors (left, and up
//!    *within the band*) never cross a band boundary, so the result is
//!    identical for every worker count and chunking. Fan-out goes through
//!    [`annolight_core::parallel::chunked_map`]; `workers == 0` is the
//!    inline serial reference.
//! 2. **Entropy** (serial): Exp-Golomb coding and the intra-DC prediction
//!    chain, which is inherently sequential (every bit position depends on
//!    all previous symbols), runs over the precomputed levels in raster
//!    order.
//!
//! The decoder mirrors the split: a serial *parse* pass (bit I/O + DC
//! chain) recovers per-macroblock levels, then a parallel *reconstruction*
//! pass runs dequantisation, the inverse DCT and motion compensation per
//! band.
//!
//! Kernels come in two flavours selected by
//! [`CodecOptions::reference_kernels`]: the canonical fixed-point AAN path
//! ([`crate::dct::forward_aan`] with fused tables) and the retained float
//! matrix reference. Encoder reconstruction and decoder always run the
//! *same* kernels, so encode→decode round-trip identity holds for both.

use crate::bitio::{BitReader, BitWriter};
use crate::dct::{self, IntBlock};
use crate::error::CodecError;
use crate::motion::{self, HalfPelVector, MotionVector, SearchMode};
use crate::quant::{
    dequantize, dequantize_aan, fused_tables, quantize, quantize_aan, FusedTables, QBlock, QScale,
    INTER_MATRIX, INTRA_MATRIX,
};
use crate::zigzag::{decode_block, encode_block};
use annolight_core::parallel::{chunked_map, ParallelConfig};
use annolight_imgproc::Yuv420Frame;

/// Macroblock rows per compute band. Motion predictors are band-local, so
/// this fixed constant (not the chunk size) is what guarantees identical
/// bitstreams across worker counts.
pub const BAND_MB_ROWS: usize = 2;

/// Per-picture coding options: intra-picture parallelism, motion search
/// mode, and kernel selection.
#[derive(Debug, Clone, Copy, Default)]
pub struct CodecOptions {
    /// Band fan-out configuration (`workers == 0` = inline serial).
    pub parallel: ParallelConfig,
    /// Motion SAD evaluation mode (early-exit vs exhaustive — both return
    /// bit-identical vectors; see [`crate::motion`]).
    pub search: SearchMode,
    /// Run the retained reference implementations end to end: float
    /// matrix DCT/quant kernels, bit-at-a-time entropy I/O and per-pixel
    /// clamped motion compensation — the codec exactly as it shipped
    /// before the fast path (combine with [`SearchMode::Exhaustive`] for
    /// the full pre-fast-path search too). Encode and decode must agree
    /// on this flag for reconstructions to match the encoder.
    pub reference_kernels: bool,
}

/// The outcome of encoding one picture: the payload bytes and the
/// decoder-identical reconstruction to predict the next picture from.
#[derive(Debug, Clone)]
pub struct CodedPicture {
    /// Entropy-coded payload (starts with the qscale byte).
    pub bytes: Vec<u8>,
    /// The picture exactly as the decoder will reconstruct it.
    pub reconstruction: Yuv420Frame,
}

struct PlaneDims {
    w: usize,
    h: usize,
}

fn plane_dims(frame: &Yuv420Frame) -> (PlaneDims, PlaneDims) {
    let luma = PlaneDims { w: frame.width() as usize, h: frame.height() as usize };
    let chroma = PlaneDims { w: luma.w / 2, h: luma.h / 2 };
    (luma, chroma)
}

// ---------------------------------------------------------------------------
// Block kernels (fast fixed-point AAN path + float reference path).
// ---------------------------------------------------------------------------

/// Kernel dispatch for one picture: qscale-bound fused tables plus the
/// reference/fast selector.
struct Kernels {
    qscale: QScale,
    reference: bool,
    intra_t: &'static FusedTables,
    inter_t: &'static FusedTables,
}

impl Kernels {
    fn new(qscale: QScale, reference: bool) -> Self {
        Self {
            qscale,
            reference,
            intra_t: fused_tables(qscale, true),
            inter_t: fused_tables(qscale, false),
        }
    }

    /// Forward transform + quantise one level-shifted intra block.
    fn intra_levels(&self, src: &IntBlock) -> QBlock {
        if self.reference {
            let mut f = [0.0f32; 64];
            for i in 0..64 {
                f[i] = src[i] as f32;
            }
            quantize(&dct::forward_reference(&f), &INTRA_MATRIX, self.qscale, true)
        } else {
            quantize_aan(&dct::forward_aan(src), self.intra_t)
        }
    }

    /// Dequantise + inverse transform one intra block back to `u8`
    /// samples (undoing the −128 level shift). This is the *decoder*
    /// kernel; the encoder reconstruction calls it too.
    fn intra_recon(&self, levels: &QBlock) -> [u8; 64] {
        let mut out = [0u8; 64];
        if self.reference {
            let rec = dct::inverse_reference(&dequantize(levels, &INTRA_MATRIX, self.qscale, true));
            for i in 0..64 {
                out[i] = (rec[i] + 128.0).round().clamp(0.0, 255.0) as u8;
            }
        } else {
            let rec = dct::inverse_aan(&dequantize_aan(levels, self.intra_t));
            for i in 0..64 {
                out[i] = (rec[i] + 128).clamp(0, 255) as u8;
            }
        }
        out
    }

    /// Forward transform + quantise one residual block (no level shift).
    fn residual_levels(&self, residual: &IntBlock) -> QBlock {
        if self.reference {
            let mut f = [0.0f32; 64];
            for i in 0..64 {
                f[i] = residual[i] as f32;
            }
            quantize(&dct::forward_reference(&f), &INTER_MATRIX, self.qscale, false)
        } else {
            // Zero-residual shortcut (exact): the DCT is linear, so an
            // all-zero residual transforms to all-zero coefficients, and
            // both quantisers map 0 to 0. Perfectly predicted blocks —
            // the common case on static content — skip the transform.
            if residual.iter().all(|&v| v == 0) {
                return [0i16; 64];
            }
            quantize_aan(&dct::forward_aan(residual), self.inter_t)
        }
    }

    /// Dequantise + inverse transform a residual and add it onto the
    /// prediction at `(ox, oy)` in `pred` (stride `pred_stride`).
    fn residual_recon(
        &self,
        levels: &QBlock,
        pred: &[u8],
        pred_stride: usize,
        ox: usize,
        oy: usize,
    ) -> [u8; 64] {
        let mut out = [0u8; 64];
        if self.reference {
            let rec = dct::inverse_reference(&dequantize(levels, &INTER_MATRIX, self.qscale, false));
            for y in 0..8 {
                for x in 0..8 {
                    let p = f32::from(pred[(oy + y) * pred_stride + ox + x]);
                    out[y * 8 + x] = (p + rec[y * 8 + x]).round().clamp(0.0, 255.0) as u8;
                }
            }
        } else {
            // Zero-level shortcut (exact, mirroring `residual_levels`):
            // both dequantisers map 0 to 0 and both inverse transforms
            // map the zero block to zero samples (the fixed-point iDCT
            // rounds `(0 + half) >> FRAC` to 0), so the reconstruction
            // is the prediction verbatim.
            if levels.iter().all(|&v| v == 0) {
                for y in 0..8 {
                    let row = &pred[(oy + y) * pred_stride + ox..][..8];
                    out[y * 8..y * 8 + 8].copy_from_slice(row);
                }
                return out;
            }
            let rec = dct::inverse_aan(&dequantize_aan(levels, self.inter_t));
            for y in 0..8 {
                for x in 0..8 {
                    let p = i32::from(pred[(oy + y) * pred_stride + ox + x]);
                    out[y * 8 + x] = (p + rec[y * 8 + x]).clamp(0, 255) as u8;
                }
            }
        }
        out
    }
}

/// Loads an 8×8 block at pixel `(px, py)` with the −128 intra level shift.
fn extract_shifted(plane: &[u8], stride: usize, px: usize, py: usize) -> IntBlock {
    let mut out = [0i32; 64];
    for y in 0..8 {
        let row = &plane[(py + y) * stride + px..];
        for x in 0..8 {
            out[y * 8 + x] = i32::from(row[x]) - 128;
        }
    }
    out
}

/// Loads the residual of the 8×8 source block at `(px, py)` against the
/// prediction at `(ox, oy)` in `pred`.
#[allow(clippy::too_many_arguments)]
fn extract_residual(
    src: &[u8],
    stride: usize,
    px: usize,
    py: usize,
    pred: &[u8],
    pred_stride: usize,
    ox: usize,
    oy: usize,
) -> IntBlock {
    let mut out = [0i32; 64];
    for y in 0..8 {
        for x in 0..8 {
            out[y * 8 + x] = i32::from(src[(py + y) * stride + px + x])
                - i32::from(pred[(oy + y) * pred_stride + ox + x]);
        }
    }
    out
}

/// Motion-compensated prediction dispatch: the fast path uses the
/// interior-specialised interpolator, the reference path the retained
/// per-pixel clamped sampler. Identical output bytes either way.
#[allow(clippy::too_many_arguments)]
fn predict_mc(
    reference_path: bool,
    plane: &[u8],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    dx2: i32,
    dy2: i32,
    size: usize,
    out: &mut [u8],
) {
    if reference_path {
        motion::predict_halfpel_into_reference(plane, width, height, cx, cy, dx2, dy2, size, out);
    } else {
        motion::predict_halfpel_into(plane, width, height, cx, cy, dx2, dy2, size, out);
    }
}

/// Copies an 8×8 sample block into `dst` at pixel `(px, py)`.
fn blit8(dst: &mut [u8], stride: usize, px: usize, py: usize, block: &[u8; 64]) {
    for y in 0..8 {
        dst[(py + y) * stride + px..(py + y) * stride + px + 8]
            .copy_from_slice(&block[y * 8..y * 8 + 8]);
    }
}

// ---------------------------------------------------------------------------
// Band structures.
// ---------------------------------------------------------------------------

/// How one macroblock was coded.
#[derive(Debug, Clone, Copy)]
enum MbMode {
    /// All six blocks intra-coded.
    Intra,
    /// Motion-compensated with this half-pel vector; blocks are residuals.
    Inter(HalfPelVector),
}

/// One macroblock's compute-stage output: mode plus the six quantised
/// blocks (4 luma, U, V). Intra DC is stored *absolute*; the serial
/// entropy stage applies the prediction chain.
#[derive(Debug)]
struct MbOut {
    mode: MbMode,
    blocks: [QBlock; 6],
}

/// Output sink for one macroblock row of reconstruction: the destination
/// planes (either a band's strip buffers or a full frame's planes) plus
/// the first macroblock row those planes cover.
struct RowSink<'a> {
    y: &'a mut [u8],
    u: &'a mut [u8],
    v: &'a mut [u8],
    /// Macroblock row that `y[0..]` / `u[0..]` / `v[0..]` start at.
    mb_row0: usize,
}

/// Reusable per-codec working memory for the `*_into` entry points:
/// quantised macroblock levels, the motion-predictor rows and the
/// entropy writer's output buffer all persist across pictures, so a
/// steady-state encode/decode loop performs no per-picture allocations.
#[derive(Debug, Default)]
pub(crate) struct CodecScratch {
    mbs: Vec<MbOut>,
    up_mvs: Vec<Option<MotionVector>>,
    cur_mvs: Vec<Option<MotionVector>>,
    /// Encoded payload of the last picture (qscale byte + entropy bits);
    /// doubles as the recycled [`BitWriter`] buffer.
    pub(crate) payload: Vec<u8>,
}

/// One band's compute-stage output: macroblocks in raster order plus the
/// reconstruction strips covering the band's rows.
struct BandOut {
    mbs: Vec<MbOut>,
    y: Vec<u8>,
    u: Vec<u8>,
    v: Vec<u8>,
}

fn band_count(mbs_y: usize) -> usize {
    mbs_y.div_ceil(BAND_MB_ROWS)
}

fn band_rows(band: usize, mbs_y: usize) -> std::ops::Range<usize> {
    band * BAND_MB_ROWS..((band + 1) * BAND_MB_ROWS).min(mbs_y)
}

/// Maps `compute` over all bands through [`chunked_map`] (one band per
/// chunk; the band structure, not the chunking, carries the determinism).
fn map_bands<F>(mbs_y: usize, parallel: &ParallelConfig, compute: F) -> Vec<BandOut>
where
    F: Fn(usize) -> BandOut + Sync,
{
    let cfg = parallel.with_chunk_frames(1);
    chunked_map(band_count(mbs_y), &cfg, |range| range.map(&compute).collect::<Vec<_>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Copies band reconstruction strips back into a full frame.
fn stitch_bands(bands: &[BandOut], recon: &mut Yuv420Frame, mbs_y: usize) {
    let (luma, chroma) = plane_dims(recon);
    for (b, band) in bands.iter().enumerate() {
        let rows = band_rows(b, mbs_y);
        let y0 = rows.start * 16;
        let c0 = rows.start * 8;
        recon.y_plane_mut()[y0 * luma.w..y0 * luma.w + band.y.len()].copy_from_slice(&band.y);
        recon.u_plane_mut()[c0 * chroma.w..c0 * chroma.w + band.u.len()].copy_from_slice(&band.u);
        recon.v_plane_mut()[c0 * chroma.w..c0 * chroma.w + band.v.len()].copy_from_slice(&band.v);
    }
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

/// Encodes an intra (I) picture with default (serial, fast-path) options.
pub fn encode_intra(frame: &Yuv420Frame, qscale: QScale) -> CodedPicture {
    encode_intra_opts(frame, qscale, &CodecOptions::default())
}

/// Encodes an intra (I) picture.
pub fn encode_intra_opts(frame: &Yuv420Frame, qscale: QScale, opts: &CodecOptions) -> CodedPicture {
    encode_picture(frame, None, qscale, opts)
}

/// Encodes a predicted (P) picture against `reference` (the previous
/// reconstruction) with default options.
///
/// # Panics
///
/// Panics if the frames have different dimensions.
pub fn encode_inter(frame: &Yuv420Frame, reference: &Yuv420Frame, qscale: QScale) -> CodedPicture {
    encode_inter_opts(frame, reference, qscale, &CodecOptions::default())
}

/// Encodes a predicted (P) picture against `reference`.
///
/// # Panics
///
/// Panics if the frames have different dimensions.
pub fn encode_inter_opts(
    frame: &Yuv420Frame,
    reference: &Yuv420Frame,
    qscale: QScale,
    opts: &CodecOptions,
) -> CodedPicture {
    assert_eq!(
        (frame.width(), frame.height()),
        (reference.width(), reference.height()),
        "reference dimensions must match"
    );
    encode_picture(frame, Some(reference), qscale, opts)
}

fn encode_picture(
    frame: &Yuv420Frame,
    reference: Option<&Yuv420Frame>,
    qscale: QScale,
    opts: &CodecOptions,
) -> CodedPicture {
    let mut scratch = CodecScratch::default();
    let mut recon = Yuv420Frame::new(frame.width(), frame.height())
        .expect("source frame dimensions are valid");
    encode_picture_into(frame, reference, qscale, opts, &mut scratch, &mut recon);
    CodedPicture { bytes: scratch.payload, reconstruction: recon }
}

/// Encodes one picture into caller-owned buffers: the reconstruction into
/// `recon` and the payload into `scratch.payload`. Byte-identical to
/// [`encode_intra_opts`] / [`encode_inter_opts`] for every configuration.
///
/// Serial configurations (`workers <= 1`, where the band fan-out would
/// run inline anyway) take a direct-write path: macroblock rows write
/// straight into `recon`'s planes, with the motion-predictor rows reset
/// at every [`BAND_MB_ROWS`] boundary — the invariant that keeps the
/// bitstream identical to the banded path without allocating band strips.
///
/// # Panics
///
/// Panics if `reference` or `recon` dimensions don't match `frame`.
pub(crate) fn encode_picture_into(
    frame: &Yuv420Frame,
    reference: Option<&Yuv420Frame>,
    qscale: QScale,
    opts: &CodecOptions,
    scratch: &mut CodecScratch,
    recon: &mut Yuv420Frame,
) {
    if let Some(r) = reference {
        assert_eq!(
            (frame.width(), frame.height()),
            (r.width(), r.height()),
            "reference dimensions must match"
        );
    }
    assert_eq!(
        (frame.width(), frame.height()),
        (recon.width(), recon.height()),
        "reconstruction dimensions must match"
    );
    let (luma, chroma) = plane_dims(frame);
    let mbs_x = luma.w / 16;
    let mbs_y = luma.h / 16;
    let kernels = Kernels::new(qscale, opts.reference_kernels);
    let intra_picture = reference.is_none();

    // Recycled entropy writer: the first (byte-aligned) write emits
    // exactly the leading qscale byte the payload format starts with.
    // Reserve roughly a quarter of the luma plane: comfortably above a
    // typical coded picture, so the buffer regrows at most once ever.
    let mut payload = std::mem::take(&mut scratch.payload);
    payload.reserve(luma.w * luma.h / 4 + 64);
    let mut w = if opts.reference_kernels {
        BitWriter::from_vec_reference(payload)
    } else {
        BitWriter::from_vec(payload)
    };
    w.put_bits(u32::from(qscale.value()), 8);

    scratch.mbs.clear();
    if opts.parallel.workers <= 1 {
        scratch.up_mvs.clear();
        scratch.up_mvs.resize(mbs_x, None);
        scratch.cur_mvs.clear();
        scratch.cur_mvs.resize(mbs_x, None);
        let (py, pu, pv) = recon.planes_mut();
        let mut sink = RowSink { y: py, u: pu, v: pv, mb_row0: 0 };
        for mby in 0..mbs_y {
            if mby % BAND_MB_ROWS == 0 {
                scratch.up_mvs.fill(None);
            }
            scratch.cur_mvs.fill(None);
            encode_mb_row(
                mby,
                frame,
                reference,
                &kernels,
                opts.search,
                &luma,
                &chroma,
                mbs_x,
                &scratch.up_mvs,
                &mut scratch.cur_mvs,
                &mut sink,
                &mut scratch.mbs,
            );
            std::mem::swap(&mut scratch.up_mvs, &mut scratch.cur_mvs);
        }
        write_entropy(&mut w, scratch.mbs.iter(), intra_picture);
    } else {
        let bands = map_bands(mbs_y, &opts.parallel, |b| {
            encode_band(b, frame, reference, &kernels, opts.search, &luma, &chroma, mbs_x, mbs_y)
        });
        stitch_bands(&bands, recon, mbs_y);
        write_entropy(&mut w, bands.iter().flat_map(|b| b.mbs.iter()), intra_picture);
    }
    scratch.payload = w.into_bytes();
}

/// Serial entropy stage: Exp-Golomb coding plus the intra-DC prediction
/// chain over precomputed macroblock levels, in raster order. Inherently
/// sequential — every bit position depends on all previous symbols.
fn write_entropy<'a>(w: &mut BitWriter, mbs: impl Iterator<Item = &'a MbOut>, intra_picture: bool) {
    let mut dc = [0i16; 3];
    for mb in mbs {
        if intra_picture {
            for blk in &mb.blocks[..4] {
                dc[0] = encode_block(w, blk, dc[0]);
            }
            dc[1] = encode_block(w, &mb.blocks[4], dc[1]);
            dc[2] = encode_block(w, &mb.blocks[5], dc[2]);
        } else {
            match mb.mode {
                MbMode::Inter(mv) => {
                    w.put_bit(true);
                    w.put_se(i32::from(mv.dx2));
                    w.put_se(i32::from(mv.dy2));
                    for blk in &mb.blocks {
                        encode_block(w, blk, 0);
                    }
                }
                MbMode::Intra => {
                    // Intra refresh macroblock (DC predictor reset to 0).
                    w.put_bit(false);
                    for blk in &mb.blocks {
                        encode_block(w, blk, 0);
                    }
                }
            }
        }
    }
}

/// Compute stage for one band of an I or P picture.
#[allow(clippy::too_many_arguments)]
fn encode_band(
    band: usize,
    frame: &Yuv420Frame,
    reference: Option<&Yuv420Frame>,
    kernels: &Kernels,
    search: SearchMode,
    luma: &PlaneDims,
    chroma: &PlaneDims,
    mbs_x: usize,
    mbs_y: usize,
) -> BandOut {
    let rows = band_rows(band, mbs_y);
    let n_rows = rows.len();
    let mut out = BandOut {
        mbs: Vec::with_capacity(n_rows * mbs_x),
        y: vec![0u8; n_rows * 16 * luma.w],
        u: vec![0u8; n_rows * 8 * chroma.w],
        v: vec![0u8; n_rows * 8 * chroma.w],
    };
    // Band-local motion predictors: `up_mvs` holds the previous row's
    // vectors (within this band only).
    let mut up_mvs: Vec<Option<MotionVector>> = vec![None; mbs_x];
    let mut cur_mvs: Vec<Option<MotionVector>> = vec![None; mbs_x];
    let mb_row0 = rows.start;
    for mby in rows {
        cur_mvs.fill(None);
        let mut sink = RowSink { y: &mut out.y, u: &mut out.u, v: &mut out.v, mb_row0 };
        encode_mb_row(
            mby,
            frame,
            reference,
            kernels,
            search,
            luma,
            chroma,
            mbs_x,
            &up_mvs,
            &mut cur_mvs,
            &mut sink,
            &mut out.mbs,
        );
        std::mem::swap(&mut up_mvs, &mut cur_mvs);
    }
    out
}

/// Encodes one macroblock row: mode decisions, transforms and
/// reconstruction writes into `sink`; quantised levels appended to `mbs`.
///
/// `up_mvs` carries the predictor row above (all-`None` at a band
/// boundary), `cur_mvs` receives this row's vectors, and `left` is
/// row-local. Shared verbatim by the banded parallel path and the serial
/// direct-write path, which is what makes their bitstreams identical by
/// construction.
#[allow(clippy::too_many_arguments)]
fn encode_mb_row(
    mby: usize,
    frame: &Yuv420Frame,
    reference: Option<&Yuv420Frame>,
    kernels: &Kernels,
    search: SearchMode,
    luma: &PlaneDims,
    chroma: &PlaneDims,
    mbs_x: usize,
    up_mvs: &[Option<MotionVector>],
    cur_mvs: &mut [Option<MotionVector>],
    sink: &mut RowSink<'_>,
    mbs: &mut Vec<MbOut>,
) {
    let local = mby - sink.mb_row0;
    let mut left: Option<MotionVector> = None;
    for mbx in 0..mbs_x {
        let mode = match reference {
            None => MbMode::Intra,
            Some(r) => {
                let mut seeds = [MotionVector::default(); 2];
                let mut n = 0;
                if let Some(mv) = left {
                    seeds[n] = mv;
                    n += 1;
                }
                if let Some(mv) = up_mvs[mbx] {
                    seeds[n] = mv;
                    n += 1;
                }
                let (mv, mc_sad) = motion::estimate_halfpel_seeded(
                    frame.y_plane(),
                    r.y_plane(),
                    luma.w,
                    luma.h,
                    mbx,
                    mby,
                    &seeds[..n],
                    search,
                );
                // Intra/inter decision: compare the MC residual energy
                // with the deviation from the block mean (a cheap
                // intra-cost proxy). The fast path computes the exact
                // same value with SAD row kernels; the reference path
                // keeps the retained per-pixel loop.
                let intra_cost = if kernels.reference {
                    mean_deviation(frame.y_plane(), luma.w, mbx * 16, mby * 16, 16)
                } else {
                    motion::mean_deviation16(frame.y_plane(), luma.w, mbx * 16, mby * 16)
                };
                if mc_sad < intra_cost { MbMode::Inter(mv) } else { MbMode::Intra }
            }
        };
        let mut blocks = [[0i16; 64]; 6];
        match mode {
            MbMode::Intra => {
                for (k, (by, bx)) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)]
                    .into_iter()
                    .enumerate()
                {
                    let src = extract_shifted(
                        frame.y_plane(),
                        luma.w,
                        mbx * 16 + bx * 8,
                        mby * 16 + by * 8,
                    );
                    blocks[k] = kernels.intra_levels(&src);
                    let rec = kernels.intra_recon(&blocks[k]);
                    blit8(sink.y, luma.w, mbx * 16 + bx * 8, local * 16 + by * 8, &rec);
                }
                for (k, (plane, strip)) in [
                    (frame.u_plane(), &mut *sink.u),
                    (frame.v_plane(), &mut *sink.v),
                ]
                .into_iter()
                .enumerate()
                {
                    let src = extract_shifted(plane, chroma.w, mbx * 8, mby * 8);
                    blocks[4 + k] = kernels.intra_levels(&src);
                    let rec = kernels.intra_recon(&blocks[4 + k]);
                    blit8(strip, chroma.w, mbx * 8, local * 8, &rec);
                }
                left = None;
                cur_mvs[mbx] = None;
            }
            MbMode::Inter(mv) => {
                let r = reference.expect("inter mode implies a reference");
                let mut pred = [0u8; 256];
                predict_mc(
                    kernels.reference,
                    r.y_plane(),
                    luma.w,
                    luma.h,
                    mbx * 16,
                    mby * 16,
                    mv.dx2.into(),
                    mv.dy2.into(),
                    16,
                    &mut pred,
                );
                for (k, (by, bx)) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)]
                    .into_iter()
                    .enumerate()
                {
                    let res = extract_residual(
                        frame.y_plane(),
                        luma.w,
                        mbx * 16 + bx * 8,
                        mby * 16 + by * 8,
                        &pred,
                        16,
                        bx * 8,
                        by * 8,
                    );
                    blocks[k] = kernels.residual_levels(&res);
                    let rec = kernels.residual_recon(&blocks[k], &pred, 16, bx * 8, by * 8);
                    blit8(sink.y, luma.w, mbx * 16 + bx * 8, local * 16 + by * 8, &rec);
                }
                // Chroma: halved vector (luma half-pels → chroma half-pels).
                let (cdx2, cdy2) = (i32::from(mv.dx2) / 2, i32::from(mv.dy2) / 2);
                let mut cpred = [0u8; 64];
                for (k, (plane, strip)) in [
                    (frame.u_plane(), &mut *sink.u),
                    (frame.v_plane(), &mut *sink.v),
                ]
                .into_iter()
                .enumerate()
                {
                    let r_plane = if k == 0 { r.u_plane() } else { r.v_plane() };
                    predict_mc(
                        kernels.reference, r_plane, chroma.w, chroma.h, mbx * 8, mby * 8,
                        cdx2, cdy2, 8, &mut cpred,
                    );
                    let res = extract_residual(
                        plane, chroma.w, mbx * 8, mby * 8, &cpred, 8, 0, 0,
                    );
                    blocks[4 + k] = kernels.residual_levels(&res);
                    let rec = kernels.residual_recon(&blocks[4 + k], &cpred, 8, 0, 0);
                    blit8(strip, chroma.w, mbx * 8, local * 8, &rec);
                }
                let fp = MotionVector { dx: (mv.dx2 / 2) as i8, dy: (mv.dy2 / 2) as i8 };
                left = Some(fp);
                cur_mvs[mbx] = Some(fp);
            }
        }
        mbs.push(MbOut { mode, blocks });
    }
}

fn mean_deviation(plane: &[u8], stride: usize, px: usize, py: usize, size: usize) -> u32 {
    let mut sum = 0u32;
    for y in 0..size {
        for x in 0..size {
            sum += u32::from(plane[(py + y) * stride + px + x]);
        }
    }
    let mean = (sum / (size * size) as u32) as i32;
    let mut dev = 0u32;
    for y in 0..size {
        for x in 0..size {
            dev += (i32::from(plane[(py + y) * stride + px + x]) - mean).unsigned_abs();
        }
    }
    dev
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

/// Decodes an intra (I) picture payload with default options.
///
/// # Errors
///
/// Returns [`CodecError`] for malformed payloads or bad dimensions.
pub fn decode_intra(bytes: &[u8], width: u32, height: u32) -> Result<Yuv420Frame, CodecError> {
    decode_intra_opts(bytes, width, height, &CodecOptions::default())
}

/// Decodes an intra (I) picture payload.
///
/// # Errors
///
/// Returns [`CodecError`] for malformed payloads or bad dimensions.
pub fn decode_intra_opts(
    bytes: &[u8],
    width: u32,
    height: u32,
    opts: &CodecOptions,
) -> Result<Yuv420Frame, CodecError> {
    let mut frame = Yuv420Frame::new(width, height)
        .map_err(|e| CodecError::Malformed { reason: e.to_string() })?;
    decode_picture(bytes, None, &mut frame, opts)?;
    Ok(frame)
}

/// Decodes a predicted (P) picture payload against `reference` with
/// default options.
///
/// # Errors
///
/// Returns [`CodecError`] for malformed payloads.
pub fn decode_inter(bytes: &[u8], reference: &Yuv420Frame) -> Result<Yuv420Frame, CodecError> {
    decode_inter_opts(bytes, reference, &CodecOptions::default())
}

/// Decodes a predicted (P) picture payload against `reference`.
///
/// # Errors
///
/// Returns [`CodecError`] for malformed payloads.
pub fn decode_inter_opts(
    bytes: &[u8],
    reference: &Yuv420Frame,
    opts: &CodecOptions,
) -> Result<Yuv420Frame, CodecError> {
    let mut frame = Yuv420Frame::new(reference.width(), reference.height())
        .map_err(|e| CodecError::Malformed { reason: e.to_string() })?;
    decode_picture(bytes, Some(reference), &mut frame, opts)?;
    Ok(frame)
}

fn decode_picture(
    bytes: &[u8],
    reference: Option<&Yuv420Frame>,
    frame: &mut Yuv420Frame,
    opts: &CodecOptions,
) -> Result<(), CodecError> {
    let mut scratch = CodecScratch::default();
    decode_picture_into(bytes, reference, frame, opts, &mut scratch)
}

/// Decodes one picture into `frame`, reusing `scratch`'s parsed-level
/// storage across calls. Byte-identical to [`decode_intra_opts`] /
/// [`decode_inter_opts`] for every configuration; serial configurations
/// (`workers <= 1`) reconstruct straight into `frame`'s planes with no
/// band strips.
pub(crate) fn decode_picture_into(
    bytes: &[u8],
    reference: Option<&Yuv420Frame>,
    frame: &mut Yuv420Frame,
    opts: &CodecOptions,
    scratch: &mut CodecScratch,
) -> Result<(), CodecError> {
    let (qscale, mut r) = split_payload(bytes, opts.reference_kernels)?;
    let (luma, chroma) = plane_dims(frame);
    let mbs_x = luma.w / 16;
    let mbs_y = luma.h / 16;
    let kernels = Kernels::new(qscale, opts.reference_kernels);
    let intra_picture = reference.is_none();
    parse_picture(&mut r, intra_picture, mbs_x * mbs_y, &mut scratch.mbs)?;

    if opts.parallel.workers <= 1 {
        // Direct-write serial path: reconstruction has no cross-row
        // state, so rows write straight into the frame's planes.
        let (py, pu, pv) = frame.planes_mut();
        let mut sink = RowSink { y: py, u: pu, v: pv, mb_row0: 0 };
        for mby in 0..mbs_y {
            decode_mb_row(mby, &scratch.mbs, reference, &kernels, &luma, &chroma, mbs_x, &mut sink);
        }
    } else {
        // Parallel reconstruction stage: dequant + iDCT + MC per band.
        let mbs = &scratch.mbs;
        let bands = map_bands(mbs_y, &opts.parallel, |b| {
            decode_band(b, mbs, reference, &kernels, &luma, &chroma, mbs_x, mbs_y)
        });
        stitch_bands(&bands, frame, mbs_y);
    }
    Ok(())
}

/// Serial parse stage: entropy-decodes every macroblock of a payload into
/// `mbs` (cleared first). Bit positions are only known sequentially; the
/// intra-DC prediction chain resolves here.
fn parse_picture(
    r: &mut BitReader<'_>,
    intra_picture: bool,
    mb_count: usize,
    mbs: &mut Vec<MbOut>,
) -> Result<(), CodecError> {
    mbs.clear();
    mbs.reserve(mb_count);
    let mut dc = [0i16; 3];
    for _ in 0..mb_count {
        let mut blocks = [[0i16; 64]; 6];
        let mode = if intra_picture {
            for blk in blocks.iter_mut().take(4) {
                let (levels, d) = decode_block(r, dc[0])?;
                *blk = levels;
                dc[0] = d;
            }
            let (lu, du) = decode_block(r, dc[1])?;
            blocks[4] = lu;
            dc[1] = du;
            let (lv, dv) = decode_block(r, dc[2])?;
            blocks[5] = lv;
            dc[2] = dv;
            MbMode::Intra
        } else {
            let inter = r.get_bit()?;
            let mode = if inter {
                let dx2 = r.get_se()?;
                let dy2 = r.get_se()?;
                if dx2.abs() > 2 * motion::SEARCH_RANGE || dy2.abs() > 2 * motion::SEARCH_RANGE {
                    return Err(CodecError::Malformed {
                        reason: format!("motion vector ({dx2},{dy2}) out of range"),
                    });
                }
                MbMode::Inter(HalfPelVector { dx2: dx2 as i16, dy2: dy2 as i16 })
            } else {
                MbMode::Intra
            };
            for blk in &mut blocks {
                let (levels, _) = decode_block(r, 0)?;
                *blk = levels;
            }
            mode
        };
        mbs.push(MbOut { mode, blocks });
    }
    Ok(())
}

/// Reconstruction stage for one band of a parsed picture.
#[allow(clippy::too_many_arguments)]
fn decode_band(
    band: usize,
    mbs: &[MbOut],
    reference: Option<&Yuv420Frame>,
    kernels: &Kernels,
    luma: &PlaneDims,
    chroma: &PlaneDims,
    mbs_x: usize,
    mbs_y: usize,
) -> BandOut {
    let rows = band_rows(band, mbs_y);
    let n_rows = rows.len();
    let mut out = BandOut {
        mbs: Vec::new(), // decode bands carry only reconstruction strips
        y: vec![0u8; n_rows * 16 * luma.w],
        u: vec![0u8; n_rows * 8 * chroma.w],
        v: vec![0u8; n_rows * 8 * chroma.w],
    };
    let mb_row0 = rows.start;
    for mby in rows {
        let mut sink = RowSink { y: &mut out.y, u: &mut out.u, v: &mut out.v, mb_row0 };
        decode_mb_row(mby, mbs, reference, kernels, luma, chroma, mbs_x, &mut sink);
    }
    out
}

/// Reconstruction for one macroblock row of a parsed picture: dequant,
/// inverse transform and motion compensation written into `sink`. Shared
/// by the banded parallel path and the serial direct-write path.
#[allow(clippy::too_many_arguments)]
fn decode_mb_row(
    mby: usize,
    mbs: &[MbOut],
    reference: Option<&Yuv420Frame>,
    kernels: &Kernels,
    luma: &PlaneDims,
    chroma: &PlaneDims,
    mbs_x: usize,
    sink: &mut RowSink<'_>,
) {
    let local = mby - sink.mb_row0;
    for mbx in 0..mbs_x {
        let mb = &mbs[mby * mbs_x + mbx];
        match mb.mode {
            MbMode::Intra => {
                for (k, (by, bx)) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)]
                    .into_iter()
                    .enumerate()
                {
                    let rec = kernels.intra_recon(&mb.blocks[k]);
                    blit8(sink.y, luma.w, mbx * 16 + bx * 8, local * 16 + by * 8, &rec);
                }
                let rec_u = kernels.intra_recon(&mb.blocks[4]);
                blit8(sink.u, chroma.w, mbx * 8, local * 8, &rec_u);
                let rec_v = kernels.intra_recon(&mb.blocks[5]);
                blit8(sink.v, chroma.w, mbx * 8, local * 8, &rec_v);
            }
            MbMode::Inter(mv) => {
                let r = reference.expect("parse stage rejects P pictures without reference");
                let mut pred = [0u8; 256];
                predict_mc(
                    kernels.reference,
                    r.y_plane(),
                    luma.w,
                    luma.h,
                    mbx * 16,
                    mby * 16,
                    mv.dx2.into(),
                    mv.dy2.into(),
                    16,
                    &mut pred,
                );
                for (k, (by, bx)) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)]
                    .into_iter()
                    .enumerate()
                {
                    let rec = kernels.residual_recon(&mb.blocks[k], &pred, 16, bx * 8, by * 8);
                    blit8(sink.y, luma.w, mbx * 16 + bx * 8, local * 16 + by * 8, &rec);
                }
                let (cdx2, cdy2) = (i32::from(mv.dx2) / 2, i32::from(mv.dy2) / 2);
                let mut cpred = [0u8; 64];
                for (k, strip) in [&mut *sink.u, &mut *sink.v].into_iter().enumerate() {
                    let r_plane = if k == 0 { r.u_plane() } else { r.v_plane() };
                    predict_mc(
                        kernels.reference, r_plane, chroma.w, chroma.h, mbx * 8, mby * 8,
                        cdx2, cdy2, 8, &mut cpred,
                    );
                    let rec = kernels.residual_recon(&mb.blocks[4 + k], &cpred, 8, 0, 0);
                    blit8(strip, chroma.w, mbx * 8, local * 8, &rec);
                }
            }
        }
    }
}

fn split_payload(bytes: &[u8], reference_io: bool) -> Result<(QScale, BitReader<'_>), CodecError> {
    let (&q, rest) = bytes
        .split_first()
        .ok_or_else(|| CodecError::Malformed { reason: "empty picture payload".into() })?;
    if !(1..=31).contains(&q) {
        return Err(CodecError::Malformed { reason: format!("qscale {q} out of range") });
    }
    let r = if reference_io { BitReader::new_reference(rest) } else { BitReader::new(rest) };
    Ok((QScale::new(q), r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_imgproc::Frame;

    fn test_frame(shift: u32) -> Yuv420Frame {
        // Smooth content that translates exactly with `shift` (a function
        // of x only slides along x), so motion compensation can match it.
        Frame::from_fn(48, 32, |x, y| {
            let xx = (x + shift) as f32;
            let v = (128.0 + 80.0 * (xx * 0.18).sin() + 40.0 * (y as f32 * 0.25).cos())
                .round()
                .clamp(0.0, 255.0) as u8;
            [v, v.saturating_sub(8), 255 - v]
        })
        .to_yuv420()
        .unwrap()
    }

    fn luma_mad(a: &Yuv420Frame, b: &Yuv420Frame) -> f64 {
        let n = a.y_plane().len() as f64;
        a.y_plane()
            .iter()
            .zip(b.y_plane())
            .map(|(&x, &y)| f64::from(x.abs_diff(y)))
            .sum::<f64>()
            / n
    }

    #[test]
    fn intra_decode_matches_encoder_reconstruction() {
        let f = test_frame(0);
        let coded = encode_intra(&f, QScale::new(4));
        let decoded = decode_intra(&coded.bytes, 48, 32).unwrap();
        assert_eq!(decoded, coded.reconstruction);
    }

    #[test]
    fn intra_quality_improves_with_finer_scale() {
        let f = test_frame(0);
        let fine = encode_intra(&f, QScale::new(2));
        let coarse = encode_intra(&f, QScale::new(24));
        assert!(luma_mad(&f, &fine.reconstruction) < luma_mad(&f, &coarse.reconstruction));
        assert!(luma_mad(&f, &fine.reconstruction) < 3.0);
    }

    #[test]
    fn coarse_scale_compresses_smaller() {
        let f = test_frame(0);
        let fine = encode_intra(&f, QScale::new(2));
        let coarse = encode_intra(&f, QScale::new(24));
        assert!(coarse.bytes.len() < fine.bytes.len());
    }

    #[test]
    fn inter_decode_matches_encoder_reconstruction() {
        let a = test_frame(0);
        let b = test_frame(2); // shifted content → real motion
        let ia = encode_intra(&a, QScale::new(4));
        let pb = encode_inter(&b, &ia.reconstruction, QScale::new(4));
        let decoded = decode_inter(&pb.bytes, &ia.reconstruction).unwrap();
        assert_eq!(decoded, pb.reconstruction);
    }

    #[test]
    fn inter_beats_intra_on_translated_content() {
        let a = test_frame(0);
        let b = test_frame(2);
        let ia = encode_intra(&a, QScale::new(4));
        let inter = encode_inter(&b, &ia.reconstruction, QScale::new(4));
        let intra = encode_intra(&b, QScale::new(4));
        assert!(
            inter.bytes.len() < intra.bytes.len(),
            "inter {} should be smaller than intra {}",
            inter.bytes.len(),
            intra.bytes.len()
        );
    }

    #[test]
    fn static_scene_inter_is_tiny() {
        let a = test_frame(0);
        let ia = encode_intra(&a, QScale::new(4));
        let p = encode_inter(&a, &ia.reconstruction, QScale::new(4));
        // Mostly-zero residual with zero vectors: well below the intra
        // size (which is itself small for smooth content).
        assert!(
            p.bytes.len() * 3 < ia.bytes.len() * 2,
            "static P {} vs I {}",
            p.bytes.len(),
            ia.bytes.len()
        );
        assert!(luma_mad(&a, &p.reconstruction) < 3.0);
    }

    #[test]
    fn inter_reconstruction_tracks_source() {
        let a = test_frame(0);
        let b = test_frame(3);
        let ia = encode_intra(&a, QScale::new(4));
        let p = encode_inter(&b, &ia.reconstruction, QScale::new(4));
        assert!(luma_mad(&b, &p.reconstruction) < 3.0, "mad {}", luma_mad(&b, &p.reconstruction));
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(decode_intra(&[], 16, 16).is_err());
        assert!(decode_intra(&[0], 16, 16).is_err()); // qscale 0
        assert!(decode_intra(&[4, 0xFF], 16, 16).is_err()); // truncated
        let f = test_frame(0);
        let ia = encode_intra(&f, QScale::new(4));
        assert!(decode_inter(&[9], &ia.reconstruction).is_err());
    }

    #[test]
    fn no_drift_across_p_chain() {
        // Encode a chain of P pictures and verify decode stays bit-exact
        // with the encoder's reconstructions.
        let mut reference = encode_intra(&test_frame(0), QScale::new(6)).reconstruction;
        let mut dec_ref = decode_intra(&encode_intra(&test_frame(0), QScale::new(6)).bytes, 48, 32).unwrap();
        for i in 1..5 {
            let cur = test_frame(i);
            let coded = encode_inter(&cur, &reference, QScale::new(6));
            let dec = decode_inter(&coded.bytes, &dec_ref).unwrap();
            assert_eq!(dec, coded.reconstruction, "drift at P{i}");
            reference = coded.reconstruction;
            dec_ref = dec;
        }
    }

    fn opts(workers: usize) -> CodecOptions {
        CodecOptions { parallel: ParallelConfig::with_workers(workers), ..Default::default() }
    }

    #[test]
    fn fast_intra_cost_matches_reference_loop() {
        let f = test_frame(1);
        let (luma, _) = plane_dims(&f);
        for mby in 0..luma.h / 16 {
            for mbx in 0..luma.w / 16 {
                assert_eq!(
                    motion::mean_deviation16(f.y_plane(), luma.w, mbx * 16, mby * 16),
                    mean_deviation(f.y_plane(), luma.w, mbx * 16, mby * 16, 16),
                    "mb ({mbx},{mby})"
                );
            }
        }
    }

    #[test]
    fn parallel_encode_decode_byte_identical() {
        let a = test_frame(0);
        let b = test_frame(2);
        let serial = opts(0);
        let i_s = encode_intra_opts(&a, QScale::new(4), &serial);
        let p_s = encode_inter_opts(&b, &i_s.reconstruction, QScale::new(4), &serial);
        for workers in [1, 2, 3, 7] {
            let par = opts(workers);
            let i_p = encode_intra_opts(&a, QScale::new(4), &par);
            assert_eq!(i_p.bytes, i_s.bytes, "intra bytes differ at {workers} workers");
            assert_eq!(i_p.reconstruction, i_s.reconstruction);
            let p_p = encode_inter_opts(&b, &i_p.reconstruction, QScale::new(4), &par);
            assert_eq!(p_p.bytes, p_s.bytes, "inter bytes differ at {workers} workers");
            assert_eq!(p_p.reconstruction, p_s.reconstruction);
            let di = decode_intra_opts(&i_s.bytes, 48, 32, &par).unwrap();
            assert_eq!(di, i_s.reconstruction);
            let dp = decode_inter_opts(&p_s.bytes, &di, &par).unwrap();
            assert_eq!(dp, p_s.reconstruction);
        }
    }

    #[test]
    fn search_mode_does_not_change_bitstream() {
        let a = test_frame(0);
        let b = test_frame(3);
        let early = CodecOptions { search: SearchMode::EarlyExit, ..Default::default() };
        let exhaustive = CodecOptions { search: SearchMode::Exhaustive, ..Default::default() };
        let ia = encode_intra(&a, QScale::new(4));
        let pe = encode_inter_opts(&b, &ia.reconstruction, QScale::new(4), &early);
        let px = encode_inter_opts(&b, &ia.reconstruction, QScale::new(4), &exhaustive);
        assert_eq!(pe.bytes, px.bytes);
        assert_eq!(pe.reconstruction, px.reconstruction);
    }

    #[test]
    fn reference_kernels_roundtrip_consistent() {
        let a = test_frame(0);
        let b = test_frame(2);
        let refk = CodecOptions { reference_kernels: true, ..Default::default() };
        let ia = encode_intra_opts(&a, QScale::new(4), &refk);
        let di = decode_intra_opts(&ia.bytes, 48, 32, &refk).unwrap();
        assert_eq!(di, ia.reconstruction);
        let pb = encode_inter_opts(&b, &ia.reconstruction, QScale::new(4), &refk);
        let dp = decode_inter_opts(&pb.bytes, &ia.reconstruction, &refk).unwrap();
        assert_eq!(dp, pb.reconstruction);
        // The reference path stays a faithful encoder in its own right.
        assert!(luma_mad(&a, &ia.reconstruction) < 3.0);
    }

    #[test]
    fn fast_and_reference_kernels_agree_closely() {
        // The AAN path is a different fixed-point rounding of the same
        // transform: reconstructions must track the float path to within
        // ~1 LSB on smooth content (bitstreams may differ slightly).
        let a = test_frame(0);
        let fast = encode_intra(&a, QScale::new(4));
        let refk = encode_intra_opts(
            &a,
            QScale::new(4),
            &CodecOptions { reference_kernels: true, ..Default::default() },
        );
        assert!(
            luma_mad(&fast.reconstruction, &refk.reconstruction) < 1.0,
            "mad {}",
            luma_mad(&fast.reconstruction, &refk.reconstruction)
        );
    }
}
