//! I- and P-picture coding.
//!
//! Pictures are coded macroblock by macroblock (16×16 luma + two 8×8
//! chroma blocks in 4:2:0). Intra macroblocks level-shift and DCT the
//! samples directly; inter macroblocks code the residual against a
//! motion-compensated prediction from the previous reconstructed picture.
//! The encoder reconstructs exactly what the decoder will, so there is no
//! drift across a GOP.

use crate::bitio::{BitReader, BitWriter};
use crate::dct;
use crate::error::CodecError;
use crate::motion::{self, HalfPelVector};
use crate::quant::{dequantize, quantize, QScale, INTER_MATRIX, INTRA_MATRIX};
use crate::zigzag::{decode_block, encode_block};
use annolight_imgproc::Yuv420Frame;

/// The outcome of encoding one picture: the payload bytes and the
/// decoder-identical reconstruction to predict the next picture from.
#[derive(Debug, Clone)]
pub struct CodedPicture {
    /// Entropy-coded payload (starts with the qscale byte).
    pub bytes: Vec<u8>,
    /// The picture exactly as the decoder will reconstruct it.
    pub reconstruction: Yuv420Frame,
}

struct PlaneDims {
    w: usize,
    h: usize,
}

fn plane_dims(frame: &Yuv420Frame) -> (PlaneDims, PlaneDims) {
    let luma = PlaneDims { w: frame.width() as usize, h: frame.height() as usize };
    let chroma = PlaneDims { w: luma.w / 2, h: luma.h / 2 };
    (luma, chroma)
}

/// Encodes an intra (I) picture.
pub fn encode_intra(frame: &Yuv420Frame, qscale: QScale) -> CodedPicture {
    let (luma, chroma) = plane_dims(frame);
    let mut recon = Yuv420Frame::new(frame.width(), frame.height())
        .expect("source frame dimensions are valid");
    let mut w = BitWriter::new();
    let mut dc = [0i16; 3]; // per-plane DC predictors

    let mbs_x = luma.w / 16;
    let mbs_y = luma.h / 16;
    for mby in 0..mbs_y {
        for mbx in 0..mbs_x {
            for (by, bx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                dc[0] = code_intra_block(
                    &mut w,
                    frame.y_plane(),
                    recon.y_plane_mut(),
                    luma.w,
                    mbx * 2 + bx,
                    mby * 2 + by,
                    qscale,
                    dc[0],
                );
            }
            dc[1] = code_intra_block(
                &mut w, frame.u_plane(), recon.u_plane_mut(), chroma.w, mbx, mby, qscale, dc[1],
            );
            dc[2] = code_intra_block(
                &mut w, frame.v_plane(), recon.v_plane_mut(), chroma.w, mbx, mby, qscale, dc[2],
            );
        }
    }
    let mut bytes = vec![qscale.value()];
    bytes.extend(w.into_bytes());
    CodedPicture { bytes, reconstruction: recon }
}

#[allow(clippy::too_many_arguments)]
fn code_intra_block(
    w: &mut BitWriter,
    src: &[u8],
    recon: &mut [u8],
    stride: usize,
    bx: usize,
    by: usize,
    qscale: QScale,
    dc_pred: i16,
) -> i16 {
    let block = dct::load_block(src, stride, bx, by);
    let coeffs = dct::forward(&block);
    let levels = quantize(&coeffs, &INTRA_MATRIX, qscale, true);
    let dc = encode_block(w, &levels, dc_pred);
    let rec = dct::inverse(&dequantize(&levels, &INTRA_MATRIX, qscale, true));
    dct::store_block(recon, stride, bx, by, &rec);
    dc
}

/// Decodes an intra (I) picture payload.
///
/// # Errors
///
/// Returns [`CodecError`] for malformed payloads or bad dimensions.
pub fn decode_intra(bytes: &[u8], width: u32, height: u32) -> Result<Yuv420Frame, CodecError> {
    let (qscale, mut r) = split_payload(bytes)?;
    let mut frame = Yuv420Frame::new(width, height)
        .map_err(|e| CodecError::Malformed { reason: e.to_string() })?;
    let luma_w = width as usize;
    let chroma_w = luma_w / 2;
    let mut dc = [0i16; 3];
    let mbs_x = luma_w / 16;
    let mbs_y = height as usize / 16;
    for mby in 0..mbs_y {
        for mbx in 0..mbs_x {
            for (by, bx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                dc[0] = read_intra_block(
                    &mut r, frame.y_plane_mut(), luma_w, mbx * 2 + bx, mby * 2 + by, qscale, dc[0],
                )?;
            }
            dc[1] = read_intra_block(&mut r, frame.u_plane_mut(), chroma_w, mbx, mby, qscale, dc[1])?;
            dc[2] = read_intra_block(&mut r, frame.v_plane_mut(), chroma_w, mbx, mby, qscale, dc[2])?;
        }
    }
    Ok(frame)
}

fn read_intra_block(
    r: &mut BitReader<'_>,
    plane: &mut [u8],
    stride: usize,
    bx: usize,
    by: usize,
    qscale: QScale,
    dc_pred: i16,
) -> Result<i16, CodecError> {
    let (levels, dc) = decode_block(r, dc_pred)?;
    let rec = dct::inverse(&dequantize(&levels, &INTRA_MATRIX, qscale, true));
    dct::store_block(plane, stride, bx, by, &rec);
    Ok(dc)
}

/// Encodes a predicted (P) picture against `reference` (the previous
/// reconstruction).
///
/// # Panics
///
/// Panics if the frames have different dimensions.
pub fn encode_inter(frame: &Yuv420Frame, reference: &Yuv420Frame, qscale: QScale) -> CodedPicture {
    assert_eq!(
        (frame.width(), frame.height()),
        (reference.width(), reference.height()),
        "reference dimensions must match"
    );
    let (luma, chroma) = plane_dims(frame);
    let mut recon = Yuv420Frame::new(frame.width(), frame.height())
        .expect("source frame dimensions are valid");
    let mut w = BitWriter::new();

    let mbs_x = luma.w / 16;
    let mbs_y = luma.h / 16;
    for mby in 0..mbs_y {
        for mbx in 0..mbs_x {
            let (mv, mc_sad) =
                motion::estimate_halfpel(frame.y_plane(), reference.y_plane(), luma.w, luma.h, mbx, mby);
            // Intra/inter decision: compare the MC residual energy with the
            // deviation from the block mean (a cheap intra-cost proxy).
            let intra_cost = mean_deviation(frame.y_plane(), luma.w, mbx * 16, mby * 16, 16);
            let inter = mc_sad < intra_cost;
            w.put_bit(inter);
            if inter {
                w.put_se(i32::from(mv.dx2));
                w.put_se(i32::from(mv.dy2));
                code_inter_mb(&mut w, frame, reference, &mut recon, &luma, &chroma, mbx, mby, mv, qscale);
            } else {
                // Intra refresh macroblock (DC predictor reset to 0).
                for (by, bx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    code_intra_block(
                        &mut w, frame.y_plane(), recon.y_plane_mut(), luma.w,
                        mbx * 2 + bx, mby * 2 + by, qscale, 0,
                    );
                }
                code_intra_block(&mut w, frame.u_plane(), recon.u_plane_mut(), chroma.w, mbx, mby, qscale, 0);
                code_intra_block(&mut w, frame.v_plane(), recon.v_plane_mut(), chroma.w, mbx, mby, qscale, 0);
            }
        }
    }
    let mut bytes = vec![qscale.value()];
    bytes.extend(w.into_bytes());
    CodedPicture { bytes, reconstruction: recon }
}

fn mean_deviation(plane: &[u8], stride: usize, px: usize, py: usize, size: usize) -> u32 {
    let mut sum = 0u32;
    for y in 0..size {
        for x in 0..size {
            sum += u32::from(plane[(py + y) * stride + px + x]);
        }
    }
    let mean = (sum / (size * size) as u32) as i32;
    let mut dev = 0u32;
    for y in 0..size {
        for x in 0..size {
            dev += (i32::from(plane[(py + y) * stride + px + x]) - mean).unsigned_abs();
        }
    }
    dev
}

#[allow(clippy::too_many_arguments)]
fn code_inter_mb(
    w: &mut BitWriter,
    frame: &Yuv420Frame,
    reference: &Yuv420Frame,
    recon: &mut Yuv420Frame,
    luma: &PlaneDims,
    chroma: &PlaneDims,
    mbx: usize,
    mby: usize,
    mv: HalfPelVector,
    qscale: QScale,
) {
    // Luma: four 8x8 residual blocks against the 16x16 prediction.
    let mut pred = vec![0u8; 256];
    motion::predict_halfpel_into(
        reference.y_plane(), luma.w, luma.h, mbx * 16, mby * 16,
        mv.dx2.into(), mv.dy2.into(), 16, &mut pred,
    );
    for (by, bx) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
        code_residual_block(
            w, frame.y_plane(), &pred, 16, recon.y_plane_mut(), luma.w,
            mbx * 16 + bx * 8, mby * 16 + by * 8, bx * 8, by * 8, qscale,
        );
    }
    // Chroma: halved vector (luma half-pels → chroma half-pels).
    let (cdx2, cdy2) = (i32::from(mv.dx2) / 2, i32::from(mv.dy2) / 2);
    let mut cpred = vec![0u8; 64];
    motion::predict_halfpel_into(reference.u_plane(), chroma.w, chroma.h, mbx * 8, mby * 8, cdx2, cdy2, 8, &mut cpred);
    code_residual_block(w, frame.u_plane(), &cpred, 8, recon.u_plane_mut(), chroma.w, mbx * 8, mby * 8, 0, 0, qscale);
    motion::predict_halfpel_into(reference.v_plane(), chroma.w, chroma.h, mbx * 8, mby * 8, cdx2, cdy2, 8, &mut cpred);
    code_residual_block(w, frame.v_plane(), &cpred, 8, recon.v_plane_mut(), chroma.w, mbx * 8, mby * 8, 0, 0, qscale);
}

/// Codes one 8×8 residual block. `(px, py)` locate the block in the full
/// plane; `(ox, oy)` locate it inside the prediction buffer of width
/// `pred_stride`.
#[allow(clippy::too_many_arguments)]
fn code_residual_block(
    w: &mut BitWriter,
    src: &[u8],
    pred: &[u8],
    pred_stride: usize,
    recon: &mut [u8],
    stride: usize,
    px: usize,
    py: usize,
    ox: usize,
    oy: usize,
    qscale: QScale,
) {
    let mut residual = [0.0f32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let s = f32::from(src[(py + y) * stride + px + x]);
            let p = f32::from(pred[(oy + y) * pred_stride + ox + x]);
            residual[y * 8 + x] = s - p;
        }
    }
    let coeffs = dct::forward(&residual);
    let levels = quantize(&coeffs, &INTER_MATRIX, qscale, false);
    encode_block(w, &levels, 0);
    let rec = dct::inverse(&dequantize(&levels, &INTER_MATRIX, qscale, false));
    for y in 0..8 {
        for x in 0..8 {
            let p = f32::from(pred[(oy + y) * pred_stride + ox + x]);
            let v = (p + rec[y * 8 + x]).round().clamp(0.0, 255.0) as u8;
            recon[(py + y) * stride + px + x] = v;
        }
    }
}

/// Decodes a predicted (P) picture payload against `reference`.
///
/// # Errors
///
/// Returns [`CodecError`] for malformed payloads.
pub fn decode_inter(bytes: &[u8], reference: &Yuv420Frame) -> Result<Yuv420Frame, CodecError> {
    let (qscale, mut r) = split_payload(bytes)?;
    let (luma, chroma) = plane_dims(reference);
    let mut frame = Yuv420Frame::new(reference.width(), reference.height())
        .map_err(|e| CodecError::Malformed { reason: e.to_string() })?;
    let mbs_x = luma.w / 16;
    let mbs_y = luma.h / 16;
    for mby in 0..mbs_y {
        for mbx in 0..mbs_x {
            let inter = r.get_bit()?;
            if inter {
                let dx2 = r.get_se()?;
                let dy2 = r.get_se()?;
                if dx2.abs() > 2 * motion::SEARCH_RANGE || dy2.abs() > 2 * motion::SEARCH_RANGE {
                    return Err(CodecError::Malformed {
                        reason: format!("motion vector ({dx2},{dy2}) out of range"),
                    });
                }
                let mut pred = vec![0u8; 256];
                motion::predict_halfpel_into(reference.y_plane(), luma.w, luma.h, mbx * 16, mby * 16, dx2, dy2, 16, &mut pred);
                for (by, bx) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
                    read_residual_block(
                        &mut r, &pred, 16, frame.y_plane_mut(), luma.w,
                        mbx * 16 + bx * 8, mby * 16 + by * 8, bx * 8, by * 8, qscale,
                    )?;
                }
                let (cdx2, cdy2) = (dx2 / 2, dy2 / 2);
                let mut cpred = vec![0u8; 64];
                motion::predict_halfpel_into(reference.u_plane(), chroma.w, chroma.h, mbx * 8, mby * 8, cdx2, cdy2, 8, &mut cpred);
                read_residual_block(&mut r, &cpred, 8, frame.u_plane_mut(), chroma.w, mbx * 8, mby * 8, 0, 0, qscale)?;
                motion::predict_halfpel_into(reference.v_plane(), chroma.w, chroma.h, mbx * 8, mby * 8, cdx2, cdy2, 8, &mut cpred);
                read_residual_block(&mut r, &cpred, 8, frame.v_plane_mut(), chroma.w, mbx * 8, mby * 8, 0, 0, qscale)?;
            } else {
                for (by, bx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    read_intra_block(&mut r, frame.y_plane_mut(), luma.w, mbx * 2 + bx, mby * 2 + by, qscale, 0)?;
                }
                read_intra_block(&mut r, frame.u_plane_mut(), chroma.w, mbx, mby, qscale, 0)?;
                read_intra_block(&mut r, frame.v_plane_mut(), chroma.w, mbx, mby, qscale, 0)?;
            }
        }
    }
    Ok(frame)
}

#[allow(clippy::too_many_arguments)]
fn read_residual_block(
    r: &mut BitReader<'_>,
    pred: &[u8],
    pred_stride: usize,
    plane: &mut [u8],
    stride: usize,
    px: usize,
    py: usize,
    ox: usize,
    oy: usize,
    qscale: QScale,
) -> Result<(), CodecError> {
    let (levels, _) = decode_block(r, 0)?;
    let rec = dct::inverse(&dequantize(&levels, &INTER_MATRIX, qscale, false));
    for y in 0..8 {
        for x in 0..8 {
            let p = f32::from(pred[(oy + y) * pred_stride + ox + x]);
            let v = (p + rec[y * 8 + x]).round().clamp(0.0, 255.0) as u8;
            plane[(py + y) * stride + px + x] = v;
        }
    }
    Ok(())
}

fn split_payload(bytes: &[u8]) -> Result<(QScale, BitReader<'_>), CodecError> {
    let (&q, rest) = bytes
        .split_first()
        .ok_or_else(|| CodecError::Malformed { reason: "empty picture payload".into() })?;
    if !(1..=31).contains(&q) {
        return Err(CodecError::Malformed { reason: format!("qscale {q} out of range") });
    }
    Ok((QScale::new(q), BitReader::new(rest)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_imgproc::Frame;

    fn test_frame(shift: u32) -> Yuv420Frame {
        // Smooth content that translates exactly with `shift` (a function
        // of x only slides along x), so motion compensation can match it.
        Frame::from_fn(48, 32, |x, y| {
            let xx = (x + shift) as f32;
            let v = (128.0 + 80.0 * (xx * 0.18).sin() + 40.0 * (y as f32 * 0.25).cos())
                .round()
                .clamp(0.0, 255.0) as u8;
            [v, v.saturating_sub(8), 255 - v]
        })
        .to_yuv420()
        .unwrap()
    }

    fn luma_mad(a: &Yuv420Frame, b: &Yuv420Frame) -> f64 {
        let n = a.y_plane().len() as f64;
        a.y_plane()
            .iter()
            .zip(b.y_plane())
            .map(|(&x, &y)| f64::from(x.abs_diff(y)))
            .sum::<f64>()
            / n
    }

    #[test]
    fn intra_decode_matches_encoder_reconstruction() {
        let f = test_frame(0);
        let coded = encode_intra(&f, QScale::new(4));
        let decoded = decode_intra(&coded.bytes, 48, 32).unwrap();
        assert_eq!(decoded, coded.reconstruction);
    }

    #[test]
    fn intra_quality_improves_with_finer_scale() {
        let f = test_frame(0);
        let fine = encode_intra(&f, QScale::new(2));
        let coarse = encode_intra(&f, QScale::new(24));
        assert!(luma_mad(&f, &fine.reconstruction) < luma_mad(&f, &coarse.reconstruction));
        assert!(luma_mad(&f, &fine.reconstruction) < 3.0);
    }

    #[test]
    fn coarse_scale_compresses_smaller() {
        let f = test_frame(0);
        let fine = encode_intra(&f, QScale::new(2));
        let coarse = encode_intra(&f, QScale::new(24));
        assert!(coarse.bytes.len() < fine.bytes.len());
    }

    #[test]
    fn inter_decode_matches_encoder_reconstruction() {
        let a = test_frame(0);
        let b = test_frame(2); // shifted content → real motion
        let ia = encode_intra(&a, QScale::new(4));
        let pb = encode_inter(&b, &ia.reconstruction, QScale::new(4));
        let decoded = decode_inter(&pb.bytes, &ia.reconstruction).unwrap();
        assert_eq!(decoded, pb.reconstruction);
    }

    #[test]
    fn inter_beats_intra_on_translated_content() {
        let a = test_frame(0);
        let b = test_frame(2);
        let ia = encode_intra(&a, QScale::new(4));
        let inter = encode_inter(&b, &ia.reconstruction, QScale::new(4));
        let intra = encode_intra(&b, QScale::new(4));
        assert!(
            inter.bytes.len() < intra.bytes.len(),
            "inter {} should be smaller than intra {}",
            inter.bytes.len(),
            intra.bytes.len()
        );
    }

    #[test]
    fn static_scene_inter_is_tiny() {
        let a = test_frame(0);
        let ia = encode_intra(&a, QScale::new(4));
        let p = encode_inter(&a, &ia.reconstruction, QScale::new(4));
        // Mostly-zero residual with zero vectors: well below the intra
        // size (which is itself small for smooth content).
        assert!(
            p.bytes.len() * 3 < ia.bytes.len() * 2,
            "static P {} vs I {}",
            p.bytes.len(),
            ia.bytes.len()
        );
        assert!(luma_mad(&a, &p.reconstruction) < 3.0);
    }

    #[test]
    fn inter_reconstruction_tracks_source() {
        let a = test_frame(0);
        let b = test_frame(3);
        let ia = encode_intra(&a, QScale::new(4));
        let p = encode_inter(&b, &ia.reconstruction, QScale::new(4));
        assert!(luma_mad(&b, &p.reconstruction) < 3.0, "mad {}", luma_mad(&b, &p.reconstruction));
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(decode_intra(&[], 16, 16).is_err());
        assert!(decode_intra(&[0], 16, 16).is_err()); // qscale 0
        assert!(decode_intra(&[4, 0xFF], 16, 16).is_err()); // truncated
        let f = test_frame(0);
        let ia = encode_intra(&f, QScale::new(4));
        assert!(decode_inter(&[9], &ia.reconstruction).is_err());
    }

    #[test]
    fn no_drift_across_p_chain() {
        // Encode a chain of P pictures and verify decode stays bit-exact
        // with the encoder's reconstructions.
        let mut reference = encode_intra(&test_frame(0), QScale::new(6)).reconstruction;
        let mut dec_ref = decode_intra(&encode_intra(&test_frame(0), QScale::new(6)).bytes, 48, 32).unwrap();
        for i in 1..5 {
            let cur = test_frame(i);
            let coded = encode_inter(&cur, &reference, QScale::new(6));
            let dec = decode_inter(&coded.bytes, &dec_ref).unwrap();
            assert_eq!(dec, coded.reconstruction, "drift at P{i}");
            reference = coded.reconstruction;
            dec_ref = dec;
        }
    }
}
