//! 8×8 forward and inverse discrete cosine transform.
//!
//! Two implementations live here:
//!
//! * **Fast path** ([`forward_aan`] / [`inverse_aan`]): the
//!   Arai–Agui–Nakajima (AAN) factorisation in 13-bit fixed point — 5
//!   multiplies per 1-D forward pass instead of 64, with the
//!   per-coefficient AAN scale factors *folded into the quantisation
//!   tables* ([`crate::quant::FusedTables`]) so the transform itself is
//!   multiply-light. This is the canonical path: the encoder's
//!   reconstruction and the decoder run the *same* integer kernels, so
//!   encode→decode round-trip identity holds by construction.
//! * **Reference path** ([`forward_reference`] / [`inverse_reference`]):
//!   the classic orthonormal matrix DCT in `f32` with a memoized cosine
//!   basis. Retained as the numerical oracle (the fast path is verified
//!   against it to sub-LSB tolerance) and as the benchmark baseline.
//!
//! The AAN output convention: `forward_aan` returns the orthonormal DCT
//! coefficient scaled by `8 · sf(u) · sf(v) · 2^FWD_EXTRA_BITS`, where
//! `sf(0) = 1` and `sf(k) = √2·cos(kπ/16)` ([`aan_scale`]). `inverse_aan`
//! expects coefficients scaled by `sf(u)·sf(v)/8 · 2^IDCT_FRAC_BITS` —
//! exactly what [`crate::quant::dequantize_aan`] produces.

use std::sync::OnceLock;

/// An 8×8 block of spatial samples or transform coefficients, row-major.
pub type Block = [f32; 64];

/// An 8×8 integer block for the fixed-point fast path, row-major.
pub type IntBlock = [i32; 64];

const N: usize = 8;

/// Extra scaling (in bits) applied to `forward_aan` inputs for precision;
/// folded into the fused quantiser reciprocals.
pub const FWD_EXTRA_BITS: u32 = 2;

/// Fraction bits carried by `inverse_aan` inputs (the fused dequantiser
/// multiplier scale).
pub const IDCT_FRAC_BITS: u32 = 12;

/// The AAN per-frequency scale factor: `sf(0) = 1`,
/// `sf(u) = √2·cos(uπ/16)` for `u > 0`.
#[must_use]
pub fn aan_scale(u: usize) -> f64 {
    if u == 0 {
        1.0
    } else {
        std::f64::consts::SQRT_2 * ((u as f64) * std::f64::consts::PI / 16.0).cos()
    }
}

/// Cosine basis `c[u][x] = α(u) · cos((2x+1)uπ/16)`, row = frequency.
/// Computed once per process (it used to be rebuilt on every transform
/// call — a silent trig tax on every block).
fn basis() -> &'static [[f32; N]; N] {
    static BASIS: OnceLock<[[f32; N]; N]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0.0f32; N]; N];
        for (u, row) in b.iter_mut().enumerate() {
            let alpha = if u == 0 { (1.0 / N as f64).sqrt() } else { (2.0 / N as f64).sqrt() };
            for (x, v) in row.iter_mut().enumerate() {
                *v = (alpha
                    * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI
                        / (2.0 * N as f64))
                        .cos()) as f32;
            }
        }
        b
    })
}

/// Forward 8×8 DCT of `block` (spatial → frequency), reference matrix
/// implementation in `f32`.
pub fn forward_reference(block: &Block) -> Block {
    let b = basis();
    let mut tmp = [0.0f32; 64];
    // Rows.
    for y in 0..N {
        for u in 0..N {
            let mut acc = 0.0f32;
            for x in 0..N {
                acc += block[y * N + x] * b[u][x];
            }
            tmp[y * N + u] = acc;
        }
    }
    // Columns.
    let mut out = [0.0f32; 64];
    for u in 0..N {
        for v in 0..N {
            let mut acc = 0.0f32;
            for y in 0..N {
                acc += tmp[y * N + u] * b[v][y];
            }
            out[v * N + u] = acc;
        }
    }
    out
}

/// Inverse 8×8 DCT of `coeffs` (frequency → spatial), reference matrix
/// implementation in `f32`.
pub fn inverse_reference(coeffs: &Block) -> Block {
    let b = basis();
    let mut tmp = [0.0f32; 64];
    // Columns.
    for u in 0..N {
        for y in 0..N {
            let mut acc = 0.0f32;
            for v in 0..N {
                acc += coeffs[v * N + u] * b[v][y];
            }
            tmp[y * N + u] = acc;
        }
    }
    // Rows.
    let mut out = [0.0f32; 64];
    for y in 0..N {
        for x in 0..N {
            let mut acc = 0.0f32;
            for u in 0..N {
                acc += tmp[y * N + u] * b[u][x];
            }
            out[y * N + x] = acc;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Fixed-point AAN fast path.
// ---------------------------------------------------------------------------

/// Fixed-point fraction bits of the butterfly multiplier constants.
const FIX: u32 = 13;
const FIX_HALF: i64 = 1 << (FIX - 1);

// round(c · 2^13) for each AAN butterfly constant.
const F_0_7071: i32 = 5793; // 0.707106781  = cos(4π/16)
const F_0_3827: i32 = 3135; // 0.382683433  = cos(6π/16)·√2 − …
const F_0_5412: i32 = 4433; // 0.541196100
const F_1_3066: i32 = 10703; // 1.306562965
const F_1_4142: i32 = 11585; // 1.414213562 = √2
const F_1_8478: i32 = 15137; // 1.847759065
const F_1_0824: i32 = 8867; // 1.082392200
const F_2_6131: i32 = 21407; // 2.613125930

#[inline]
fn fmul(a: i32, c: i32) -> i32 {
    ((i64::from(a) * i64::from(c) + FIX_HALF) >> FIX) as i32
}

#[inline]
fn fmul64(a: i64, c: i32) -> i64 {
    (a * i64::from(c) + FIX_HALF) >> FIX
}

#[inline]
#[allow(clippy::many_single_char_names)]
fn fdct_1d(d: [i32; 8]) -> [i32; 8] {
    let t0 = d[0] + d[7];
    let t7 = d[0] - d[7];
    let t1 = d[1] + d[6];
    let t6 = d[1] - d[6];
    let t2 = d[2] + d[5];
    let t5 = d[2] - d[5];
    let t3 = d[3] + d[4];
    let t4 = d[3] - d[4];

    // Even part.
    let t10 = t0 + t3;
    let t13 = t0 - t3;
    let t11 = t1 + t2;
    let t12 = t1 - t2;
    let o0 = t10 + t11;
    let o4 = t10 - t11;
    let z1 = fmul(t12 + t13, F_0_7071);
    let o2 = t13 + z1;
    let o6 = t13 - z1;

    // Odd part.
    let t10 = t4 + t5;
    let t11 = t5 + t6;
    let t12 = t6 + t7;
    let z5 = fmul(t10 - t12, F_0_3827);
    let z2 = fmul(t10, F_0_5412) + z5;
    let z4 = fmul(t12, F_1_3066) + z5;
    let z3 = fmul(t11, F_0_7071);
    let z11 = t7 + z3;
    let z13 = t7 - z3;
    let o5 = z13 + z2;
    let o3 = z13 - z2;
    let o1 = z11 + z4;
    let o7 = z11 - z4;

    [o0, o1, o2, o3, o4, o5, o6, o7]
}

/// Forward 8×8 DCT on integer samples via the AAN butterfly.
///
/// Output coefficient `(v, u)` equals the orthonormal DCT coefficient
/// times `8 · sf(v) · sf(u) · 2^FWD_EXTRA_BITS`; feed it straight into
/// [`crate::quant::quantize_aan`], whose fused reciprocals divide the
/// scale back out.
pub fn forward_aan(block: &IntBlock) -> IntBlock {
    let mut tmp = [0i32; 64];
    for y in 0..N {
        let mut d = [0i32; 8];
        for x in 0..N {
            d[x] = block[y * N + x] << FWD_EXTRA_BITS;
        }
        let o = fdct_1d(d);
        tmp[y * N..y * N + N].copy_from_slice(&o);
    }
    let mut out = [0i32; 64];
    for u in 0..N {
        let mut d = [0i32; 8];
        for (y, v) in d.iter_mut().enumerate() {
            *v = tmp[y * N + u];
        }
        let o = fdct_1d(d);
        for (v, val) in o.iter().enumerate() {
            out[v * N + u] = *val;
        }
    }
    out
}

#[inline]
#[allow(clippy::many_single_char_names)]
fn idct_1d(d: [i64; 8]) -> [i64; 8] {
    // Even part.
    let t10 = d[0] + d[4];
    let t11 = d[0] - d[4];
    let t13 = d[2] + d[6];
    let t12 = fmul64(d[2] - d[6], F_1_4142) - t13;
    let e0 = t10 + t13;
    let e3 = t10 - t13;
    let e1 = t11 + t12;
    let e2 = t11 - t12;

    // Odd part.
    let z13 = d[5] + d[3];
    let z10 = d[5] - d[3];
    let z11 = d[1] + d[7];
    let z12 = d[1] - d[7];
    let o7 = z11 + z13;
    let t11 = fmul64(z11 - z13, F_1_4142);
    let z5 = fmul64(z10 + z12, F_1_8478);
    let t10 = fmul64(z12, F_1_0824) - z5;
    let t12 = z5 - fmul64(z10, F_2_6131);
    let o6 = t12 - o7;
    let o5 = t11 - o6;
    let o4 = t10 + o5;

    [e0 + o7, e1 + o6, e2 + o5, e3 - o4, e3 + o4, e2 - o5, e1 - o6, e0 - o7]
}

/// Inverse 8×8 DCT via the AAN butterfly.
///
/// Input coefficient `(v, u)` must equal the orthonormal DCT coefficient
/// times `sf(v) · sf(u) / 8 · 2^IDCT_FRAC_BITS` — the fused dequantiser
/// output ([`crate::quant::dequantize_aan`]). Output is plain integer
/// spatial samples (level-shifted domain, rounded).
///
/// Internals run in `i64`, so even adversarial (malformed-bitstream)
/// coefficient magnitudes cannot overflow.
pub fn inverse_aan(coeffs: &IntBlock) -> IntBlock {
    let mut tmp = [0i64; 64];
    // Columns.
    for u in 0..N {
        let mut d = [0i64; 8];
        for (v, val) in d.iter_mut().enumerate() {
            *val = i64::from(coeffs[v * N + u]);
        }
        let o = idct_1d(d);
        for (y, val) in o.iter().enumerate() {
            tmp[y * N + u] = *val;
        }
    }
    // Rows.
    let mut out = [0i32; 64];
    let half = 1i64 << (IDCT_FRAC_BITS - 1);
    for y in 0..N {
        let mut d = [0i64; 8];
        d.copy_from_slice(&tmp[y * N..y * N + N]);
        let o = idct_1d(d);
        for (x, val) in o.iter().enumerate() {
            out[y * N + x] = ((val + half) >> IDCT_FRAC_BITS) as i32;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Plane load/store helpers.
// ---------------------------------------------------------------------------

/// Loads an 8×8 block of `u8` samples (level-shifted by −128, as MPEG
/// intra coding does) from a plane, in `f32` for the reference path.
///
/// `stride` is the plane width; the block starts at `(bx·8, by·8)`.
pub fn load_block(plane: &[u8], stride: usize, bx: usize, by: usize) -> Block {
    let mut out = [0.0f32; 64];
    for y in 0..N {
        for x in 0..N {
            out[y * N + x] = f32::from(plane[(by * N + y) * stride + bx * N + x]) - 128.0;
        }
    }
    out
}

/// Integer twin of [`load_block`] for the fast path.
pub fn load_block_int(plane: &[u8], stride: usize, bx: usize, by: usize) -> IntBlock {
    let mut out = [0i32; 64];
    for y in 0..N {
        let row = &plane[(by * N + y) * stride + bx * N..];
        for x in 0..N {
            out[y * N + x] = i32::from(row[x]) - 128;
        }
    }
    out
}

/// Stores an 8×8 spatial block back into a plane, undoing the level shift
/// and clamping to `u8` (reference `f32` path).
pub fn store_block(plane: &mut [u8], stride: usize, bx: usize, by: usize, block: &Block) {
    for y in 0..N {
        for x in 0..N {
            let v = (block[y * N + x] + 128.0).round().clamp(0.0, 255.0) as u8;
            plane[(by * N + y) * stride + bx * N + x] = v;
        }
    }
}

/// Integer twin of [`store_block`]: undoes the −128 level shift and
/// clamps. The block starts at pixel `(px, py)` (not block coordinates).
pub fn store_block_int_at(plane: &mut [u8], stride: usize, px: usize, py: usize, block: &IntBlock) {
    for y in 0..N {
        let row = &mut plane[(py + y) * stride + px..];
        for x in 0..N {
            row[x] = (block[y * N + x] + 128).clamp(0, 255) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{dequantize_aan, fused_tables, quantize_aan, QScale};

    fn max_abs_diff(a: &Block, b: &Block) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
    }

    fn sample_block(seed: i32) -> Block {
        let mut block = [0.0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i as i32 * 37 + seed * 11) % 255) as f32 - 128.0;
        }
        block
    }

    #[test]
    fn roundtrip_identity() {
        let block = sample_block(0);
        let rt = inverse_reference(&forward_reference(&block));
        assert!(max_abs_diff(&block, &rt) < 0.01, "diff {}", max_abs_diff(&block, &rt));
    }

    #[test]
    fn flat_block_is_pure_dc() {
        let block = [50.0f32; 64];
        let c = forward_reference(&block);
        assert!((c[0] - 400.0).abs() < 0.01, "DC {}", c[0]); // 50 * 8
        for (i, &v) in c.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.01, "AC[{i}] = {v}");
        }
    }

    #[test]
    fn dc_only_reconstructs_flat() {
        let mut c = [0.0f32; 64];
        c[0] = 80.0;
        let s = inverse_reference(&c);
        let expect = 80.0 / 8.0;
        for &v in &s {
            assert!((v - expect).abs() < 0.01);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut block = [0.0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (((i * 73) % 200) as f32) - 100.0;
        }
        let c = forward_reference(&block);
        let es: f32 = block.iter().map(|v| v * v).sum();
        let ec: f32 = c.iter().map(|v| v * v).sum();
        assert!((es - ec).abs() / es < 1e-4, "spatial {es} vs coeff {ec}");
    }

    #[test]
    fn horizontal_cosine_hits_single_bin() {
        // A pure horizontal basis function concentrates in one coefficient.
        let mut block = [0.0f32; 64];
        for y in 0..8 {
            for x in 0..8 {
                block[y * 8 + x] =
                    ((2.0 * x as f64 + 1.0) * 3.0 * std::f64::consts::PI / 16.0).cos() as f32;
            }
        }
        let c = forward_reference(&block);
        let (mut max_i, mut max_v) = (0, 0.0f32);
        for (i, &v) in c.iter().enumerate() {
            if v.abs() > max_v {
                max_v = v.abs();
                max_i = i;
            }
        }
        assert_eq!(max_i, 3, "energy should land in (u=3, v=0)");
    }

    #[test]
    fn load_store_roundtrip() {
        let stride = 16;
        let mut plane: Vec<u8> = (0..16 * 16).map(|i| (i % 251) as u8).collect();
        let orig = plane.clone();
        let b = load_block(&plane, stride, 1, 1);
        store_block(&mut plane, stride, 1, 1, &b);
        assert_eq!(plane, orig);
        let bi = load_block_int(&plane, stride, 1, 1);
        for i in 0..64 {
            assert_eq!(bi[i] as f32, b[i]);
        }
        store_block_int_at(&mut plane, stride, 8, 8, &bi);
        assert_eq!(plane, orig);
    }

    #[test]
    fn store_clamps() {
        let stride = 8;
        let mut plane = vec![0u8; 64];
        let mut b = [0.0f32; 64];
        b[0] = 500.0; // way past 255 after level shift
        b[1] = -500.0;
        store_block(&mut plane, stride, 0, 0, &b);
        assert_eq!(plane[0], 255);
        assert_eq!(plane[1], 0);
        let mut bi = [0i32; 64];
        bi[0] = 500;
        bi[1] = -500;
        store_block_int_at(&mut plane, stride, 0, 0, &bi);
        assert_eq!(plane[0], 255);
        assert_eq!(plane[1], 0);
    }

    /// The AAN forward output, descaled by its per-coefficient factors,
    /// matches the reference matrix DCT to well under one quantiser LSB.
    #[test]
    fn forward_aan_matches_reference_descaled() {
        for seed in 0..4 {
            let fb = sample_block(seed);
            let mut ib = [0i32; 64];
            for i in 0..64 {
                ib[i] = fb[i] as i32;
            }
            let reference = forward_reference(&fb);
            let fast = forward_aan(&ib);
            for i in 0..64 {
                let (r, c) = (i / 8, i % 8);
                let scale = 8.0 * aan_scale(r) * aan_scale(c) * f64::from(1u32 << FWD_EXTRA_BITS);
                let descaled = f64::from(fast[i]) / scale;
                let err = (descaled - f64::from(reference[i])).abs();
                assert!(err < 0.75, "seed {seed} coeff {i}: {descaled} vs {}", reference[i]);
            }
        }
    }

    /// Scaling reference coefficients into the AAN inverse's input
    /// convention reproduces the reference inverse to sub-LSB accuracy.
    #[test]
    fn inverse_aan_matches_reference() {
        for seed in 0..4 {
            let spatial = sample_block(seed);
            let coeffs = forward_reference(&spatial);
            let mut scaled = [0i32; 64];
            for i in 0..64 {
                let (r, c) = (i / 8, i % 8);
                let s = aan_scale(r) * aan_scale(c) / 8.0 * f64::from(1u32 << IDCT_FRAC_BITS);
                scaled[i] = (f64::from(coeffs[i]) * s).round() as i32;
            }
            let fast = inverse_aan(&scaled);
            let reference = inverse_reference(&coeffs);
            for i in 0..64 {
                let err = (f64::from(fast[i]) - f64::from(reference[i])).abs();
                assert!(err <= 1.0, "seed {seed} sample {i}: {} vs {}", fast[i], reference[i]);
            }
        }
    }

    /// Full integer encode-side chain: AAN forward → fused quant → fused
    /// dequant → AAN inverse reconstructs within the quantiser step.
    #[test]
    fn integer_chain_bounded_error() {
        let q = QScale::new(2);
        let t = fused_tables(q, true);
        for seed in 0..4 {
            let fb = sample_block(seed);
            let mut ib = [0i32; 64];
            for i in 0..64 {
                ib[i] = fb[i] as i32;
            }
            let rec = inverse_aan(&dequantize_aan(&quantize_aan(&forward_aan(&ib), t), t));
            for i in 0..64 {
                let err = (rec[i] - ib[i]).abs();
                // Worst intra step at qscale 2 is 83·2/8 ≈ 21; spatial
                // error stays far below the summed frequency bound.
                assert!(err <= 16, "seed {seed} sample {i}: {} vs {}", rec[i], ib[i]);
            }
        }
    }

    #[test]
    fn aan_scale_values() {
        assert!((aan_scale(0) - 1.0).abs() < 1e-12);
        assert!((aan_scale(1) - 1.387_039_845).abs() < 1e-6);
        assert!((aan_scale(4) - 1.0).abs() < 1e-9); // √2·cos(π/4)
        assert!((aan_scale(7) - 0.275_899_379).abs() < 1e-6);
    }
}
