//! 8×8 forward and inverse discrete cosine transform.
//!
//! The classic type-II DCT used by MPEG-1/JPEG, implemented as two 1-D
//! passes with a precomputed cosine basis. Precision is `f32`, which keeps
//! the transform within ±0.5 of a reference double implementation —
//! comfortably inside the quantiser's dead zone.

/// An 8×8 block of spatial samples or transform coefficients, row-major.
pub type Block = [f32; 64];

const N: usize = 8;

/// Cosine basis `c[u][x] = α(u) · cos((2x+1)uπ/16)`, row = frequency.
fn basis() -> [[f32; N]; N] {
    let mut b = [[0.0f32; N]; N];
    for (u, row) in b.iter_mut().enumerate() {
        let alpha = if u == 0 { (1.0 / N as f64).sqrt() } else { (2.0 / N as f64).sqrt() };
        for (x, v) in row.iter_mut().enumerate() {
            *v = (alpha
                * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / (2.0 * N as f64))
                    .cos()) as f32;
        }
    }
    b
}

/// Forward 8×8 DCT of `block` (spatial → frequency).
pub fn forward(block: &Block) -> Block {
    let b = basis();
    let mut tmp = [0.0f32; 64];
    // Rows.
    for y in 0..N {
        for u in 0..N {
            let mut acc = 0.0f32;
            for x in 0..N {
                acc += block[y * N + x] * b[u][x];
            }
            tmp[y * N + u] = acc;
        }
    }
    // Columns.
    let mut out = [0.0f32; 64];
    for u in 0..N {
        for v in 0..N {
            let mut acc = 0.0f32;
            for y in 0..N {
                acc += tmp[y * N + u] * b[v][y];
            }
            out[v * N + u] = acc;
        }
    }
    out
}

/// Inverse 8×8 DCT of `coeffs` (frequency → spatial).
pub fn inverse(coeffs: &Block) -> Block {
    let b = basis();
    let mut tmp = [0.0f32; 64];
    // Columns.
    for u in 0..N {
        for y in 0..N {
            let mut acc = 0.0f32;
            for v in 0..N {
                acc += coeffs[v * N + u] * b[v][y];
            }
            tmp[y * N + u] = acc;
        }
    }
    // Rows.
    let mut out = [0.0f32; 64];
    for y in 0..N {
        for x in 0..N {
            let mut acc = 0.0f32;
            for u in 0..N {
                acc += tmp[y * N + u] * b[u][x];
            }
            out[y * N + x] = acc;
        }
    }
    out
}

/// Loads an 8×8 block of `u8` samples (level-shifted by −128, as MPEG
/// intra coding does) from a plane.
///
/// `stride` is the plane width; the block starts at `(bx·8, by·8)`.
pub fn load_block(plane: &[u8], stride: usize, bx: usize, by: usize) -> Block {
    let mut out = [0.0f32; 64];
    for y in 0..N {
        for x in 0..N {
            out[y * N + x] = f32::from(plane[(by * N + y) * stride + bx * N + x]) - 128.0;
        }
    }
    out
}

/// Stores an 8×8 spatial block back into a plane, undoing the level shift
/// and clamping to `u8`.
pub fn store_block(plane: &mut [u8], stride: usize, bx: usize, by: usize, block: &Block) {
    for y in 0..N {
        for x in 0..N {
            let v = (block[y * N + x] + 128.0).round().clamp(0.0, 255.0) as u8;
            plane[(by * N + y) * stride + bx * N + x] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &Block, b: &Block) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
    }

    #[test]
    fn roundtrip_identity() {
        let mut block = [0.0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37) % 255) as f32 - 128.0;
        }
        let rt = inverse(&forward(&block));
        assert!(max_abs_diff(&block, &rt) < 0.01, "diff {}", max_abs_diff(&block, &rt));
    }

    #[test]
    fn flat_block_is_pure_dc() {
        let block = [50.0f32; 64];
        let c = forward(&block);
        assert!((c[0] - 400.0).abs() < 0.01, "DC {}", c[0]); // 50 * 8
        for (i, &v) in c.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.01, "AC[{i}] = {v}");
        }
    }

    #[test]
    fn dc_only_reconstructs_flat() {
        let mut c = [0.0f32; 64];
        c[0] = 80.0;
        let s = inverse(&c);
        let expect = 80.0 / 8.0;
        for &v in &s {
            assert!((v - expect).abs() < 0.01);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut block = [0.0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (((i * 73) % 200) as f32) - 100.0;
        }
        let c = forward(&block);
        let es: f32 = block.iter().map(|v| v * v).sum();
        let ec: f32 = c.iter().map(|v| v * v).sum();
        assert!((es - ec).abs() / es < 1e-4, "spatial {es} vs coeff {ec}");
    }

    #[test]
    fn horizontal_cosine_hits_single_bin() {
        // A pure horizontal basis function concentrates in one coefficient.
        let mut block = [0.0f32; 64];
        for y in 0..8 {
            for x in 0..8 {
                block[y * 8 + x] =
                    ((2.0 * x as f64 + 1.0) * 3.0 * std::f64::consts::PI / 16.0).cos() as f32;
            }
        }
        let c = forward(&block);
        let (mut max_i, mut max_v) = (0, 0.0f32);
        for (i, &v) in c.iter().enumerate() {
            if v.abs() > max_v {
                max_v = v.abs();
                max_i = i;
            }
        }
        assert_eq!(max_i, 3, "energy should land in (u=3, v=0)");
    }

    #[test]
    fn load_store_roundtrip() {
        let stride = 16;
        let mut plane: Vec<u8> = (0..16 * 16).map(|i| (i % 251) as u8).collect();
        let orig = plane.clone();
        let b = load_block(&plane, stride, 1, 1);
        store_block(&mut plane, stride, 1, 1, &b);
        assert_eq!(plane, orig);
    }

    #[test]
    fn store_clamps() {
        let stride = 8;
        let mut plane = vec![0u8; 64];
        let mut b = [0.0f32; 64];
        b[0] = 500.0; // way past 255 after level shift
        b[1] = -500.0;
        store_block(&mut plane, stride, 0, 0, &b);
        assert_eq!(plane[0], 255);
        assert_eq!(plane[1], 0);
    }
}
