//! Bit-exact bitstream I/O with Exp-Golomb codes.
//!
//! The entropy layer of the codec: a big-endian bit writer/reader plus
//! unsigned (`ue`) and signed (`se`) Exp-Golomb codes, the universal VLC
//! family used for all runs, levels and motion vectors.
//!
//! Both sides run on a `u64` accumulator: the writer batches whole fields
//! into the accumulator and drains full bytes (the old implementation
//! pushed one *bit* per iteration into the `Vec`), the reader refills the
//! accumulator a byte at a time and serves multi-bit reads with a single
//! shift+mask. The emitted byte sequence is byte-identical to the old
//! bit-at-a-time code, including trailing-byte zero padding.
//!
//! The pre-word-level implementations are retained behind
//! [`BitWriter::new_reference`] / [`BitReader::new_reference`]: one bit
//! per iteration, exactly as the codec shipped before the fast path.
//! They emit/consume identical bytes and exist so the *whole* retained
//! reference codec path (float kernels + bitwise I/O + unpruned search)
//! can be timed against the fast path by `codec_throughput`.

use crate::error::CodecError;

/// Writes bits MSB-first into a growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Pending bits, right-aligned: the low `nbits` bits of `acc` are the
    /// not-yet-flushed tail of the stream (`<= 32` between calls on the
    /// word-level path, `< 8` on the retained bitwise path).
    acc: u64,
    nbits: u32,
    /// Use the retained bit-at-a-time reference loop.
    bitwise: bool,
}

impl BitWriter {
    /// Creates an empty writer (word-level fast path).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with `cap` bytes of pre-reserved output
    /// capacity (word-level fast path).
    pub fn with_capacity(cap: usize) -> Self {
        Self { bytes: Vec::with_capacity(cap), ..Self::default() }
    }

    /// Creates an empty writer running the retained bit-at-a-time
    /// reference loop (byte-identical output, pre-fast-path speed).
    pub fn new_reference() -> Self {
        Self { bitwise: true, ..Self::default() }
    }

    /// Creates an empty writer that reuses `buf`'s allocation (word-level
    /// fast path). The buffer is cleared; its capacity is kept, so a
    /// scratch-driven encode loop reaches a steady state with zero
    /// allocator traffic once the buffer has grown to its peak size.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { bytes: buf, ..Self::default() }
    }

    /// Like [`BitWriter::from_vec`] but running the retained
    /// bit-at-a-time reference loop.
    pub fn from_vec_reference(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { bytes: buf, bitwise: true, ..Self::default() }
    }

    /// Appends the lowest `count` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    #[inline]
    pub fn put_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "cannot write {count} bits at once");
        if self.bitwise {
            // Retained reference loop: one bit per iteration.
            for i in (0..count).rev() {
                let bit = u64::from((value >> i) & 1);
                self.acc = (self.acc << 1) | bit;
                self.nbits += 1;
                if self.nbits == 8 {
                    self.nbits = 0;
                    self.bytes.push(self.acc as u8);
                }
            }
            return;
        }
        let count = u32::from(count);
        // nbits <= 32 on entry, so nbits + count <= 64: no overflow.
        self.acc = (self.acc << count) | u64::from(value) & ((1u64 << count) - 1);
        self.nbits += count;
        if self.nbits > 32 {
            // Drain one aligned 32-bit word (big-endian, so the oldest
            // bits land first) and keep the rest pending. Deferring the
            // flush until a whole word is ready amortises the `Vec`
            // append to one call per ~4 bytes instead of one per field.
            self.nbits -= 32;
            let word = (self.acc >> self.nbits) as u32;
            self.bytes.extend_from_slice(&word.to_be_bytes());
        }
    }

    /// Appends a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.put_bits(u32::from(bit), 1);
    }

    /// Appends an unsigned Exp-Golomb code.
    #[inline]
    pub fn put_ue(&mut self, value: u32) {
        let v = value + 1;
        let bits = 32 - v.leading_zeros() as u8; // position of MSB, >= 1
        if bits <= 16 {
            // Single call: `v`'s leading zeros double as the Exp-Golomb
            // prefix, so `2·bits − 1` low bits of `v` are the whole code.
            self.put_bits(v, 2 * bits - 1);
        } else {
            self.put_bits(0, bits - 1); // leading zeros
            self.put_bits(v, bits);
        }
    }

    /// Appends a signed Exp-Golomb code (0, 1, −1, 2, −2, … mapping).
    #[inline]
    pub fn put_se(&mut self, value: i32) {
        let mapped = if value > 0 {
            (value as u32) * 2 - 1
        } else {
            (-(value as i64) as u32) * 2
        };
        self.put_ue(mapped);
    }

    /// Appends an unsigned Exp-Golomb code followed by a signed one —
    /// exactly [`BitWriter::put_ue`]`(first)` then
    /// [`BitWriter::put_se`]`(second)`, emitting the identical bit
    /// sequence. When both codes fit one 32-bit field (the common case:
    /// a run/level pair) they are concatenated into a single
    /// [`BitWriter::put_bits`] call.
    #[inline]
    pub fn put_ue_then_se(&mut self, first: u32, second: i32) {
        let mapped = if second > 0 {
            (second as u32) * 2 - 1
        } else {
            (-(second as i64) as u32) * 2
        };
        let v1 = first + 1;
        let v2 = mapped + 1;
        let b1 = 32 - v1.leading_zeros();
        let b2 = 32 - v2.leading_zeros();
        let (n1, n2) = (2 * b1 - 1, 2 * b2 - 1);
        if n1 + n2 <= 32 {
            self.put_bits((v1 << n2) | v2, (n1 + n2) as u8);
        } else {
            self.put_ue(first);
            self.put_ue(mapped);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.nbits as usize
    }

    /// Pads to a byte boundary with zero bits and returns the buffer.
    pub fn into_bytes(mut self) -> Vec<u8> {
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.bytes.push((self.acc >> self.nbits) as u8);
        }
        if self.nbits > 0 {
            // Left-align the partial tail in its byte; low bits are zero
            // padding, matching the old bit-at-a-time writer exactly.
            self.bytes.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next byte to load into the accumulator.
    byte_pos: usize,
    /// Loaded-but-unconsumed bits, right-aligned in `acc` (low `acc_bits`
    /// bits are valid stream data, oldest at the top).
    acc: u64,
    acc_bits: u32,
    /// Total bits consumed so far (for [`Self::bit_pos`]).
    consumed: usize,
    /// Use the retained bit-at-a-time reference loop.
    bitwise: bool,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes` (word-level fast path).
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, byte_pos: 0, acc: 0, acc_bits: 0, consumed: 0, bitwise: false }
    }

    /// Creates a reader running the retained bit-at-a-time reference
    /// loop (identical semantics, pre-fast-path speed).
    pub fn new_reference(bytes: &'a [u8]) -> Self {
        Self { bitwise: true, ..Self::new(bytes) }
    }

    /// Tops up the accumulator a byte at a time (to at most 64 valid bits).
    #[inline]
    fn refill(&mut self) {
        while self.acc_bits <= 56 {
            match self.bytes.get(self.byte_pos) {
                Some(&b) => {
                    self.acc = (self.acc << 8) | u64::from(b);
                    self.acc_bits += 8;
                    self.byte_pos += 1;
                }
                None => break,
            }
        }
    }

    /// Reads `count` bits as an unsigned value.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] at end of input (the request is
    /// checked against the remaining bit budget *before* any state
    /// changes, so a failed read consumes nothing).
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    #[inline]
    pub fn get_bits(&mut self, count: u8) -> Result<u32, CodecError> {
        assert!(count <= 32, "cannot read {count} bits at once");
        let count = u32::from(count);
        if count == 0 {
            return Ok(0);
        }
        if self.bitwise {
            // Retained reference loop: one bit per iteration. The budget
            // check happens up front so a failed read consumes nothing
            // (same contract as the fast path).
            if self.consumed + count as usize > self.bytes.len() * 8 {
                return Err(CodecError::Malformed { reason: "bitstream underrun".into() });
            }
            let mut v = 0u32;
            for _ in 0..count {
                let bit = (self.bytes[self.consumed / 8] >> (7 - self.consumed % 8)) & 1;
                v = (v << 1) | u32::from(bit);
                self.consumed += 1;
            }
            return Ok(v);
        }
        if self.acc_bits < count {
            self.refill();
            if self.acc_bits < count {
                return Err(CodecError::Malformed { reason: "bitstream underrun".into() });
            }
        }
        self.acc_bits -= count;
        self.consumed += count as usize;
        Ok(((self.acc >> self.acc_bits) & ((1u64 << count) - 1)) as u32)
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] at end of input.
    pub fn get_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.get_bits(1)? == 1)
    }

    /// Reads an unsigned Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] at end of input or for a code
    /// longer than 32 bits.
    #[inline]
    pub fn get_ue(&mut self) -> Result<u32, CodecError> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 31 {
                return Err(CodecError::Malformed { reason: "exp-golomb code too long".into() });
            }
        }
        let rest = self.get_bits(zeros)?;
        Ok(((1u32 << zeros) | rest) - 1)
    }

    /// Reads a signed Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] at end of input.
    #[inline]
    pub fn get_se(&mut self) -> Result<i32, CodecError> {
        let v = self.get_ue()?;
        if v % 2 == 1 {
            Ok(v.div_ceil(2) as i32)
        } else {
            Ok(-((v / 2) as i32))
        }
    }

    /// Current bit position (bits consumed so far).
    pub fn bit_pos(&self) -> usize {
        self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0xFFFF, 16);
        w.put_bit(false);
        w.put_bits(0b11, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert_eq!(r.get_bits(16).unwrap(), 0xFFFF);
        assert!(!r.get_bit().unwrap());
        assert_eq!(r.get_bits(2).unwrap(), 0b11);
    }

    #[test]
    fn ue_small_values() {
        // Classic table: 0→1, 1→010, 2→011, 3→00100 …
        for v in 0..200u32 {
            let mut w = BitWriter::new();
            w.put_ue(v);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn ue_zero_is_single_bit() {
        let mut w = BitWriter::new();
        w.put_ue(0);
        assert_eq!(w.bit_len(), 1);
    }

    #[test]
    fn se_roundtrip() {
        for v in -300..=300i32 {
            let mut w = BitWriter::new();
            w.put_se(v);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.get_se().unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn se_ordering_is_compact() {
        // Smaller magnitudes get shorter codes.
        let len = |v: i32| {
            let mut w = BitWriter::new();
            w.put_se(v);
            w.bit_len()
        };
        assert!(len(0) < len(1));
        assert!(len(1) <= len(-1));
        assert!(len(-1) < len(5));
    }

    #[test]
    fn mixed_sequence_roundtrip() {
        let mut w = BitWriter::new();
        let seq: Vec<i32> = vec![0, -1, 7, 100, -42, 3, 0, 0, 255, -128];
        for &v in &seq {
            w.put_se(v);
            w.put_ue(v.unsigned_abs());
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &seq {
            assert_eq!(r.get_se().unwrap(), v);
            assert_eq!(r.get_ue().unwrap(), v.unsigned_abs());
        }
    }

    #[test]
    fn underrun_is_error() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.get_bits(8).is_ok());
        assert!(r.get_bit().is_err());
    }

    #[test]
    fn large_ue_values() {
        for v in [1_000u32, 65_535, 1 << 20, u32::MAX / 4] {
            let mut w = BitWriter::new();
            w.put_ue(v);
            let bytes = w.into_bytes();
            assert_eq!(BitReader::new(&bytes).get_ue().unwrap(), v);
        }
    }

    /// The old bit-at-a-time writer, kept as a byte-identity oracle.
    #[derive(Default)]
    struct OracleWriter {
        bytes: Vec<u8>,
        bit_pos: u8,
    }

    impl OracleWriter {
        fn put_bits(&mut self, value: u32, count: u8) {
            for i in (0..count).rev() {
                let bit = (value >> i) & 1;
                if self.bit_pos == 0 {
                    self.bytes.push(0);
                }
                let last = self.bytes.len() - 1;
                self.bytes[last] |= (bit as u8) << (7 - self.bit_pos);
                self.bit_pos = (self.bit_pos + 1) % 8;
            }
        }
    }

    #[test]
    fn word_writer_byte_identical_to_bitwise_oracle() {
        let mut w = BitWriter::new();
        let mut o = OracleWriter::default();
        let mut state = 0x2545F491u32;
        for i in 0..4000u32 {
            // xorshift-ish mix for varied field widths and values.
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            let count = (state % 33) as u8;
            let value = state.rotate_left(i % 32);
            w.put_bits(value, count);
            o.put_bits(value, count);
        }
        assert_eq!(w.into_bytes(), o.bytes);
    }

    #[test]
    fn fused_ue_se_matches_separate_calls() {
        let mut fused = BitWriter::new();
        let mut separate = BitWriter::new();
        let mut state = 0x9E3779B9u32;
        let mut cases: Vec<(u32, i32)> =
            vec![(0, 0), (0, 1), (0, -1), (62, 2047), (62, -2048), (63, 0), (u32::MAX / 4, i32::MAX / 4)];
        for _ in 0..2000 {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            let run = state % 64;
            let level = ((state >> 8) % 4096) as i32 - 2048;
            cases.push((run, level));
        }
        for &(run, level) in &cases {
            fused.put_ue_then_se(run, level);
            separate.put_ue(run);
            separate.put_se(level);
        }
        assert_eq!(fused.bit_len(), separate.bit_len());
        let bytes = fused.into_bytes();
        assert_eq!(bytes, separate.into_bytes());
        // And the stream still parses field-by-field.
        let mut r = BitReader::new(&bytes);
        for &(run, level) in &cases {
            assert_eq!(r.get_ue().unwrap(), run);
            assert_eq!(r.get_se().unwrap(), level);
        }
    }

    #[test]
    fn get_bits_zero_is_noop() {
        let mut r = BitReader::new(&[0xAB]);
        assert_eq!(r.get_bits(0).unwrap(), 0);
        assert_eq!(r.bit_pos(), 0);
        assert_eq!(r.get_bits(8).unwrap(), 0xAB);
        assert_eq!(r.get_bits(0).unwrap(), 0); // also fine at EOF
    }

    #[test]
    fn failed_read_consumes_nothing() {
        let mut r = BitReader::new(&[0b1010_0000]);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert!(r.get_bits(6).is_err());
        assert_eq!(r.bit_pos(), 3, "failed read must not advance");
        assert_eq!(r.get_bits(5).unwrap(), 0);
    }

    #[test]
    fn reader_crosses_accumulator_refills() {
        // > 64 bits of alternating fields forces several refills.
        let mut w = BitWriter::new();
        for i in 0..64u32 {
            w.put_bits(i, 7);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for i in 0..64u32 {
            assert_eq!(r.get_bits(7).unwrap(), i);
        }
        assert_eq!(r.bit_pos(), 64 * 7);
    }

    #[test]
    fn reference_writer_and_reader_match_fast_path() {
        let mut fast = BitWriter::new();
        let mut refr = BitWriter::new_reference();
        let mut state = 0x9E3779B9u32;
        let mut fields = Vec::new();
        for i in 0..2000u32 {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            let count = (state % 33) as u8;
            let value = state.rotate_left(i % 32);
            fast.put_bits(value, count);
            refr.put_bits(value, count);
            fields.push((value, count));
        }
        let bytes = fast.into_bytes();
        assert_eq!(bytes, refr.into_bytes(), "reference writer must be byte-identical");
        let mut fr = BitReader::new(&bytes);
        let mut rr = BitReader::new_reference(&bytes);
        for &(value, count) in &fields {
            let expect = if count == 0 { 0 } else { value & (((1u64 << count) - 1) as u32) };
            assert_eq!(fr.get_bits(count).unwrap(), expect);
            assert_eq!(rr.get_bits(count).unwrap(), expect);
            assert_eq!(fr.bit_pos(), rr.bit_pos());
        }
    }

    #[test]
    fn reference_reader_failed_read_consumes_nothing() {
        let mut r = BitReader::new_reference(&[0b1010_0000]);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert!(r.get_bits(6).is_err());
        assert_eq!(r.bit_pos(), 3);
        assert_eq!(r.get_bits(5).unwrap(), 0);
        assert!(r.get_bit().is_err());
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.put_bits(0, 3);
        assert_eq!(w.bit_len(), 8);
        w.put_bit(true);
        assert_eq!(w.bit_len(), 9);
    }
}
