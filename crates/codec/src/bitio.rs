//! Bit-exact bitstream I/O with Exp-Golomb codes.
//!
//! The entropy layer of the codec: a big-endian bit writer/reader plus
//! unsigned (`ue`) and signed (`se`) Exp-Golomb codes, the universal VLC
//! family used for all runs, levels and motion vectors.

use crate::error::CodecError;

/// Writes bits MSB-first into a growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the trailing partial byte (0..8).
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the lowest `count` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn put_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "cannot write {count} bits at once");
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.len() - 1;
            self.bytes[last] |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Appends a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.put_bits(u32::from(bit), 1);
    }

    /// Appends an unsigned Exp-Golomb code.
    pub fn put_ue(&mut self, value: u32) {
        let v = value + 1;
        let bits = 32 - v.leading_zeros() as u8; // position of MSB, >= 1
        self.put_bits(0, bits - 1); // leading zeros
        self.put_bits(v, bits);
    }

    /// Appends a signed Exp-Golomb code (0, 1, −1, 2, −2, … mapping).
    pub fn put_se(&mut self, value: i32) {
        let mapped = if value > 0 {
            (value as u32) * 2 - 1
        } else {
            (-(value as i64) as u32) * 2
        };
        self.put_ue(mapped);
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Pads to a byte boundary with zero bits and returns the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads `count` bits as an unsigned value.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] at end of input.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn get_bits(&mut self, count: u8) -> Result<u32, CodecError> {
        assert!(count <= 32, "cannot read {count} bits at once");
        let mut v = 0u32;
        for _ in 0..count {
            let byte = self
                .bytes
                .get(self.pos / 8)
                .ok_or_else(|| CodecError::Malformed { reason: "bitstream underrun".into() })?;
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | u32::from(bit);
            self.pos += 1;
        }
        Ok(v)
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] at end of input.
    pub fn get_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.get_bits(1)? == 1)
    }

    /// Reads an unsigned Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] at end of input or for a code
    /// longer than 32 bits.
    pub fn get_ue(&mut self) -> Result<u32, CodecError> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 31 {
                return Err(CodecError::Malformed { reason: "exp-golomb code too long".into() });
            }
        }
        let rest = self.get_bits(zeros)?;
        Ok(((1u32 << zeros) | rest) - 1)
    }

    /// Reads a signed Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] at end of input.
    pub fn get_se(&mut self) -> Result<i32, CodecError> {
        let v = self.get_ue()?;
        if v % 2 == 1 {
            Ok(v.div_ceil(2) as i32)
        } else {
            Ok(-((v / 2) as i32))
        }
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0xFFFF, 16);
        w.put_bit(false);
        w.put_bits(0b11, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert_eq!(r.get_bits(16).unwrap(), 0xFFFF);
        assert!(!r.get_bit().unwrap());
        assert_eq!(r.get_bits(2).unwrap(), 0b11);
    }

    #[test]
    fn ue_small_values() {
        // Classic table: 0→1, 1→010, 2→011, 3→00100 …
        for v in 0..200u32 {
            let mut w = BitWriter::new();
            w.put_ue(v);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn ue_zero_is_single_bit() {
        let mut w = BitWriter::new();
        w.put_ue(0);
        assert_eq!(w.bit_len(), 1);
    }

    #[test]
    fn se_roundtrip() {
        for v in -300..=300i32 {
            let mut w = BitWriter::new();
            w.put_se(v);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.get_se().unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn se_ordering_is_compact() {
        // Smaller magnitudes get shorter codes.
        let len = |v: i32| {
            let mut w = BitWriter::new();
            w.put_se(v);
            w.bit_len()
        };
        assert!(len(0) < len(1));
        assert!(len(1) <= len(-1));
        assert!(len(-1) < len(5));
    }

    #[test]
    fn mixed_sequence_roundtrip() {
        let mut w = BitWriter::new();
        let seq: Vec<i32> = vec![0, -1, 7, 100, -42, 3, 0, 0, 255, -128];
        for &v in &seq {
            w.put_se(v);
            w.put_ue(v.unsigned_abs());
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &seq {
            assert_eq!(r.get_se().unwrap(), v);
            assert_eq!(r.get_ue().unwrap(), v.unsigned_abs());
        }
    }

    #[test]
    fn underrun_is_error() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.get_bits(8).is_ok());
        assert!(r.get_bit().is_err());
    }

    #[test]
    fn large_ue_values() {
        for v in [1_000u32, 65_535, 1 << 20, u32::MAX / 4] {
            let mut w = BitWriter::new();
            w.put_ue(v);
            let bytes = w.into_bytes();
            assert_eq!(BitReader::new(&bytes).get_ue().unwrap(), v);
        }
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.put_bits(0, 3);
        assert_eq!(w.bit_len(), 8);
        w.put_bit(true);
        assert_eq!(w.bit_len(), 9);
    }
}
