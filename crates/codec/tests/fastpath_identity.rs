//! Fast-path identity matrix + robustness properties.
//!
//! The codec fast path (fixed-point AAN transforms, fused quant,
//! early-exit seeded motion search, word-level bit I/O, band/GOP
//! fan-out) is only allowed to change *wall-clock*, never bytes. This
//! suite pins that contract:
//!
//! * a clip × qscale × worker-count matrix asserting bitstream and
//!   reconstruction identity for every parallelism level and for
//!   exhaustive vs. early-exit motion search;
//! * `check!` properties for early-exit/exhaustive SAD equivalence and
//!   word-level vs. bit-at-a-time bit I/O equivalence;
//! * a malformed-bitstream fuzz property: random garbage and bit-flipped
//!   real streams must decode to `Err` or a frame, never panic.
//!
//! When `ANNOLIGHT_CODEC_LOG` names a file, the identity matrix appends
//! one digest line per configuration; CI runs the suite twice with the
//! same seed and `cmp`s the logs to pin cross-run determinism.

use annolight_codec::motion::{self, MotionVector, SearchMode};
use annolight_codec::quant::QScale;
use annolight_codec::{Decoder, EncodedStream, Encoder, EncoderConfig};
use annolight_core::parallel::ParallelConfig;
use annolight_imgproc::{Frame, Yuv420Frame};
use annolight_support::check;
use annolight_video::ClipLibrary;

const WORKER_COUNTS: [usize; 5] = [0, 1, 2, 4, 7];
const QSCALES: [u8; 3] = [2, 8, 24];
const CLIPS: [&str; 2] = ["themovie", "ice_age"];

fn clip_frames(name: &str) -> (Vec<Frame>, EncoderConfig) {
    let clip = ClipLibrary::paper_clip(name).expect("library clip").preview(0.75);
    let (w, h) = clip.dimensions();
    let cfg = EncoderConfig {
        width: w,
        height: h,
        fps: clip.fps(),
        gop_size: 4, // several closed GOPs per batch → real fan-out
        ..EncoderConfig::default()
    };
    (clip.frames().collect(), cfg)
}

/// Appends one digest line to `$ANNOLIGHT_CODEC_LOG`, if set. CI runs
/// the suite twice with the same seed and compares the two logs.
fn log_digest(clip: &str, q: u8, workers: usize, stream: &EncodedStream, frames: &[Yuv420Frame]) {
    let Ok(path) = std::env::var("ANNOLIGHT_CODEC_LOG") else { return };
    let mut d = annolight_core::digest::Digester::new();
    d.write(stream.as_bytes());
    for f in frames {
        d.write(f.y_plane()).write(f.u_plane()).write(f.v_plane());
    }
    let digest = d.finish();
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open codec digest log");
    writeln!(f, "{clip} q{q} workers={workers} {digest:#018x}").expect("append digest line");
}

fn encode_with(
    frames: &[Frame],
    cfg: EncoderConfig,
    workers: usize,
    search: SearchMode,
) -> EncodedStream {
    let mut enc = Encoder::new(cfg)
        .expect("valid config")
        .with_parallelism(ParallelConfig::with_workers(workers))
        .with_search_mode(search);
    enc.push_user_data(b"identity-matrix");
    enc.push_frames(frames).expect("frames match config");
    enc.finish()
}

/// The clip × qscale × workers matrix: every encode emits the serial
/// stream byte-for-byte, every decode reconstructs the serial frames
/// byte-for-byte, and exhaustive SAD changes nothing.
#[test]
fn bitstream_and_reconstruction_identity_matrix() {
    for clip in CLIPS {
        let (frames, base_cfg) = clip_frames(clip);
        for q in QSCALES {
            let cfg = EncoderConfig { qscale: QScale::new(q), ..base_cfg };
            let baseline = encode_with(&frames, cfg, 0, SearchMode::EarlyExit);
            // Exhaustive SAD: bit-identical vectors → identical stream.
            let exhaustive = encode_with(&frames, cfg, 0, SearchMode::Exhaustive);
            assert_eq!(
                baseline.as_bytes(),
                exhaustive.as_bytes(),
                "{clip} q{q}: exhaustive SAD changed the bitstream"
            );
            let reference_frames: Vec<Yuv420Frame> = Decoder::new(&baseline)
                .expect("stream parses")
                .decode_all_yuv()
                .expect("stream decodes");
            for workers in WORKER_COUNTS {
                let stream = encode_with(&frames, cfg, workers, SearchMode::EarlyExit);
                assert_eq!(
                    stream.as_bytes(),
                    baseline.as_bytes(),
                    "{clip} q{q} workers {workers}: bitstream differs"
                );
                let decoded = Decoder::new(&baseline)
                    .expect("stream parses")
                    .with_parallelism(ParallelConfig::with_workers(workers))
                    .decode_all_yuv()
                    .expect("stream decodes");
                assert_eq!(
                    decoded, reference_frames,
                    "{clip} q{q} workers {workers}: reconstruction differs"
                );
                log_digest(clip, q, workers, &stream, &decoded);
            }
        }
    }
}

/// The retained reference path (float kernels + bitwise I/O + unpruned
/// exhaustive search) must also be deterministic and self-consistent:
/// its encoder and decoder round-trip, and its search mode choice does
/// not change its bytes either.
#[test]
fn reference_path_is_self_consistent()  {
    let (frames, cfg) = clip_frames("themovie");
    let encode_ref = |search: SearchMode| {
        let mut enc = Encoder::new(cfg)
            .expect("valid config")
            .with_reference_kernels(true)
            .with_search_mode(search);
        enc.push_frames(&frames).expect("frames match config");
        enc.finish()
    };
    let a = encode_ref(SearchMode::Exhaustive);
    let b = encode_ref(SearchMode::EarlyExit);
    assert_eq!(a.as_bytes(), b.as_bytes(), "search mode changed reference-path bytes");
    let decoded = Decoder::new(&a)
        .expect("parses")
        .with_reference_kernels(true)
        .decode_all()
        .expect("decodes");
    assert_eq!(decoded.len() as u32, a.frame_count());
}

fn random_plane(g: &mut annolight_support::check::Gen, w: usize, h: usize) -> Vec<u8> {
    // Smooth-ish content with occasional hard edges: exercises both the
    // early-exit abort and ties.
    let base: u8 = g.draw(0u8..=255);
    let mut plane = vec![base; w * h];
    for _ in 0..g.draw(0usize..24) {
        let x0 = g.draw(0usize..w);
        let y0 = g.draw(0usize..h);
        let bw = g.draw(1usize..=16).min(w - x0);
        let bh = g.draw(1usize..=16).min(h - y0);
        let v: u8 = g.draw(0u8..=255);
        for y in y0..y0 + bh {
            for x in x0..x0 + bw {
                plane[y * w + x] = v;
            }
        }
    }
    plane
}

check! {
    /// Early-exit and exhaustive SAD return identical vectors and SADs
    /// for every macroblock of random frame pairs, with and without
    /// predictor seeds (the invariant that lets the bench's baseline
    /// and the fast path share one bitstream).
    fn early_exit_search_equals_exhaustive(g, cases = 48) {
        let (w, h) = (48usize, 48usize);
        let reference = random_plane(g, w, h);
        let cur = random_plane(g, w, h);
        let seeds = [
            MotionVector { dx: g.draw(-8i8..=8), dy: g.draw(-8i8..=8) },
            MotionVector { dx: g.draw(-8i8..=8), dy: g.draw(-8i8..=8) },
        ];
        for mby in 0..h / 16 {
            for mbx in 0..w / 16 {
                for seed_list in [&seeds[..], &[]] {
                    let fast = motion::estimate_halfpel_seeded(
                        &cur, &reference, w, h, mbx, mby, seed_list, SearchMode::EarlyExit);
                    let full = motion::estimate_halfpel_seeded(
                        &cur, &reference, w, h, mbx, mby, seed_list, SearchMode::Exhaustive);
                    assert_eq!(fast, full, "mb ({mbx},{mby}) seeds={}", seed_list.len());
                }
            }
        }
    }

    /// Word-level and retained bit-at-a-time bit I/O are byte-identical
    /// writers and value-identical readers over random field sequences.
    fn word_level_bitio_equals_bitwise(g, cases = 64) {
        use annolight_codec::bitio::{BitReader, BitWriter};
        let fields = g.vec(1usize..200, |g| {
            let count: u8 = g.draw(0u8..=32);
            let value: u32 = g.any::<u32>();
            (value, count)
        });
        let mut fast = BitWriter::new();
        let mut slow = BitWriter::new_reference();
        for &(v, c) in &fields {
            fast.put_bits(v, c);
            slow.put_bits(v, c);
        }
        assert_eq!(fast.bit_len(), slow.bit_len());
        let bytes = fast.into_bytes();
        assert_eq!(bytes, slow.into_bytes());
        let mut fast_r = BitReader::new(&bytes);
        let mut slow_r = BitReader::new_reference(&bytes);
        for &(v, c) in &fields {
            let masked = if c == 0 { 0 } else { v & (u32::MAX >> (32 - u32::from(c))) };
            assert_eq!(fast_r.get_bits(c).unwrap(), masked);
            assert_eq!(slow_r.get_bits(c).unwrap(), masked);
        }
    }

    /// Random garbage fed to the container/picture parsers returns
    /// `Err` or parses — it must never panic (the `check!` runner turns
    /// any panic into a property failure).
    fn random_bytes_never_panic_the_decoder(g, cases = 192) {
        let mut bytes = g.vec(0usize..600, |g| g.any::<u8>());
        // Half the cases get a valid magic + plausible header so the
        // fuzz reaches past the first guard.
        if bytes.len() >= 17 && g.any::<bool>() {
            bytes[..4].copy_from_slice(b"ALV1");
            let w = 16 * g.draw(1u16..=4);
            let h = 16 * g.draw(1u16..=4);
            bytes[4..6].copy_from_slice(&w.to_le_bytes());
            bytes[6..8].copy_from_slice(&h.to_le_bytes());
        }
        if let Ok(mut dec) = Decoder::from_bytes(&bytes) {
            let _ = dec.decode_all();
        }
    }

    /// Bit-flipped real streams decode to `Err` or to frames — never a
    /// panic — under both serial and parallel decoding.
    fn corrupted_streams_never_panic(g, cases = 48) {
        let frames: Vec<Frame> = (0..6u32)
            .map(|i| Frame::from_fn(32, 32, |x, y| {
                let v = ((x * 3 + y * 5 + i * 7) % 251) as u8;
                [v, v ^ 0x55, 255 - v]
            }))
            .collect();
        let cfg = EncoderConfig {
            width: 32,
            height: 32,
            fps: 12.0,
            gop_size: 3,
            qscale: QScale::new(g.draw(1u8..=31)),
            target_bitrate_bps: None,
        };
        let mut enc = Encoder::new(cfg).expect("valid config");
        enc.push_user_data(b"fuzz");
        enc.push_frames(&frames).expect("frames match config");
        let mut bytes = enc.finish().as_bytes().to_vec();
        for _ in 0..g.draw(1usize..=8) {
            let bit = g.draw(0usize..bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        let workers = g.draw(0usize..=3);
        if let Ok(dec) = Decoder::from_bytes(&bytes) {
            let _ = dec
                .with_parallelism(ParallelConfig::with_workers(workers))
                .decode_all();
        }
    }
}
