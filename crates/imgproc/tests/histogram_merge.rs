//! Property tests for the parallel pipeline's reduction step: histogram
//! merging must be **order- and partitioning-independent**, and the
//! fixed-point LUT compensation kernel must match the scalar fixed-point
//! path **exactly** (0 ULP — they are the same integer formula).
//!
//! These are the algebraic facts the byte-identity guarantee of
//! `tests/parallel_identity.rs` rests on: chunked profiling merges
//! per-chunk histograms in whatever order workers finish, and the
//! compensation stage may evaluate the LUT or the scalar kernel — both
//! must be invisible in the output bytes.
//!
//! Runs on the in-tree seeded `check!` harness
//! (`ANNOLIGHT_CHECK_SEED=<seed>` replays a failing case).

use annolight_imgproc::{
    contrast_enhance, contrast_enhance_scalar, compensation_fixed_factor, scale_channel_fixed,
    CompensationLut, Frame, Histogram,
};

/// Splits `samples` into `cuts`-delimited contiguous parts and builds a
/// histogram per part.
fn partition_histograms(samples: &[u8], mut cuts: Vec<usize>) -> Vec<Histogram> {
    cuts.sort_unstable();
    cuts.dedup();
    let mut parts = Vec::new();
    let mut start = 0;
    for c in cuts {
        let c = c.min(samples.len());
        parts.push(Histogram::from_samples(samples[start..c].iter().copied()));
        start = c;
    }
    parts.push(Histogram::from_samples(samples[start..].iter().copied()));
    parts
}

annolight_support::check! {
    /// Merging the partition histograms of *any* contiguous partition
    /// reproduces the whole-input histogram bin-for-bin.
    fn merge_is_partition_independent(g) {
        let samples = g.vec(1..1024usize, |g| g.any::<u8>());
        let n_cuts = g.draw(0..6usize);
        let cuts: Vec<usize> = (0..n_cuts).map(|_| g.draw(0..=samples.len())).collect();
        let whole = Histogram::from_samples(samples.iter().copied());
        let parts = partition_histograms(&samples, cuts);
        let merged = Histogram::merged(parts.iter());
        assert_eq!(whole.bins(), merged.bins(), "partitioning leaked into the merge");
    }

    /// Merge order never matters: a reversed (worker-completion-order)
    /// merge equals the in-order merge bin-for-bin.
    fn merge_is_order_independent(g) {
        let samples = g.vec(1..1024usize, |g| g.any::<u8>());
        let n_cuts = g.draw(1..6usize);
        let cuts: Vec<usize> = (0..n_cuts).map(|_| g.draw(0..=samples.len())).collect();
        let parts = partition_histograms(&samples, cuts);
        let forward = Histogram::merged(parts.iter());
        let backward = Histogram::merged(parts.iter().rev());
        assert_eq!(forward.bins(), backward.bins(), "merge order leaked into the result");
        // Interleaved (odd indices first) — a realistic worker finish order.
        let interleaved: Vec<&Histogram> = parts
            .iter()
            .skip(1)
            .step_by(2)
            .chain(parts.iter().step_by(2))
            .collect();
        let shuffled = Histogram::merged(interleaved.into_iter());
        assert_eq!(forward.bins(), shuffled.bins());
    }

    /// Merged statistics match the whole-input statistics exactly —
    /// clip levels and counts are integer functions of the bins.
    fn merged_statistics_match_whole_input(g) {
        let samples = g.vec(1..512usize, |g| g.any::<u8>());
        let cut = g.draw(0..=samples.len());
        let whole = Histogram::from_samples(samples.iter().copied());
        let merged = Histogram::merged(partition_histograms(&samples, vec![cut]).iter());
        assert_eq!(whole.total(), merged.total());
        assert_eq!(whole.max_nonzero(), merged.max_nonzero());
        for q in [0.0, 0.05, 0.10, 0.15, 0.20] {
            assert_eq!(whole.clip_level(q), merged.clip_level(q), "clip level at {q}");
        }
    }

    /// The per-frame LUT equals the scalar fixed-point kernel exactly:
    /// same output byte, same clip flag, same overshoot bits, for any
    /// factor and any frame (0 ULP — both are `(c·k_fixed + 2^15) >> 16`).
    fn lut_kernel_equals_scalar_kernel_exactly(g) {
        let k: f32 = g.draw(0.0f32..8.0);
        let pixels = g.vec(1..128usize, |g| g.any::<[u8; 3]>());
        let w = pixels.len() as u32;
        let frame = Frame::from_rgb_buffer(w, 1, pixels.iter().flatten().copied().collect())
            .expect("buffer matches dimensions");
        let mut via_lut = frame.clone();
        let mut via_scalar = frame.clone();
        let lut_stats = contrast_enhance(&mut via_lut, k);
        let scalar_stats = contrast_enhance_scalar(&mut via_scalar, k);
        assert_eq!(via_lut.as_bytes(), via_scalar.as_bytes(), "k={k}: pixel bytes diverged");
        assert_eq!(lut_stats.clipped_pixels, scalar_stats.clipped_pixels, "k={k}");
        assert_eq!(
            lut_stats.max_overshoot.to_bits(),
            scalar_stats.max_overshoot.to_bits(),
            "k={k}: overshoot bits diverged"
        );
        // And the table entries are literally the scalar formula.
        let lut = CompensationLut::new(k);
        let k_fixed = compensation_fixed_factor(k);
        let c: u8 = g.any::<u8>();
        let (v, clipped, overshoot) = scale_channel_fixed(c, k_fixed);
        assert_eq!(lut.value(c), v);
        assert_eq!(lut.is_clipped(c), clipped);
        assert_eq!(lut.overshoot(c).to_bits(), overshoot.to_bits());
    }
}
