//! 256-bin luminance histograms and the statistics read off them.
//!
//! The paper uses histograms in two ways:
//!
//! 1. **Analysis** (§4.3): the effective maximum luminance of a scene under
//!    a quality level *q* is the histogram level below which at least
//!    `1 − q` of the pixels lie — the brightest `q` fraction is allowed to
//!    clip. [`Histogram::clip_level`] implements this.
//! 2. **Validation** (§4.2): snapshots of the PDA screen taken with a
//!    digital camera are compared via their histograms, which capture both
//!    the *average luminance* and the *dynamic range* of an image (Fig. 3).
//!    [`Histogram::mean`], [`Histogram::dynamic_range`] and the distance
//!    metrics implement this.


/// A 256-bin histogram of 8-bit luminance values.
///
/// # Example
///
/// ```
/// use annolight_imgproc::Histogram;
/// let mut h = Histogram::new();
/// for v in [10u8, 10, 20, 240] {
///     h.add(v);
/// }
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.max_nonzero(), Some(240));
/// // Allowing 25% of pixels to clip removes the single bright outlier.
/// assert_eq!(h.clip_level(0.25), 20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: [u64; 256],
    total: u64,
}

annolight_support::impl_json!(struct Histogram { bins, total });

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram. The bins live inline (no heap
    /// allocation), so a histogram can be built on the stack and reused
    /// via [`Histogram::reset`] on allocation-free hot paths.
    pub fn new() -> Self {
        Self { bins: [0; 256], total: 0 }
    }

    /// Builds a histogram from an iterator of luminance samples.
    /// Allocation-free: the bins are inline storage.
    pub fn from_samples<I: IntoIterator<Item = u8>>(samples: I) -> Self {
        let mut h = Self::new();
        for s in samples {
            h.add(s);
        }
        h
    }

    /// Clears every bin and the total, reusing the histogram in place
    /// (the steady-state profiling loop resets one histogram per frame
    /// instead of constructing a new one).
    pub fn reset(&mut self) {
        self.bins = [0; 256];
        self.total = 0;
    }

    /// Adds a full 256-bin block of counts at once (the reduction step
    /// of the SIMD histogram kernels, which accumulate per-lane partial
    /// counts on the stack). Equivalent to 256 [`Histogram::add_count`]
    /// calls; the sum is order-independent.
    pub fn add_bin_counts(&mut self, counts: &[u32; 256]) {
        for (bin, &c) in self.bins.iter_mut().zip(counts.iter()) {
            *bin += u64::from(c);
            self.total += u64::from(c);
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, value: u8) {
        self.bins[value as usize] += 1;
        self.total += 1;
    }

    /// Adds `count` samples of the same value.
    pub fn add_count(&mut self, value: u8, count: u64) {
        self.bins[value as usize] += count;
        self.total += count;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Merges any number of histograms into one.
    ///
    /// Bin counts are unsigned integer sums, so the reduction is
    /// **order- and partitioning-independent**: merging per-chunk
    /// histograms in any order equals the monolithic histogram of the
    /// concatenated samples. The parallel profiling pipeline leans on
    /// this to produce byte-identical scene histograms for every worker
    /// count (and the property tests in `tests/histogram_merge.rs` pin
    /// it down).
    pub fn merged<'a, I>(parts: I) -> Histogram
    where
        I: IntoIterator<Item = &'a Histogram>,
    {
        let mut h = Histogram::new();
        for p in parts {
            h.merge(p);
        }
        h
    }

    /// Count in bin `value`.
    pub fn bin(&self, value: u8) -> u64 {
        self.bins[value as usize]
    }

    /// All 256 bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns `true` when no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean sample value ("average point" in Fig. 3); `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.bins.iter().enumerate().map(|(v, &c)| v as u64 * c).sum();
        sum as f64 / self.total as f64
    }

    /// Smallest value with a non-zero count.
    pub fn min_nonzero(&self) -> Option<u8> {
        self.bins.iter().position(|&c| c > 0).map(|v| v as u8)
    }

    /// Largest value with a non-zero count.
    pub fn max_nonzero(&self) -> Option<u8> {
        self.bins.iter().rposition(|&c| c > 0).map(|v| v as u8)
    }

    /// Dynamic range `max − min` of the occupied bins (Fig. 3); `0` when
    /// empty.
    pub fn dynamic_range(&self) -> u8 {
        match (self.min_nonzero(), self.max_nonzero()) {
            (Some(lo), Some(hi)) => hi - lo,
            _ => 0,
        }
    }

    /// The `p`-quantile value (`p` in `[0, 1]`): the smallest value `v`
    /// such that at least `p · total` samples are `≤ v`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a finite value in `[0, 1]`.
    pub fn percentile(&self, p: f64) -> u8 {
        assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0, 1]");
        if self.total == 0 {
            return 0;
        }
        let target = (p * self.total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (v, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return v as u8;
            }
        }
        255
    }

    /// Effective maximum luminance when the brightest `quality` fraction of
    /// pixels may clip (§4.3, Fig. 5).
    ///
    /// Returns the smallest value `v` such that the number of samples
    /// strictly above `v` is at most `quality · total`. With `quality = 0`
    /// this is exactly [`Histogram::max_nonzero`] (or 0 when empty).
    ///
    /// # Panics
    ///
    /// Panics if `quality` is not a finite value in `[0, 1]`.
    pub fn clip_level(&self, quality: f64) -> u8 {
        assert!((0.0..=1.0).contains(&quality), "quality {quality} outside [0, 1]");
        if self.total == 0 {
            return 0;
        }
        let budget = (quality * self.total as f64).floor() as u64;
        let mut above = 0u64;
        // Walk down from the top; stop before the clipped tail exceeds the
        // budget.
        for v in (0..256usize).rev() {
            let next = above + self.bins[v];
            if next > budget {
                return v as u8;
            }
            above = next;
        }
        0
    }

    /// Number of samples strictly above `level` (the pixels that clip when
    /// `level` is used as the scene maximum).
    pub fn count_above(&self, level: u8) -> u64 {
        self.bins[(level as usize + 1)..].iter().sum()
    }

    /// Fraction of samples strictly above `level`; `0.0` when empty.
    pub fn fraction_above(&self, level: u8) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count_above(level) as f64 / self.total as f64
    }

    /// Histogram intersection similarity in `[0, 1]` (1 = identical
    /// shapes). Compares *normalised* histograms, so differing sample
    /// counts are fine.
    pub fn intersection(&self, other: &Histogram) -> f64 {
        if self.total == 0 || other.total == 0 {
            return if self.total == other.total { 1.0 } else { 0.0 };
        }
        let (ta, tb) = (self.total as f64, other.total as f64);
        self.bins
            .iter()
            .zip(&other.bins)
            .map(|(&a, &b)| (a as f64 / ta).min(b as f64 / tb))
            .sum()
    }

    /// Symmetric chi-square distance between normalised histograms
    /// (0 = identical; larger = more different).
    pub fn chi_square(&self, other: &Histogram) -> f64 {
        if self.total == 0 || other.total == 0 {
            return if self.total == other.total { 0.0 } else { f64::INFINITY };
        }
        let (ta, tb) = (self.total as f64, other.total as f64);
        self.bins
            .iter()
            .zip(&other.bins)
            .map(|(&a, &b)| {
                let (pa, pb) = (a as f64 / ta, b as f64 / tb);
                let s = pa + pb;
                if s > 0.0 {
                    (pa - pb) * (pa - pb) / s
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            * 0.5
    }

    /// 1-D earth mover's distance between normalised histograms, in
    /// luminance levels (0 = identical, 255 = black vs white).
    pub fn emd(&self, other: &Histogram) -> f64 {
        if self.total == 0 || other.total == 0 {
            return if self.total == other.total { 0.0 } else { f64::INFINITY };
        }
        let (ta, tb) = (self.total as f64, other.total as f64);
        let mut carry = 0.0;
        let mut dist = 0.0;
        for (&a, &b) in self.bins.iter().zip(&other.bins) {
            carry += a as f64 / ta - b as f64 / tb;
            dist += carry.abs();
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(lo: u8, hi: u8, per_bin: u64) -> Histogram {
        let mut h = Histogram::new();
        for v in lo..=hi {
            h.add_count(v, per_bin);
        }
        h
    }

    #[test]
    fn empty_histogram_defaults() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min_nonzero(), None);
        assert_eq!(h.max_nonzero(), None);
        assert_eq!(h.dynamic_range(), 0);
        assert_eq!(h.clip_level(0.1), 0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn total_counts_samples() {
        let h = Histogram::from_samples([1u8, 2, 3, 3]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.bin(3), 2);
    }

    #[test]
    fn mean_of_uniform() {
        let h = uniform(0, 255, 1);
        assert!((h.mean() - 127.5).abs() < 1e-9);
    }

    #[test]
    fn dynamic_range_bounds() {
        let h = uniform(40, 200, 3);
        assert_eq!(h.min_nonzero(), Some(40));
        assert_eq!(h.max_nonzero(), Some(200));
        assert_eq!(h.dynamic_range(), 160);
    }

    #[test]
    fn clip_level_zero_is_max() {
        let h = Histogram::from_samples([10u8, 50, 250]);
        assert_eq!(h.clip_level(0.0), 250);
    }

    #[test]
    fn clip_level_removes_sparse_tail() {
        // 99 dark pixels plus one bright outlier.
        let mut h = Histogram::new();
        h.add_count(30, 99);
        h.add(255);
        assert_eq!(h.clip_level(0.0), 255);
        assert_eq!(h.clip_level(0.01), 30);
    }

    #[test]
    fn clip_level_respects_budget_boundary() {
        // 10 samples: clipping 20% = 2 samples allowed.
        let mut h = Histogram::new();
        h.add_count(100, 8);
        h.add_count(200, 1);
        h.add_count(220, 1);
        assert_eq!(h.clip_level(0.2), 100);
        assert_eq!(h.clip_level(0.1), 200);
        assert_eq!(h.clip_level(0.05), 220); // budget 0.5 floors to 0
    }

    #[test]
    fn clipped_fraction_never_exceeds_quality() {
        let h = uniform(0, 255, 7);
        for q in [0.0, 0.01, 0.05, 0.1, 0.15, 0.2, 0.5] {
            let level = h.clip_level(q);
            assert!(
                h.fraction_above(level) <= q + 1e-12,
                "q={q} level={level} frac={}",
                h.fraction_above(level)
            );
        }
    }

    #[test]
    fn percentile_monotone() {
        let h = uniform(10, 240, 2);
        let mut last = 0u8;
        for i in 0..=10 {
            let p = h.percentile(i as f64 / 10.0);
            assert!(p >= last);
            last = p;
        }
        assert_eq!(h.percentile(1.0), 240);
    }

    #[test]
    fn count_above_top_is_zero() {
        let h = uniform(0, 255, 1);
        assert_eq!(h.count_above(255), 0);
        assert_eq!(h.count_above(254), 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::from_samples([1u8, 2]);
        let b = Histogram::from_samples([2u8, 3]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.bin(2), 2);
    }

    #[test]
    fn intersection_identity_and_disjoint() {
        let a = uniform(0, 10, 5);
        assert!((a.intersection(&a) - 1.0).abs() < 1e-9);
        let b = uniform(200, 210, 5);
        assert!(a.intersection(&b) < 1e-9);
    }

    #[test]
    fn chi_square_identity_zero() {
        let a = uniform(5, 50, 2);
        assert!(a.chi_square(&a) < 1e-12);
        let b = uniform(100, 150, 2);
        assert!(a.chi_square(&b) > 0.5);
    }

    #[test]
    fn emd_measures_shift() {
        // All mass at 10 vs all mass at 30: EMD = 20 levels.
        let mut a = Histogram::new();
        a.add_count(10, 4);
        let mut b = Histogram::new();
        b.add_count(30, 4);
        assert!((a.emd(&b) - 20.0).abs() < 1e-9);
        assert!(a.emd(&a) < 1e-12);
    }

    #[test]
    fn emd_is_symmetric() {
        let a = uniform(0, 100, 1);
        let b = uniform(50, 180, 2);
        assert!((a.emd(&b) - b.emd(&a)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn clip_level_validates_quality() {
        Histogram::new().clip_level(1.5);
    }
}
