//! Pixel, luminance and histogram substrate for the `annolight` workspace.
//!
//! This crate provides the image-processing primitives that the DATE 2006
//! backlight-annotation technique is built on:
//!
//! * [`color`] — RGB/YUV pixel types and the luminance formula
//!   `Y = r·R + g·G + b·B` used throughout the paper (§4.1).
//! * [`frame`] — owned frame buffers ([`Frame`] for interleaved RGB,
//!   [`LumaFrame`] for a single luminance plane, [`Yuv420Frame`] for the
//!   codec's chroma-subsampled representation).
//! * [`histogram`] — 256-bin luminance histograms with the statistics the
//!   paper reads off them (average point, dynamic range, clip levels) and
//!   the distances used for camera-based quality validation.
//! * [`compensate`] — the two image-compensation operators of §4.1:
//!   *contrast enhancement* (`C' = min(1, C·k)`) and *brightness
//!   compensation* (`C' = min(1, C + δC)`), with clipping statistics.
//! * [`simd`] — runtime-dispatched SSE2/AVX2 kernels for the per-pixel
//!   hot paths (histogram accumulation, LUT application), byte-identical
//!   to the retained scalar references on every input.
//!
//! # Example
//!
//! ```
//! use annolight_imgproc::{Frame, Histogram};
//!
//! // A dark frame with a few sparse highlights.
//! let frame = Frame::from_fn(64, 64, |x, y| {
//!     if (x + y) % 61 == 0 { [230, 230, 230] } else { [40, 42, 38] }
//! });
//! let hist = frame.luma_histogram();
//! // Allowing 5% of the brightest pixels to clip lowers the effective
//! // maximum luminance dramatically on dark content.
//! assert!(hist.clip_level(0.05) < hist.max_nonzero().unwrap());
//! ```

// `deny` (not `forbid`) so the SIMD kernels in `simd` can carve out
// narrowly-scoped `#[allow(unsafe_code)]` intrinsics blocks, the same
// discipline as `annolight_codec::motion`. Everything else stays
// safe-only.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod color;
pub mod compensate;
pub mod error;
pub mod frame;
pub mod hebs;
pub mod histogram;
pub mod quality;
pub mod scale;
pub mod simd;

pub use color::{luma_u8, luma_u8_lut, Rgb8, Yuv8};
pub use compensate::{
    brightness_compensate, compensation_fixed_factor, contrast_enhance, contrast_enhance_float,
    contrast_enhance_scalar, scale_channel_fixed, ClipStats, CompensationKind, CompensationLut,
};
pub use error::ImageError;
pub use frame::{Frame, LumaFrame, Yuv420Frame};
pub use hebs::{hebs_remap_scalar, hebs_stretch_value, HebsLut};
pub use histogram::Histogram;
pub use quality::ssim_luma;
pub use scale::{crop, downscale_2x, letterbox};
pub use simd::{kernel_tier, KernelTier};
