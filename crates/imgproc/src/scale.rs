//! Frame scaling and cropping.
//!
//! §2 of the paper surveys "data-shaping algorithms for mobile multimedia
//! communication" (Lee/Panigrahi/Dey) where image data is reshaped to fit
//! dynamic network conditions; the proxy in Fig. 1 is explicitly a
//! transcoder. These operators let the proxy downscale a stream for a
//! constrained wireless hop while the annotation machinery keeps working
//! on the reshaped frames.

use crate::color::Rgb8;
use crate::error::ImageError;
use crate::frame::Frame;

/// Halves both dimensions by box-averaging each 2×2 block.
///
/// # Errors
///
/// Returns [`ImageError::OddDimensions`] when either dimension is odd and
/// [`ImageError::InvalidDimensions`] when halving would reach zero.
pub fn downscale_2x(frame: &Frame) -> Result<Frame, ImageError> {
    let (w, h) = (frame.width(), frame.height());
    if w % 2 != 0 || h % 2 != 0 {
        return Err(ImageError::OddDimensions { width: w, height: h });
    }
    if w < 2 || h < 2 {
        return Err(ImageError::InvalidDimensions { width: w, height: h });
    }
    Ok(Frame::from_fn(w / 2, h / 2, |x, y| {
        let mut acc = [0u16; 3];
        for dy in 0..2 {
            for dx in 0..2 {
                let p = frame.pixel(x * 2 + dx, y * 2 + dy);
                acc[0] += u16::from(p.r);
                acc[1] += u16::from(p.g);
                acc[2] += u16::from(p.b);
            }
        }
        [((acc[0] + 2) / 4) as u8, ((acc[1] + 2) / 4) as u8, ((acc[2] + 2) / 4) as u8]
    }))
}

/// Extracts the `width × height` rectangle at `(x, y)`.
///
/// # Errors
///
/// Returns [`ImageError::InvalidDimensions`] when the rectangle is empty
/// or does not fit inside the frame.
pub fn crop(frame: &Frame, x: u32, y: u32, width: u32, height: u32) -> Result<Frame, ImageError> {
    if width == 0
        || height == 0
        || x.checked_add(width).is_none_or(|r| r > frame.width())
        || y.checked_add(height).is_none_or(|b| b > frame.height())
    {
        return Err(ImageError::InvalidDimensions { width, height });
    }
    Ok(Frame::from_fn(width, height, |cx, cy| frame.pixel(x + cx, y + cy).to_array()))
}

/// Letterboxes `frame` onto a `width × height` canvas (centred, black
/// bars), preserving content scale — what a QVGA PDA does with a wider
/// trailer.
///
/// # Errors
///
/// Returns [`ImageError::InvalidDimensions`] if the frame is larger than
/// the canvas in either dimension.
pub fn letterbox(frame: &Frame, width: u32, height: u32) -> Result<Frame, ImageError> {
    if frame.width() > width || frame.height() > height || width == 0 || height == 0 {
        return Err(ImageError::InvalidDimensions { width, height });
    }
    let ox = (width - frame.width()) / 2;
    let oy = (height - frame.height()) / 2;
    Ok(Frame::from_fn(width, height, |x, y| {
        if x >= ox && x < ox + frame.width() && y >= oy && y < oy + frame.height() {
            frame.pixel(x - ox, y - oy).to_array()
        } else {
            Rgb8::default().to_array()
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downscale_halves_dimensions() {
        let f = Frame::from_fn(8, 6, |x, y| [(x * 30) as u8, (y * 40) as u8, 9]);
        let d = downscale_2x(&f).unwrap();
        assert_eq!((d.width(), d.height()), (4, 3));
    }

    #[test]
    fn downscale_averages_blocks() {
        let mut f = Frame::new(2, 2);
        f.set_pixel(0, 0, Rgb8::gray(100));
        f.set_pixel(1, 0, Rgb8::gray(200));
        f.set_pixel(0, 1, Rgb8::gray(100));
        f.set_pixel(1, 1, Rgb8::gray(200));
        let d = downscale_2x(&f).unwrap();
        assert_eq!(d.pixel(0, 0), Rgb8::gray(150));
    }

    #[test]
    fn downscale_preserves_mean_luma() {
        let f = Frame::from_fn(32, 32, |x, y| {
            let v = ((x * 7 + y * 3) % 240) as u8;
            [v, v, v]
        });
        let d = downscale_2x(&f).unwrap();
        assert!((f.mean_luma() - d.mean_luma()).abs() < 1.5);
    }

    #[test]
    fn downscale_rejects_odd() {
        let f = Frame::new(3, 4);
        assert!(matches!(downscale_2x(&f), Err(ImageError::OddDimensions { .. })));
    }

    #[test]
    fn crop_extracts_rectangle() {
        let f = Frame::from_fn(8, 8, |x, y| [x as u8, y as u8, 0]);
        let c = crop(&f, 2, 3, 4, 2).unwrap();
        assert_eq!((c.width(), c.height()), (4, 2));
        assert_eq!(c.pixel(0, 0), Rgb8::new(2, 3, 0));
        assert_eq!(c.pixel(3, 1), Rgb8::new(5, 4, 0));
    }

    #[test]
    fn crop_bounds_checked() {
        let f = Frame::new(8, 8);
        assert!(crop(&f, 6, 0, 4, 4).is_err());
        assert!(crop(&f, 0, 0, 0, 4).is_err());
        assert!(crop(&f, 0, 0, 8, 8).is_ok());
    }

    #[test]
    fn letterbox_centres_content() {
        let f = Frame::filled(4, 2, Rgb8::gray(200));
        let l = letterbox(&f, 8, 6).unwrap();
        assert_eq!(l.pixel(0, 0), Rgb8::default()); // bar
        assert_eq!(l.pixel(2, 2), Rgb8::gray(200)); // content
        assert_eq!(l.pixel(5, 3), Rgb8::gray(200));
        assert_eq!(l.pixel(7, 5), Rgb8::default());
    }

    #[test]
    fn letterbox_rejects_oversize() {
        let f = Frame::new(16, 16);
        assert!(letterbox(&f, 8, 16).is_err());
    }
}
