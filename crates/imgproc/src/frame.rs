//! Owned frame buffers.
//!
//! Three representations are used across the workspace:
//!
//! * [`Frame`] — interleaved 8-bit RGB, the representation the annotation
//!   analysis and compensation operate on;
//! * [`LumaFrame`] — a single 8-bit luminance plane (what the display model
//!   and camera ultimately see);
//! * [`Yuv420Frame`] — 4:2:0 planar YUV, the codec's native layout.

use crate::color::{luma_u8, Rgb8};
use crate::error::ImageError;
use crate::histogram::Histogram;

/// An owned, interleaved 8-bit RGB frame.
///
/// Pixels are stored row-major as `[r, g, b, r, g, b, …]`.
///
/// # Example
///
/// ```
/// use annolight_imgproc::{Frame, Rgb8};
/// let mut f = Frame::filled(4, 2, Rgb8::gray(10));
/// f.set_pixel(3, 1, Rgb8::new(200, 200, 200));
/// assert_eq!(f.max_luma(), 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl Frame {
    /// Creates a black frame.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        Self::filled(width, height, Rgb8::default())
    }

    /// Creates a frame filled with `pixel`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: u32, height: u32, pixel: Rgb8) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        let mut data = Vec::with_capacity(width as usize * height as usize * 3);
        for _ in 0..(width as usize * height as usize) {
            data.extend_from_slice(&pixel.to_array());
        }
        Self { width, height, data }
    }

    /// Creates a frame by evaluating `f(x, y)` for every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> [u8; 3]) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        let mut data = Vec::with_capacity(width as usize * height as usize * 3);
        for y in 0..height {
            for x in 0..width {
                data.extend_from_slice(&f(x, y));
            }
        }
        Self { width, height, data }
    }

    /// Wraps an existing interleaved RGB buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BufferSizeMismatch`] if `data.len()` is not
    /// `width * height * 3`, or [`ImageError::InvalidDimensions`] for a
    /// zero dimension.
    pub fn from_rgb_buffer(width: u32, height: u32, data: Vec<u8>) -> Result<Self, ImageError> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions { width, height });
        }
        let expected = width as usize * height as usize * 3;
        if data.len() != expected {
            return Err(ImageError::BufferSizeMismatch { expected, actual: data.len() });
        }
        Ok(Self { width, height, data })
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of pixels.
    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Raw interleaved RGB bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw interleaved RGB bytes.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consumes the frame and returns the underlying buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    fn offset(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize * self.width as usize + x as usize) * 3
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn pixel(&self, x: u32, y: u32) -> Rgb8 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        let o = self.offset(x, y);
        Rgb8::new(self.data[o], self.data[o + 1], self.data[o + 2])
    }

    /// Writes the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set_pixel(&mut self, x: u32, y: u32, p: Rgb8) {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        let o = self.offset(x, y);
        self.data[o] = p.r;
        self.data[o + 1] = p.g;
        self.data[o + 2] = p.b;
    }

    /// Iterates over all pixels in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = Rgb8> + '_ {
        self.data.chunks_exact(3).map(|c| Rgb8::new(c[0], c[1], c[2]))
    }

    /// Applies `f` to every pixel in place.
    pub fn map_pixels_in_place(&mut self, mut f: impl FnMut(Rgb8) -> Rgb8) {
        for c in self.data.chunks_exact_mut(3) {
            let p = f(Rgb8::new(c[0], c[1], c[2]));
            c[0] = p.r;
            c[1] = p.g;
            c[2] = p.b;
        }
    }

    /// Computes the luminance plane of the frame.
    pub fn to_luma(&self) -> LumaFrame {
        let data = self
            .data
            .chunks_exact(3)
            .map(|c| luma_u8(c[0], c[1], c[2]))
            .collect();
        LumaFrame { width: self.width, height: self.height, data }
    }

    /// Recomputes the luminance plane into an existing [`LumaFrame`],
    /// reusing its buffer — the allocation-free form of [`Self::to_luma`]
    /// for pooled steady-state loops.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BufferSizeMismatch`] when `out`'s plane size
    /// differs from this frame's pixel count.
    pub fn to_luma_into(&self, out: &mut LumaFrame) -> Result<(), ImageError> {
        let expected = self.pixel_count();
        if out.data.len() != expected {
            return Err(ImageError::BufferSizeMismatch { expected, actual: out.data.len() });
        }
        out.width = self.width;
        out.height = self.height;
        for (c, l) in self.data.chunks_exact(3).zip(out.data.iter_mut()) {
            *l = luma_u8(c[0], c[1], c[2]);
        }
        Ok(())
    }

    /// Builds the 256-bin luminance histogram of the frame.
    ///
    /// Dispatches to the widest SIMD accumulator the host supports (see
    /// [`crate::simd::kernel_tier`]); every tier computes the identical
    /// integer arithmetic as [`crate::color::luma_u8_lut`] per pixel
    /// (exactly equal to [`luma_u8`]) — this is the profiling stage's
    /// inner kernel.
    pub fn luma_histogram(&self) -> Histogram {
        crate::simd::luma_histogram(self, crate::simd::kernel_tier())
    }

    /// [`Self::luma_histogram`] at an explicit
    /// [`KernelTier`](crate::simd::KernelTier) (clamped to host
    /// capability) — the hook the differential conformance tier sweeps.
    pub fn luma_histogram_with(&self, tier: crate::simd::KernelTier) -> Histogram {
        crate::simd::luma_histogram(self, tier)
    }

    /// Resets `out` and accumulates this frame's luma histogram into it —
    /// the allocation-free form of [`Self::luma_histogram`] (histogram
    /// bins are inline storage; the kernel's partials live on the stack).
    pub fn luma_histogram_into(&self, out: &mut Histogram) {
        crate::simd::luma_histogram_into(self, out, crate::simd::kernel_tier());
    }

    /// Maximum pixel luminance in the frame.
    pub fn max_luma(&self) -> u8 {
        self.data
            .chunks_exact(3)
            .map(|c| luma_u8(c[0], c[1], c[2]))
            .max()
            .unwrap_or(0)
    }

    /// Mean pixel luminance in the frame.
    pub fn mean_luma(&self) -> f64 {
        let sum: u64 = self
            .data
            .chunks_exact(3)
            .map(|c| u64::from(luma_u8(c[0], c[1], c[2])))
            .sum();
        sum as f64 / self.pixel_count() as f64
    }

    /// Converts to planar 4:2:0 YUV by box-averaging each 2×2 chroma block.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OddDimensions`] when either dimension is odd.
    pub fn to_yuv420(&self) -> Result<Yuv420Frame, ImageError> {
        Yuv420Frame::from_rgb(self)
    }

    /// Converts to 4:2:0 YUV into an existing frame, reusing its planes —
    /// the allocation-free form of [`Self::to_yuv420`] for pooled
    /// steady-state loops.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OddDimensions`] when either dimension is odd
    /// and [`ImageError::BufferSizeMismatch`] when `out`'s plane sizes
    /// don't match this frame's geometry.
    pub fn to_yuv420_into(&self, out: &mut Yuv420Frame) -> Result<(), ImageError> {
        Yuv420Frame::from_rgb_into(self, out)
    }
}

/// A single 8-bit luminance plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LumaFrame {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl LumaFrame {
    /// Creates an all-black luminance plane.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        Self { width, height, data: vec![0; width as usize * height as usize] }
    }

    /// Wraps an existing luminance buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BufferSizeMismatch`] when the buffer length is
    /// not `width * height`, or [`ImageError::InvalidDimensions`] for a
    /// zero dimension.
    pub fn from_buffer(width: u32, height: u32, data: Vec<u8>) -> Result<Self, ImageError> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions { width, height });
        }
        let expected = width as usize * height as usize;
        if data.len() != expected {
            return Err(ImageError::BufferSizeMismatch { expected, actual: data.len() });
        }
        Ok(Self { width, height, data })
    }

    /// Plane width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Plane height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw luminance samples (row-major).
    pub fn samples(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw luminance samples (row-major).
    pub fn samples_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn sample(&self, x: u32, y: u32) -> u8 {
        assert!(x < self.width && y < self.height, "sample ({x},{y}) out of bounds");
        self.data[y as usize * self.width as usize + x as usize]
    }

    /// Builds the 256-bin histogram of the plane.
    pub fn histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for &v in &self.data {
            h.add(v);
        }
        h
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        let sum: u64 = self.data.iter().map(|&v| u64::from(v)).sum();
        sum as f64 / self.data.len() as f64
    }
}

/// A planar 4:2:0 YUV frame (the codec's native representation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Yuv420Frame {
    width: u32,
    height: u32,
    y: Vec<u8>,
    u: Vec<u8>,
    v: Vec<u8>,
}

impl Yuv420Frame {
    /// Creates a mid-gray 4:2:0 frame (Y = 0, U = V = 128).
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OddDimensions`] when either dimension is odd
    /// and [`ImageError::InvalidDimensions`] when either is zero.
    pub fn new(width: u32, height: u32) -> Result<Self, ImageError> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions { width, height });
        }
        if !width.is_multiple_of(2) || !height.is_multiple_of(2) {
            return Err(ImageError::OddDimensions { width, height });
        }
        let luma = width as usize * height as usize;
        let chroma = luma / 4;
        Ok(Self {
            width,
            height,
            y: vec![0; luma],
            u: vec![128; chroma],
            v: vec![128; chroma],
        })
    }

    /// Converts an RGB frame, box-averaging chroma over 2×2 blocks.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OddDimensions`] when either dimension is odd.
    pub fn from_rgb(frame: &Frame) -> Result<Self, ImageError> {
        let mut out = Self::new(frame.width(), frame.height())?;
        Self::from_rgb_into(frame, &mut out)?;
        Ok(out)
    }

    /// Converts an RGB frame into an existing 4:2:0 frame, reusing its
    /// planes — the allocation-free form of [`Self::from_rgb`].
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OddDimensions`] when either RGB dimension is
    /// odd and [`ImageError::BufferSizeMismatch`] when `out`'s plane
    /// sizes don't match the RGB frame's geometry.
    pub fn from_rgb_into(frame: &Frame, out: &mut Self) -> Result<(), ImageError> {
        let (w, h) = (frame.width(), frame.height());
        if !w.is_multiple_of(2) || !h.is_multiple_of(2) {
            return Err(ImageError::OddDimensions { width: w, height: h });
        }
        let luma = w as usize * h as usize;
        if out.y.len() != luma {
            return Err(ImageError::BufferSizeMismatch { expected: luma, actual: out.y.len() });
        }
        if out.u.len() != luma / 4 || out.v.len() != luma / 4 {
            return Err(ImageError::BufferSizeMismatch { expected: luma / 4, actual: out.u.len() });
        }
        out.width = w;
        out.height = h;
        for y in 0..h {
            for x in 0..w {
                out.y[y as usize * w as usize + x as usize] = frame.pixel(x, y).to_yuv().y;
            }
        }
        let cw = (w / 2) as usize;
        for cy in 0..(h / 2) {
            for cx in 0..(w / 2) {
                let mut su = 0u32;
                let mut sv = 0u32;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let p = frame.pixel(cx * 2 + dx, cy * 2 + dy).to_yuv();
                        su += u32::from(p.u);
                        sv += u32::from(p.v);
                    }
                }
                let o = cy as usize * cw + cx as usize;
                out.u[o] = ((su + 2) / 4) as u8;
                out.v[o] = ((sv + 2) / 4) as u8;
            }
        }
        Ok(())
    }

    /// Converts back to interleaved RGB (chroma upsampled by replication).
    pub fn to_rgb(&self) -> Frame {
        let w = self.width;
        let cw = (w / 2) as usize;
        Frame::from_fn(self.width, self.height, |x, y| {
            let yy = self.y[y as usize * w as usize + x as usize];
            let co = (y / 2) as usize * cw + (x / 2) as usize;
            crate::color::Yuv8::new(yy, self.u[co], self.v[co]).to_rgb().to_array()
        })
    }

    /// Converts back to interleaved RGB into an existing frame, reusing
    /// its buffer — the allocation-free form of [`Self::to_rgb`].
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BufferSizeMismatch`] when `out`'s buffer
    /// size doesn't match this frame's geometry.
    pub fn to_rgb_into(&self, out: &mut Frame) -> Result<(), ImageError> {
        let expected = self.width as usize * self.height as usize * 3;
        if out.data.len() != expected {
            return Err(ImageError::BufferSizeMismatch { expected, actual: out.data.len() });
        }
        out.width = self.width;
        out.height = self.height;
        let w = self.width as usize;
        let cw = w / 2;
        for y in 0..self.height as usize {
            let row = &mut out.data[y * w * 3..(y + 1) * w * 3];
            let yrow = &self.y[y * w..(y + 1) * w];
            let crow = (y / 2) * cw;
            for (x, px) in row.chunks_exact_mut(3).enumerate() {
                let co = crow + x / 2;
                let p = crate::color::Yuv8::new(yrow[x], self.u[co], self.v[co]).to_rgb();
                px[0] = p.r;
                px[1] = p.g;
                px[2] = p.b;
            }
        }
        Ok(())
    }

    /// Copies another frame's planes into this one, reusing existing
    /// allocations when the geometries match (`Vec::clone_from`
    /// semantics — no allocation in the steady state).
    pub fn copy_from(&mut self, other: &Yuv420Frame) {
        self.width = other.width;
        self.height = other.height;
        self.y.clone_from(&other.y);
        self.u.clone_from(&other.u);
        self.v.clone_from(&other.v);
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The luminance plane (row-major, `width × height`).
    pub fn y_plane(&self) -> &[u8] {
        &self.y
    }

    /// The U chroma plane (row-major, `width/2 × height/2`).
    pub fn u_plane(&self) -> &[u8] {
        &self.u
    }

    /// The V chroma plane (row-major, `width/2 × height/2`).
    pub fn v_plane(&self) -> &[u8] {
        &self.v
    }

    /// Mutable luminance plane.
    pub fn y_plane_mut(&mut self) -> &mut [u8] {
        &mut self.y
    }

    /// Mutable U chroma plane.
    pub fn u_plane_mut(&mut self) -> &mut [u8] {
        &mut self.u
    }

    /// Mutable V chroma plane.
    pub fn v_plane_mut(&mut self) -> &mut [u8] {
        &mut self.v
    }

    /// All three mutable planes at once (Y, U, V), for writers that fill
    /// the whole frame in a single pass.
    pub fn planes_mut(&mut self) -> (&mut [u8], &mut [u8], &mut [u8]) {
        (&mut self.y, &mut self.u, &mut self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_frame_is_uniform() {
        let f = Frame::filled(3, 2, Rgb8::new(9, 8, 7));
        assert_eq!(f.pixel_count(), 6);
        assert!(f.pixels().all(|p| p == Rgb8::new(9, 8, 7)));
    }

    #[test]
    fn from_fn_coordinates() {
        let f = Frame::from_fn(4, 3, |x, y| [x as u8, y as u8, 0]);
        assert_eq!(f.pixel(2, 1), Rgb8::new(2, 1, 0));
        assert_eq!(f.pixel(3, 2), Rgb8::new(3, 2, 0));
    }

    #[test]
    fn set_and_get_pixel() {
        let mut f = Frame::new(2, 2);
        f.set_pixel(1, 0, Rgb8::new(1, 2, 3));
        assert_eq!(f.pixel(1, 0), Rgb8::new(1, 2, 3));
        assert_eq!(f.pixel(0, 0), Rgb8::default());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_out_of_bounds_panics() {
        let f = Frame::new(2, 2);
        let _ = f.pixel(2, 0);
    }

    #[test]
    fn buffer_size_checked() {
        assert!(matches!(
            Frame::from_rgb_buffer(2, 2, vec![0; 11]),
            Err(ImageError::BufferSizeMismatch { expected: 12, actual: 11 })
        ));
        assert!(Frame::from_rgb_buffer(2, 2, vec![0; 12]).is_ok());
        assert!(matches!(
            Frame::from_rgb_buffer(0, 2, vec![]),
            Err(ImageError::InvalidDimensions { .. })
        ));
    }

    #[test]
    fn max_and_mean_luma() {
        let mut f = Frame::filled(10, 10, Rgb8::gray(50));
        assert_eq!(f.max_luma(), 50);
        assert!((f.mean_luma() - 50.0).abs() < 1e-9);
        f.set_pixel(0, 0, Rgb8::gray(250));
        assert_eq!(f.max_luma(), 250);
        assert!(f.mean_luma() > 50.0);
    }

    #[test]
    fn histogram_total_matches_pixel_count() {
        let f = Frame::from_fn(7, 5, |x, y| [(x * y) as u8, 0, 0]);
        assert_eq!(f.luma_histogram().total(), 35);
    }

    #[test]
    fn luma_plane_matches_per_pixel_luma() {
        let f = Frame::from_fn(6, 4, |x, y| [(x * 40) as u8, (y * 60) as u8, 128]);
        let l = f.to_luma();
        for y in 0..4 {
            for x in 0..6 {
                assert_eq!(l.sample(x, y), f.pixel(x, y).luma());
            }
        }
    }

    #[test]
    fn yuv420_roundtrip_gray_is_lossless() {
        let f = Frame::from_fn(8, 8, |x, y| {
            let v = (x * 30 + y * 2) as u8;
            [v, v, v]
        });
        let rt = f.to_yuv420().unwrap().to_rgb();
        for (a, b) in f.pixels().zip(rt.pixels()) {
            assert!((i16::from(a.luma()) - i16::from(b.luma())).abs() <= 1);
        }
    }

    #[test]
    fn yuv420_rejects_odd_dims() {
        let f = Frame::new(3, 4);
        assert!(matches!(f.to_yuv420(), Err(ImageError::OddDimensions { .. })));
    }

    #[test]
    fn yuv420_plane_sizes() {
        let f = Yuv420Frame::new(16, 8).unwrap();
        assert_eq!(f.y_plane().len(), 128);
        assert_eq!(f.u_plane().len(), 32);
        assert_eq!(f.v_plane().len(), 32);
    }

    #[test]
    fn map_pixels_in_place_applies() {
        let mut f = Frame::filled(2, 2, Rgb8::gray(10));
        f.map_pixels_in_place(|p| p.scale(2.0));
        assert!(f.pixels().all(|p| p == Rgb8::gray(20)));
    }

    #[test]
    fn luma_frame_mean() {
        let l = LumaFrame::from_buffer(2, 2, vec![0, 100, 200, 100]).unwrap();
        assert!((l.mean() - 100.0).abs() < 1e-9);
        assert_eq!(l.histogram().total(), 4);
    }
}
