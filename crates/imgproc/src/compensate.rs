//! Image compensation operators (§4.1 of the paper).
//!
//! When the backlight is dimmed from `L` to `L'`, the displayed image is
//! brightened so the perceived intensity `I = ρ·L·Y` is preserved. The paper
//! describes two operators:
//!
//! * **Contrast enhancement** — every normalised channel value is multiplied
//!   by a constant: `C' = min(1, C·k)`, with `k = L/L'`. This is the
//!   operator used in the paper's experiments.
//! * **Brightness compensation** — a constant is added instead:
//!   `C' = min(1, C + δC)`.
//!
//! Both may *clip* pixels that no longer fit the 8-bit range; [`ClipStats`]
//! records how many did and by how much, which is exactly the quality
//! degradation the user-selected quality level bounds.
//!
//! # Fixed-point LUT kernel
//!
//! Contrast enhancement is the per-frame hot loop of the whole offline
//! pipeline (every channel of every pixel is touched). Instead of a
//! per-channel float multiply + round, the factor `k` is quantised once
//! to 16.16 fixed point and expanded into a **256-entry `k·Y` table**
//! ([`CompensationLut`]): applying the operator is then three table
//! look-ups per pixel. Because the table is exact integer arithmetic,
//! the kernel is bit-for-bit deterministic across chunkings, worker
//! counts and platforms — the property the parallel pipeline's
//! byte-identity tests rely on. [`contrast_enhance_scalar`] evaluates
//! the same fixed-point formula per channel without the table (the
//! 0-ULP reference the property tests compare against), and
//! [`contrast_enhance_float`] preserves the pre-LUT float kernel as the
//! `pipeline_throughput` speedup baseline.

use crate::frame::Frame;

/// Number of fractional bits in the fixed-point compensation factor.
pub const COMPENSATION_FIXED_SHIFT: u32 = 16;

/// The fixed-point representation of `1.0` (`1 << 16`).
pub const COMPENSATION_FIXED_ONE: u64 = 1 << COMPENSATION_FIXED_SHIFT;

/// Quantises a compensation factor to 16.16 fixed point (round to
/// nearest).
///
/// # Panics
///
/// Panics if `k` is negative or not finite.
#[must_use]
pub fn compensation_fixed_factor(k: f32) -> u64 {
    assert!(k.is_finite() && k >= 0.0, "compensation factor {k} must be finite and >= 0");
    (f64::from(k) * COMPENSATION_FIXED_ONE as f64).round() as u64
}

/// Scales one channel value by a 16.16 fixed-point factor, returning
/// `(value, clipped, overshoot)`.
///
/// `value` is `min(255, round(c·k))`; `clipped` is whether the
/// pre-clamp product exceeded full scale; `overshoot` is how far beyond
/// 255 it landed (in 8-bit units; `0.0` when unclipped). Exact integer
/// arithmetic — this is the scalar form of the [`CompensationLut`]
/// kernel and the two agree bit-for-bit on every input.
#[must_use]
pub fn scale_channel_fixed(c: u8, k_fixed: u64) -> (u8, bool, f32) {
    let raw = u64::from(c) * k_fixed;
    if raw > 255 * COMPENSATION_FIXED_ONE {
        let overshoot = (raw as f64 / COMPENSATION_FIXED_ONE as f64 - 255.0) as f32;
        (255, true, overshoot)
    } else {
        ((((raw + COMPENSATION_FIXED_ONE / 2) >> COMPENSATION_FIXED_SHIFT) as u8), false, 0.0)
    }
}

/// A per-frame 256-entry `k·Y` compensation table (16.16 fixed point).
///
/// Built once per frame (or once per scene — the factor is constant
/// within a scene), then applied as pure table look-ups. See the module
/// docs for why this replaces the float kernel.
///
/// # Example
///
/// ```
/// use annolight_imgproc::{CompensationLut, Frame, Rgb8};
/// let lut = CompensationLut::new(2.0);
/// assert_eq!(lut.value(100), 200);
/// assert_eq!(lut.value(200), 255);
/// let mut f = Frame::filled(4, 4, Rgb8::new(100, 100, 200));
/// let stats = lut.apply(&mut f);
/// assert_eq!(f.pixel(0, 0), Rgb8::new(200, 200, 255));
/// assert_eq!(stats.clipped_pixels, 16);
/// ```
#[derive(Debug, Clone)]
pub struct CompensationLut {
    pub(crate) k_fixed: u64,
    pub(crate) values: [u8; 256],
    pub(crate) clipped: [bool; 256],
    pub(crate) overshoot: [f32; 256],
}

impl CompensationLut {
    /// Builds the table for factor `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or not finite.
    #[must_use]
    pub fn new(k: f32) -> Self {
        let k_fixed = compensation_fixed_factor(k);
        let mut values = [0u8; 256];
        let mut clipped = [false; 256];
        let mut overshoot = [0.0f32; 256];
        for c in 0..=255u8 {
            let (v, cl, ov) = scale_channel_fixed(c, k_fixed);
            values[c as usize] = v;
            clipped[c as usize] = cl;
            overshoot[c as usize] = ov;
        }
        Self { k_fixed, values, clipped, overshoot }
    }

    /// The quantised 16.16 factor the table encodes.
    #[must_use]
    pub fn k_fixed(&self) -> u64 {
        self.k_fixed
    }

    /// The compensated value for channel input `c`.
    #[must_use]
    pub fn value(&self, c: u8) -> u8 {
        self.values[c as usize]
    }

    /// Whether channel input `c` clips at this factor.
    #[must_use]
    pub fn is_clipped(&self, c: u8) -> bool {
        self.clipped[c as usize]
    }

    /// Pre-clamp overshoot beyond 255 for channel input `c` (`0.0` when
    /// unclipped).
    #[must_use]
    pub fn overshoot(&self, c: u8) -> f32 {
        self.overshoot[c as usize]
    }

    /// Applies the table to every channel of every pixel, in place,
    /// reporting clipping statistics.
    ///
    /// Dispatches to the widest SIMD kernel the host supports (see
    /// [`crate::simd::kernel_tier`]); every tier is byte-identical to
    /// [`Self::apply_scalar`], stats included.
    pub fn apply(&self, frame: &mut Frame) -> ClipStats {
        crate::simd::compensation_apply(self, frame, crate::simd::kernel_tier())
    }

    /// [`Self::apply`] at an explicit [`KernelTier`](crate::simd::KernelTier)
    /// (clamped to host capability) — the hook the differential
    /// conformance tier sweeps.
    pub fn apply_with(&self, frame: &mut Frame, tier: crate::simd::KernelTier) -> ClipStats {
        crate::simd::compensation_apply(self, frame, tier)
    }

    /// The retained scalar reference kernel (pure table look-ups, no
    /// vector code) — the 0-ULP oracle every SIMD tier is tested
    /// against.
    pub fn apply_scalar(&self, frame: &mut Frame) -> ClipStats {
        let mut stats =
            ClipStats { total_pixels: frame.pixel_count() as u64, ..Default::default() };
        for c in frame.as_bytes_mut().chunks_exact_mut(3) {
            let mut clipped = false;
            for ch in c.iter_mut() {
                let i = *ch as usize;
                if self.clipped[i] {
                    clipped = true;
                    if self.overshoot[i] > stats.max_overshoot {
                        stats.max_overshoot = self.overshoot[i];
                    }
                }
                *ch = self.values[i];
            }
            if clipped {
                stats.clipped_pixels += 1;
            }
        }
        stats
    }
}

/// Which compensation operator to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompensationKind {
    /// Multiply channels by `k = L/L'` (used in the paper's evaluation).
    #[default]
    ContrastEnhancement,
    /// Add a constant `δC` to the channels.
    BrightnessCompensation,
}

annolight_support::impl_json!(enum CompensationKind { ContrastEnhancement, BrightnessCompensation });

/// Statistics about pixels clipped by a compensation pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClipStats {
    /// Number of pixels in which at least one channel saturated.
    pub clipped_pixels: u64,
    /// Total number of pixels processed.
    pub total_pixels: u64,
    /// Largest per-channel overshoot beyond 255 (in pre-clamp 8-bit units).
    pub max_overshoot: f32,
}

annolight_support::impl_json!(struct ClipStats { clipped_pixels, total_pixels, max_overshoot });

impl ClipStats {
    /// Fraction of pixels that clipped, in `[0, 1]`.
    pub fn clipped_fraction(&self) -> f64 {
        if self.total_pixels == 0 {
            0.0
        } else {
            self.clipped_pixels as f64 / self.total_pixels as f64
        }
    }
}

/// Applies contrast enhancement `C' = min(255, C·k)` to every channel of
/// every pixel, in place, and reports clipping statistics.
///
/// `k` is the compensation factor `L/L' ≥ 1` computed from the backlight
/// dimming ratio. Values `k < 1` are permitted (they darken the image and
/// can never clip). Internally `k` is quantised to 16.16 fixed point and
/// applied through a per-frame [`CompensationLut`] — exact integer
/// arithmetic, bit-identical to [`contrast_enhance_scalar`].
///
/// # Panics
///
/// Panics if `k` is negative or not finite.
///
/// # Example
///
/// ```
/// use annolight_imgproc::{contrast_enhance, Frame, Rgb8};
/// let mut f = Frame::filled(4, 4, Rgb8::new(100, 100, 200));
/// let stats = contrast_enhance(&mut f, 2.0);
/// assert_eq!(f.pixel(0, 0), Rgb8::new(200, 200, 255));
/// assert_eq!(stats.clipped_pixels, 16); // blue channel saturated everywhere
/// ```
pub fn contrast_enhance(frame: &mut Frame, k: f32) -> ClipStats {
    CompensationLut::new(k).apply(frame)
}

/// Scalar fixed-point form of [`contrast_enhance`]: evaluates
/// [`scale_channel_fixed`] per channel instead of going through the
/// 256-entry table. Exists so property tests can assert the LUT kernel
/// is exact (0 ULP — both paths are the same integer arithmetic).
///
/// # Panics
///
/// Panics if `k` is negative or not finite.
pub fn contrast_enhance_scalar(frame: &mut Frame, k: f32) -> ClipStats {
    let k_fixed = compensation_fixed_factor(k);
    let mut stats = ClipStats { total_pixels: frame.pixel_count() as u64, ..Default::default() };
    for c in frame.as_bytes_mut().chunks_exact_mut(3) {
        let mut clipped = false;
        for ch in c.iter_mut() {
            let (v, cl, ov) = scale_channel_fixed(*ch, k_fixed);
            if cl {
                clipped = true;
                if ov > stats.max_overshoot {
                    stats.max_overshoot = ov;
                }
            }
            *ch = v;
        }
        if clipped {
            stats.clipped_pixels += 1;
        }
    }
    stats
}

/// The pre-LUT float kernel (per-channel `f32` multiply + round),
/// retained as the serial baseline of the `pipeline_throughput` speedup
/// table and as a cross-check that fixed-point quantisation stays
/// within one 8-bit step of the float result.
///
/// # Panics
///
/// Panics if `k` is negative or not finite.
pub fn contrast_enhance_float(frame: &mut Frame, k: f32) -> ClipStats {
    assert!(k.is_finite() && k >= 0.0, "compensation factor {k} must be finite and >= 0");
    let mut stats = ClipStats { total_pixels: frame.pixel_count() as u64, ..Default::default() };
    for c in frame.as_bytes_mut().chunks_exact_mut(3) {
        let mut clipped = false;
        for ch in c.iter_mut() {
            let scaled = f32::from(*ch) * k;
            if scaled > 255.0 {
                clipped = true;
                stats.max_overshoot = stats.max_overshoot.max(scaled - 255.0);
                *ch = 255;
            } else {
                *ch = scaled.round() as u8;
            }
        }
        if clipped {
            stats.clipped_pixels += 1;
        }
    }
    stats
}

/// Applies brightness compensation `C' = min(255, C + delta)` to every
/// channel of every pixel, in place, and reports clipping statistics.
///
/// # Example
///
/// ```
/// use annolight_imgproc::{brightness_compensate, Frame, Rgb8};
/// let mut f = Frame::filled(2, 2, Rgb8::new(250, 10, 10));
/// let stats = brightness_compensate(&mut f, 20);
/// assert_eq!(f.pixel(0, 0), Rgb8::new(255, 30, 30));
/// assert_eq!(stats.clipped_pixels, 4);
/// ```
pub fn brightness_compensate(frame: &mut Frame, delta: u8) -> ClipStats {
    let mut stats = ClipStats { total_pixels: frame.pixel_count() as u64, ..Default::default() };
    for c in frame.as_bytes_mut().chunks_exact_mut(3) {
        let mut clipped = false;
        for ch in c.iter_mut() {
            let sum = u16::from(*ch) + u16::from(delta);
            if sum > 255 {
                clipped = true;
                stats.max_overshoot = stats.max_overshoot.max(f32::from(sum - 255));
                *ch = 255;
            } else {
                *ch = sum as u8;
            }
        }
        if clipped {
            stats.clipped_pixels += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb8;

    #[test]
    fn contrast_identity() {
        let orig = Frame::from_fn(8, 8, |x, y| [(x * 31) as u8, (y * 31) as u8, 77]);
        let mut f = orig.clone();
        let stats = contrast_enhance(&mut f, 1.0);
        assert_eq!(f, orig);
        assert_eq!(stats.clipped_pixels, 0);
        assert_eq!(stats.max_overshoot, 0.0);
    }

    #[test]
    fn contrast_scales_without_clipping() {
        let mut f = Frame::filled(4, 4, Rgb8::new(10, 20, 40));
        let stats = contrast_enhance(&mut f, 2.5);
        assert_eq!(f.pixel(2, 2), Rgb8::new(25, 50, 100));
        assert_eq!(stats.clipped_pixels, 0);
    }

    #[test]
    fn contrast_never_lowers_pixels_for_k_ge_1() {
        let orig = Frame::from_fn(16, 16, |x, y| [(x * 16) as u8, (y * 16) as u8, ((x + y) * 8) as u8]);
        let mut f = orig.clone();
        contrast_enhance(&mut f, 1.7);
        for (a, b) in orig.pixels().zip(f.pixels()) {
            assert!(b.r >= a.r && b.g >= a.g && b.b >= a.b);
        }
    }

    #[test]
    fn contrast_counts_clips_once_per_pixel() {
        // Both r and g saturate but the pixel is counted once.
        let mut f = Frame::filled(3, 3, Rgb8::new(200, 201, 2));
        let stats = contrast_enhance(&mut f, 1.5);
        assert_eq!(stats.clipped_pixels, 9);
        assert_eq!(stats.total_pixels, 9);
        assert!((stats.clipped_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contrast_overshoot_is_tracked() {
        let mut f = Frame::filled(1, 1, Rgb8::new(200, 0, 0));
        let stats = contrast_enhance(&mut f, 2.0);
        assert!((stats.max_overshoot - 145.0).abs() < 1e-3);
    }

    #[test]
    fn darkening_never_clips() {
        let mut f = Frame::filled(5, 5, Rgb8::new(255, 255, 255));
        let stats = contrast_enhance(&mut f, 0.5);
        assert_eq!(stats.clipped_pixels, 0);
        assert_eq!(f.pixel(0, 0), Rgb8::gray(128));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn contrast_rejects_nan() {
        let mut f = Frame::new(1, 1);
        contrast_enhance(&mut f, f32::NAN);
    }

    #[test]
    fn brightness_adds_uniformly() {
        let mut f = Frame::filled(2, 2, Rgb8::new(10, 20, 30));
        let stats = brightness_compensate(&mut f, 15);
        assert_eq!(f.pixel(0, 0), Rgb8::new(25, 35, 45));
        assert_eq!(stats.clipped_pixels, 0);
    }

    #[test]
    fn brightness_zero_delta_is_identity() {
        let orig = Frame::from_fn(4, 4, |x, _| [x as u8 * 60, 3, 250]);
        let mut f = orig.clone();
        let stats = brightness_compensate(&mut f, 0);
        assert_eq!(f, orig);
        assert_eq!(stats.clipped_pixels, 0);
    }

    #[test]
    fn clip_stats_fraction_empty() {
        let s = ClipStats::default();
        assert_eq!(s.clipped_fraction(), 0.0);
    }

    #[test]
    fn lut_matches_scalar_fixed_point_exactly() {
        // The tentpole invariant: table look-up == per-channel fixed
        // point, bit for bit, for factors across the useful range.
        for k in [0.0f32, 0.37, 0.5, 1.0, 1.003, 1.5, 1.7, 2.0, 2.5, 3.9, 6.375, 255.0] {
            let orig = Frame::from_fn(16, 16, |x, y| {
                [(x * 17) as u8, (255 - y * 13) as u8, ((x * y) % 256) as u8]
            });
            let mut via_lut = orig.clone();
            let mut via_scalar = orig.clone();
            let s1 = contrast_enhance(&mut via_lut, k);
            let s2 = contrast_enhance_scalar(&mut via_scalar, k);
            assert_eq!(via_lut, via_scalar, "k={k}");
            assert_eq!(s1, s2, "k={k}");
        }
    }

    #[test]
    fn lut_matches_float_kernel_for_representable_factors() {
        // Factors exactly representable in 16.16 must reproduce the old
        // float kernel byte for byte, stats included.
        for k in [0.5f32, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0] {
            let orig = Frame::from_fn(16, 16, |x, y| {
                [(x * 16) as u8, (y * 16) as u8, ((x + y) * 8) as u8]
            });
            let mut lut = orig.clone();
            let mut float = orig.clone();
            let s1 = contrast_enhance(&mut lut, k);
            let s2 = contrast_enhance_float(&mut float, k);
            assert_eq!(lut, float, "k={k}");
            assert_eq!(s1.clipped_pixels, s2.clipped_pixels, "k={k}");
            assert!((s1.max_overshoot - s2.max_overshoot).abs() < 1e-3, "k={k}");
        }
        // Arbitrary factors quantise to within half a 16.16 LSB, so the
        // compensated channel can differ from the float kernel by at
        // most one 8-bit step.
        for k in [1.1f32, 1.7, 1.9, 2.34567] {
            let orig = Frame::from_fn(16, 16, |x, y| {
                [(x * 16) as u8, (y * 16) as u8, ((x + y) * 8) as u8]
            });
            let mut lut = orig.clone();
            let mut float = orig.clone();
            contrast_enhance(&mut lut, k);
            contrast_enhance_float(&mut float, k);
            for (a, b) in lut.as_bytes().iter().zip(float.as_bytes()) {
                assert!(
                    (i16::from(*a) - i16::from(*b)).abs() <= 1,
                    "k={k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn lut_table_entries_are_the_scalar_formula() {
        let lut = CompensationLut::new(1.7);
        let k_fixed = compensation_fixed_factor(1.7);
        assert_eq!(lut.k_fixed(), k_fixed);
        for c in 0..=255u8 {
            let (v, cl, ov) = scale_channel_fixed(c, k_fixed);
            assert_eq!(lut.value(c), v, "c={c}");
            assert_eq!(lut.is_clipped(c), cl, "c={c}");
            assert_eq!(lut.overshoot(c), ov, "c={c}");
        }
    }

    #[test]
    fn fixed_factor_quantises_to_nearest() {
        assert_eq!(compensation_fixed_factor(1.0), COMPENSATION_FIXED_ONE);
        assert_eq!(compensation_fixed_factor(2.5), 5 * COMPENSATION_FIXED_ONE / 2);
        assert_eq!(compensation_fixed_factor(0.0), 0);
        // Quantisation error is bounded by half an LSB of 2^-16.
        let k = 1.2345678f32;
        let q = compensation_fixed_factor(k) as f64 / COMPENSATION_FIXED_ONE as f64;
        assert!((q - f64::from(k)).abs() <= 0.5 / COMPENSATION_FIXED_ONE as f64);
    }

    #[test]
    fn exact_full_scale_product_does_not_clip() {
        // c·k == 255 exactly: lands on full scale without overshooting.
        let (v, clipped, ov) = scale_channel_fixed(255, COMPENSATION_FIXED_ONE);
        assert_eq!((v, clipped, ov), (255, false, 0.0));
        let (v, clipped, _) = scale_channel_fixed(85, compensation_fixed_factor(3.0));
        assert_eq!((v, clipped), (255, false));
    }

    #[test]
    fn compensation_preserves_hue_for_gray() {
        // Gray input must stay gray under both operators (the paper notes
        // each RGB value is compensated by the same amount to keep colors).
        let mut f = Frame::filled(2, 2, Rgb8::gray(60));
        contrast_enhance(&mut f, 1.9);
        let p = f.pixel(0, 0);
        assert!(p.r == p.g && p.g == p.b);
        let mut g = Frame::filled(2, 2, Rgb8::gray(60));
        brightness_compensate(&mut g, 33);
        let q = g.pixel(0, 0);
        assert!(q.r == q.g && q.g == q.b);
    }
}
