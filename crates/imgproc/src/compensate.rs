//! Image compensation operators (§4.1 of the paper).
//!
//! When the backlight is dimmed from `L` to `L'`, the displayed image is
//! brightened so the perceived intensity `I = ρ·L·Y` is preserved. The paper
//! describes two operators:
//!
//! * **Contrast enhancement** — every normalised channel value is multiplied
//!   by a constant: `C' = min(1, C·k)`, with `k = L/L'`. This is the
//!   operator used in the paper's experiments.
//! * **Brightness compensation** — a constant is added instead:
//!   `C' = min(1, C + δC)`.
//!
//! Both may *clip* pixels that no longer fit the 8-bit range; [`ClipStats`]
//! records how many did and by how much, which is exactly the quality
//! degradation the user-selected quality level bounds.

use crate::frame::Frame;

/// Which compensation operator to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompensationKind {
    /// Multiply channels by `k = L/L'` (used in the paper's evaluation).
    #[default]
    ContrastEnhancement,
    /// Add a constant `δC` to the channels.
    BrightnessCompensation,
}

annolight_support::impl_json!(enum CompensationKind { ContrastEnhancement, BrightnessCompensation });

/// Statistics about pixels clipped by a compensation pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClipStats {
    /// Number of pixels in which at least one channel saturated.
    pub clipped_pixels: u64,
    /// Total number of pixels processed.
    pub total_pixels: u64,
    /// Largest per-channel overshoot beyond 255 (in pre-clamp 8-bit units).
    pub max_overshoot: f32,
}

annolight_support::impl_json!(struct ClipStats { clipped_pixels, total_pixels, max_overshoot });

impl ClipStats {
    /// Fraction of pixels that clipped, in `[0, 1]`.
    pub fn clipped_fraction(&self) -> f64 {
        if self.total_pixels == 0 {
            0.0
        } else {
            self.clipped_pixels as f64 / self.total_pixels as f64
        }
    }
}

/// Applies contrast enhancement `C' = min(255, C·k)` to every channel of
/// every pixel, in place, and reports clipping statistics.
///
/// `k` is the compensation factor `L/L' ≥ 1` computed from the backlight
/// dimming ratio. Values `k < 1` are permitted (they darken the image and
/// can never clip).
///
/// # Panics
///
/// Panics if `k` is negative or not finite.
///
/// # Example
///
/// ```
/// use annolight_imgproc::{contrast_enhance, Frame, Rgb8};
/// let mut f = Frame::filled(4, 4, Rgb8::new(100, 100, 200));
/// let stats = contrast_enhance(&mut f, 2.0);
/// assert_eq!(f.pixel(0, 0), Rgb8::new(200, 200, 255));
/// assert_eq!(stats.clipped_pixels, 16); // blue channel saturated everywhere
/// ```
pub fn contrast_enhance(frame: &mut Frame, k: f32) -> ClipStats {
    assert!(k.is_finite() && k >= 0.0, "compensation factor {k} must be finite and >= 0");
    let mut stats = ClipStats { total_pixels: frame.pixel_count() as u64, ..Default::default() };
    for c in frame.as_bytes_mut().chunks_exact_mut(3) {
        let mut clipped = false;
        for ch in c.iter_mut() {
            let scaled = f32::from(*ch) * k;
            if scaled > 255.0 {
                clipped = true;
                stats.max_overshoot = stats.max_overshoot.max(scaled - 255.0);
                *ch = 255;
            } else {
                *ch = scaled.round() as u8;
            }
        }
        if clipped {
            stats.clipped_pixels += 1;
        }
    }
    stats
}

/// Applies brightness compensation `C' = min(255, C + delta)` to every
/// channel of every pixel, in place, and reports clipping statistics.
///
/// # Example
///
/// ```
/// use annolight_imgproc::{brightness_compensate, Frame, Rgb8};
/// let mut f = Frame::filled(2, 2, Rgb8::new(250, 10, 10));
/// let stats = brightness_compensate(&mut f, 20);
/// assert_eq!(f.pixel(0, 0), Rgb8::new(255, 30, 30));
/// assert_eq!(stats.clipped_pixels, 4);
/// ```
pub fn brightness_compensate(frame: &mut Frame, delta: u8) -> ClipStats {
    let mut stats = ClipStats { total_pixels: frame.pixel_count() as u64, ..Default::default() };
    for c in frame.as_bytes_mut().chunks_exact_mut(3) {
        let mut clipped = false;
        for ch in c.iter_mut() {
            let sum = u16::from(*ch) + u16::from(delta);
            if sum > 255 {
                clipped = true;
                stats.max_overshoot = stats.max_overshoot.max(f32::from(sum - 255));
                *ch = 255;
            } else {
                *ch = sum as u8;
            }
        }
        if clipped {
            stats.clipped_pixels += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb8;

    #[test]
    fn contrast_identity() {
        let orig = Frame::from_fn(8, 8, |x, y| [(x * 31) as u8, (y * 31) as u8, 77]);
        let mut f = orig.clone();
        let stats = contrast_enhance(&mut f, 1.0);
        assert_eq!(f, orig);
        assert_eq!(stats.clipped_pixels, 0);
        assert_eq!(stats.max_overshoot, 0.0);
    }

    #[test]
    fn contrast_scales_without_clipping() {
        let mut f = Frame::filled(4, 4, Rgb8::new(10, 20, 40));
        let stats = contrast_enhance(&mut f, 2.5);
        assert_eq!(f.pixel(2, 2), Rgb8::new(25, 50, 100));
        assert_eq!(stats.clipped_pixels, 0);
    }

    #[test]
    fn contrast_never_lowers_pixels_for_k_ge_1() {
        let orig = Frame::from_fn(16, 16, |x, y| [(x * 16) as u8, (y * 16) as u8, ((x + y) * 8) as u8]);
        let mut f = orig.clone();
        contrast_enhance(&mut f, 1.7);
        for (a, b) in orig.pixels().zip(f.pixels()) {
            assert!(b.r >= a.r && b.g >= a.g && b.b >= a.b);
        }
    }

    #[test]
    fn contrast_counts_clips_once_per_pixel() {
        // Both r and g saturate but the pixel is counted once.
        let mut f = Frame::filled(3, 3, Rgb8::new(200, 201, 2));
        let stats = contrast_enhance(&mut f, 1.5);
        assert_eq!(stats.clipped_pixels, 9);
        assert_eq!(stats.total_pixels, 9);
        assert!((stats.clipped_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contrast_overshoot_is_tracked() {
        let mut f = Frame::filled(1, 1, Rgb8::new(200, 0, 0));
        let stats = contrast_enhance(&mut f, 2.0);
        assert!((stats.max_overshoot - 145.0).abs() < 1e-3);
    }

    #[test]
    fn darkening_never_clips() {
        let mut f = Frame::filled(5, 5, Rgb8::new(255, 255, 255));
        let stats = contrast_enhance(&mut f, 0.5);
        assert_eq!(stats.clipped_pixels, 0);
        assert_eq!(f.pixel(0, 0), Rgb8::gray(128));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn contrast_rejects_nan() {
        let mut f = Frame::new(1, 1);
        contrast_enhance(&mut f, f32::NAN);
    }

    #[test]
    fn brightness_adds_uniformly() {
        let mut f = Frame::filled(2, 2, Rgb8::new(10, 20, 30));
        let stats = brightness_compensate(&mut f, 15);
        assert_eq!(f.pixel(0, 0), Rgb8::new(25, 35, 45));
        assert_eq!(stats.clipped_pixels, 0);
    }

    #[test]
    fn brightness_zero_delta_is_identity() {
        let orig = Frame::from_fn(4, 4, |x, _| [x as u8 * 60, 3, 250]);
        let mut f = orig.clone();
        let stats = brightness_compensate(&mut f, 0);
        assert_eq!(f, orig);
        assert_eq!(stats.clipped_pixels, 0);
    }

    #[test]
    fn clip_stats_fraction_empty() {
        let s = ClipStats::default();
        assert_eq!(s.clipped_fraction(), 0.0);
    }

    #[test]
    fn compensation_preserves_hue_for_gray() {
        // Gray input must stay gray under both operators (the paper notes
        // each RGB value is compensated by the same amount to keep colors).
        let mut f = Frame::filled(2, 2, Rgb8::gray(60));
        contrast_enhance(&mut f, 1.9);
        let p = f.pixel(0, 0);
        assert!(p.r == p.g && p.g == p.b);
        let mut g = Frame::filled(2, 2, Rgb8::gray(60));
        brightness_compensate(&mut g, 33);
        let q = g.pixel(0, 0);
        assert!(q.r == q.g && q.g == q.b);
    }
}
