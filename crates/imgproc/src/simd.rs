//! Runtime-dispatched SIMD kernels for the per-pixel hot path.
//!
//! PR 5 vectorised the codec's SAD/half-pel inner loops; this module
//! extends the same **exact-or-reference** discipline to the imgproc
//! layer: histogram accumulation, [`CompensationLut`] application and
//! the [`HebsLut`] remap each get an SSE2 baseline and an AVX2
//! lane-widened variant, selected at runtime. Every kernel computes the
//! *identical* integer arithmetic as its retained scalar reference —
//! byte-for-byte, stats included — so tier selection can never change
//! output bytes (the `pipeline_identity` conformance tier and the
//! `simd_props` check! properties pin this down across tiers, worker
//! counts and ragged frame geometries).
//!
//! # Dispatch
//!
//! [`kernel_tier`] picks the widest tier the host supports, overridable
//! with `ANNOLIGHT_KERNEL_TIER=scalar|sse2|avx2` (clamped to what the
//! CPU actually has — asking for AVX2 on an SSE2-only host falls back).
//! Every public entry point also has an explicit `*_with(tier)` form on
//! the owning type so differential tests can pin a tier.
//!
//! # Exactness arguments (checked by the property tiers)
//!
//! * **Luma histogram** — the scalar kernel computes
//!   `y = WR·r + WG·g + WB·b; luma = (y + 32768) >> 16` in `u32`. The
//!   vector form evaluates `pmaddwd` with weights `[WR, WG − 65536, WB, 0]`
//!   (WG alone exceeds `i16::MAX`) and repairs the signed trick by adding
//!   `g·65536` back — the same `y` in `i32`, exactly, since every partial
//!   product fits. Lane counts land in per-lane partial histograms that
//!   are reduced by unsigned addition ([`Histogram::add_bin_counts`] /
//!   [`Histogram::merged`] semantics), which is order-independent.
//! * **Compensation LUT** — `value(c) = (c·k + 32768) >> 16` with `k` in
//!   16.16 fixed point splits as `k = kh·65536 + kl`, giving
//!   `value(c) = c·kh + ((c·kl + 32768) >> 16)` where the inner term is
//!   `mulhi_epu16(c, kl) + (mullo_epi16(c, kl) >> 15)` (the carry of
//!   `+32768` is exactly bit 15 of the low half). For `kh ≤ 127` every
//!   intermediate fits a positive `i16` lane and `packus` saturation
//!   reproduces the scalar's clip-to-255 lane exactly; larger factors
//!   (k ≥ 128, far beyond any real backlight ratio) fall back to the
//!   scalar reference so dispatch stays exact for *all* inputs.
//! * **Clip statistics** — `clipped[c]` is upward-closed in `c` (the raw
//!   product is monotone), so the clipped set is `c ≥ c_min` — one
//!   unsigned byte compare per lane. A pixel clips when *any* of its 3
//!   channels clip: three 16-byte masks concatenate to a 48-bit mask and
//!   `popcount((M | M≫1 | M≫2) & 0x2492_4924_9249)` counts pixel
//!   starts. `max_overshoot` is the overshoot of the *largest* clipped
//!   channel value (the overshoot table is monotone on the clipped
//!   range), tracked as a running `max_epu8`.
//! * **HEBS remap** — a 256-entry table gather. The SSE2 tier vectorises
//!   the clip statistics and keeps the scalar gather; the AVX2 tier
//!   remaps 32 bytes at a time through 16 nibble-indexed `vpshufb` row
//!   lookups (exact: each byte selects its table row by high nibble and
//!   its entry by low nibble).

use crate::compensate::{ClipStats, CompensationLut};
use crate::frame::Frame;
use crate::hebs::HebsLut;
use crate::histogram::Histogram;
use std::sync::OnceLock;

/// A SIMD capability tier for the per-pixel kernels.
///
/// Tiers are totally ordered: every tier computes byte-identical results,
/// wider tiers are only faster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelTier {
    /// The retained scalar reference kernels (every platform).
    Scalar,
    /// 128-bit SSE2 kernels (baseline on x86-64).
    Sse2,
    /// 256-bit AVX2 lane-widened kernels (runtime-detected).
    Avx2,
}

impl KernelTier {
    /// All tiers, narrowest first (the order conformance tests sweep).
    pub const ALL: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Sse2, KernelTier::Avx2];

    /// Whether this tier's kernels can run on the current host.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            KernelTier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Sse2 => true, // SSE2 is part of the x86-64 baseline ISA
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The widest tier the host supports.
    #[must_use]
    pub fn detect() -> KernelTier {
        if KernelTier::Avx2.is_available() {
            KernelTier::Avx2
        } else if KernelTier::Sse2.is_available() {
            KernelTier::Sse2
        } else {
            KernelTier::Scalar
        }
    }

    /// Clamps a requested tier to what the host supports (requesting
    /// AVX2 on an SSE2-only machine degrades to SSE2, never errors —
    /// results are identical by construction).
    #[must_use]
    pub fn clamped(self) -> KernelTier {
        if self.is_available() {
            self
        } else if self >= KernelTier::Sse2 && KernelTier::Sse2.is_available() {
            KernelTier::Sse2
        } else {
            KernelTier::Scalar
        }
    }

    /// Parses a tier name (`scalar`, `sse2`, `avx2`), case-insensitive.
    #[must_use]
    pub fn parse(name: &str) -> Option<KernelTier> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelTier::Scalar),
            "sse2" => Some(KernelTier::Sse2),
            "avx2" => Some(KernelTier::Avx2),
            _ => None,
        }
    }

    /// The tier's lower-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Sse2 => "sse2",
            KernelTier::Avx2 => "avx2",
        }
    }
}

/// The process-wide default kernel tier: the widest the host supports,
/// unless `ANNOLIGHT_KERNEL_TIER=scalar|sse2|avx2` pins one (still
/// clamped to host capability). Cached after the first call.
pub fn kernel_tier() -> KernelTier {
    static TIER: OnceLock<KernelTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        match std::env::var("ANNOLIGHT_KERNEL_TIER") {
            Ok(name) => KernelTier::parse(name.trim())
                .unwrap_or_else(|| {
                    panic!("ANNOLIGHT_KERNEL_TIER={name:?} is not scalar|sse2|avx2")
                })
                .clamped(),
            Err(_) => KernelTier::detect(),
        }
    })
}

// ---------------------------------------------------------------------------
// Luma histogram accumulation
// ---------------------------------------------------------------------------

/// Accumulates the luma histogram of interleaved RGB bytes into `counts`
/// (one `u32` per luminance bin) at the requested tier. `rgb.len()` must
/// be a multiple of 3; counts are *added*, not reset.
pub(crate) fn luma_counts(rgb: &[u8], counts: &mut [u32; 256], tier: KernelTier) {
    debug_assert!(rgb.len() % 3 == 0);
    match tier.clamped() {
        KernelTier::Scalar => luma_counts_scalar(rgb, counts),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Sse2 => luma_counts_sse2(rgb, counts),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => luma_counts_avx2(rgb, counts),
        #[cfg(not(target_arch = "x86_64"))]
        _ => luma_counts_scalar(rgb, counts),
    }
}

/// The scalar reference accumulator (`luma_u8_lut` per pixel — exactly
/// the pre-SIMD histogram kernel).
fn luma_counts_scalar(rgb: &[u8], counts: &mut [u32; 256]) {
    for px in rgb.chunks_exact(3) {
        counts[crate::color::luma_u8_lut(px[0], px[1], px[2]) as usize] += 1;
    }
}

/// Folds four per-lane partial histograms into `counts` — the
/// [`Histogram::merged`]-style unsigned reduction, order-independent.
#[cfg(target_arch = "x86_64")]
fn fold_partials(counts: &mut [u32; 256], parts: &[[u32; 256]; 4]) {
    for v in 0..256 {
        counts[v] += parts[0][v] + parts[1][v] + parts[2][v] + parts[3][v];
    }
}

/// `pmaddwd` weight vector `[WR, WG − 65536, WB, 0]` as `i16` lanes, and
/// the post-hoc `g·65536` repair mask — see the module docs.
#[cfg(target_arch = "x86_64")]
const W_GP: i16 = (crate::color::WG as i64 - 65536) as i16;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn luma_counts_sse2(rgb: &[u8], counts: &mut [u32; 256]) {
    use std::arch::x86_64::*;
    let len = rgb.len();
    let n_px = len / 3;
    let mut parts = [[0u32; 256]; 4];
    let mut i = 0usize;
    // SAFETY: all vector loads are assembled from bounds-checked `u32`
    // reads (the `3i + 13 <= len` guard keeps the 4-byte read at offset
    // `3i + 9` in range); stores go to a stack array; SSE2 is baseline
    // on x86-64.
    unsafe {
        let w = _mm_set_epi16(
            0,
            crate::color::WB as i16,
            W_GP,
            crate::color::WR as i16,
            0,
            crate::color::WB as i16,
            W_GP,
            crate::color::WR as i16,
        );
        let g_mask = _mm_set1_epi32(0x0000_FF00);
        let half = _mm_set1_epi32(32768);
        let zero = _mm_setzero_si128();
        while i + 4 <= n_px && 3 * i + 13 <= len {
            let b = 3 * i;
            let px = |o: usize| -> i32 {
                i32::from_le_bytes(rgb[b + o..b + o + 4].try_into().expect("4-byte read"))
            };
            // Lanes [p0, p1, p2, p3], each `r | g<<8 | b<<16 | junk<<24`;
            // the junk byte multiplies the zero weight lane.
            let x = _mm_set_epi32(px(9), px(6), px(3), px(0));
            let lo16 = _mm_unpacklo_epi8(x, zero); // p0, p1 as u16 lanes
            let hi16 = _mm_unpackhi_epi8(x, zero); // p2, p3
            let mlo = _mm_madd_epi16(lo16, w); // [p0a, p0b, p1a, p1b]
            let mhi = _mm_madd_epi16(hi16, w);
            // Pair-add to per-pixel sums in lanes 0 and 2, then gather.
            let slo = _mm_add_epi32(mlo, _mm_srli_si128(mlo, 4));
            let shi = _mm_add_epi32(mhi, _mm_srli_si128(mhi, 4));
            let y_sums = _mm_unpacklo_epi64(
                _mm_shuffle_epi32(slo, 0b10_00_10_00),
                _mm_shuffle_epi32(shi, 0b10_00_10_00),
            );
            // Repair the signed-WG trick (+ g·65536), round, shift.
            let corr = _mm_slli_epi32(_mm_and_si128(x, g_mask), 8);
            let lum = _mm_srli_epi32(_mm_add_epi32(_mm_add_epi32(y_sums, corr), half), 16);
            let mut lanes = [0u32; 4];
            _mm_storeu_si128(lanes.as_mut_ptr().cast(), lum);
            parts[0][lanes[0] as usize] += 1;
            parts[1][lanes[1] as usize] += 1;
            parts[2][lanes[2] as usize] += 1;
            parts[3][lanes[3] as usize] += 1;
            i += 4;
        }
    }
    // Ragged tail: scalar reference into partial 0.
    for px in rgb[3 * i..].chunks_exact(3) {
        parts[0][crate::color::luma_u8_lut(px[0], px[1], px[2]) as usize] += 1;
    }
    fold_partials(counts, &parts);
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn luma_counts_avx2(rgb: &[u8], counts: &mut [u32; 256]) {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return luma_counts_sse2(rgb, counts);
    }
    // SAFETY: AVX2 availability checked immediately above.
    unsafe { luma_counts_avx2_inner(rgb, counts) }
}

/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
unsafe fn luma_counts_avx2_inner(rgb: &[u8], counts: &mut [u32; 256]) {
    use std::arch::x86_64::*;
    let len = rgb.len();
    let n_px = len / 3;
    let mut parts = [[0u32; 256]; 4];
    let mut i = 0usize;
    // SAFETY: vector lanes are assembled from bounds-checked `u32` reads
    // (the `3i + 25 <= len` guard keeps the last 4-byte read, at offset
    // `3i + 21`, in range); stores go to a stack array.
    unsafe {
        let w = _mm256_set1_epi64x(
            (u64::from(crate::color::WR as u16)
                | (u64::from(W_GP as u16) << 16)
                | (u64::from(crate::color::WB as u16) << 32)) as i64,
        );
        let g_mask = _mm256_set1_epi32(0x0000_FF00);
        let half = _mm256_set1_epi32(32768);
        let zero = _mm256_setzero_si256();
        while i + 8 <= n_px && 3 * i + 25 <= len {
            let b = 3 * i;
            let px = |o: usize| -> i32 {
                i32::from_le_bytes(rgb[b + o..b + o + 4].try_into().expect("4-byte read"))
            };
            let x = _mm256_set_epi32(px(21), px(18), px(15), px(12), px(9), px(6), px(3), px(0));
            // In-lane unpack permutes pixel order across the two 128-bit
            // halves — harmless: histogram accumulation is
            // order-independent.
            let lo16 = _mm256_unpacklo_epi8(x, zero);
            let hi16 = _mm256_unpackhi_epi8(x, zero);
            let mlo = _mm256_madd_epi16(lo16, w);
            let mhi = _mm256_madd_epi16(hi16, w);
            let slo = _mm256_add_epi32(mlo, _mm256_srli_si256(mlo, 4));
            let shi = _mm256_add_epi32(mhi, _mm256_srli_si256(mhi, 4));
            let y_sums = _mm256_unpacklo_epi64(
                _mm256_shuffle_epi32(slo, 0b10_00_10_00),
                _mm256_shuffle_epi32(shi, 0b10_00_10_00),
            );
            // The in-lane unpack/pair-add/gather path puts pixel sums
            // back in original lane order per 128-bit half, so the same
            // g-repair mask as the SSE2 kernel applies lane-for-lane.
            let corr = _mm256_slli_epi32(_mm256_and_si256(x, g_mask), 8);
            let lum =
                _mm256_srli_epi32(_mm256_add_epi32(_mm256_add_epi32(y_sums, corr), half), 16);
            let mut lanes = [0u32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), lum);
            parts[0][lanes[0] as usize] += 1;
            parts[1][lanes[1] as usize] += 1;
            parts[2][lanes[2] as usize] += 1;
            parts[3][lanes[3] as usize] += 1;
            parts[0][lanes[4] as usize] += 1;
            parts[1][lanes[5] as usize] += 1;
            parts[2][lanes[6] as usize] += 1;
            parts[3][lanes[7] as usize] += 1;
            i += 8;
        }
    }
    for px in rgb[3 * i..].chunks_exact(3) {
        parts[0][crate::color::luma_u8_lut(px[0], px[1], px[2]) as usize] += 1;
    }
    fold_partials(counts, &parts);
}

/// Builds the luma histogram of `frame` at `tier` (always byte-identical
/// to the scalar reference; see [`Frame::luma_histogram_with`]).
pub fn luma_histogram(frame: &Frame, tier: KernelTier) -> Histogram {
    let mut h = Histogram::new();
    luma_histogram_into(frame, &mut h, tier);
    h
}

/// Resets `out` and accumulates `frame`'s luma histogram into it —
/// the allocation-free form (both the histogram bins and the kernel's
/// partials are inline/stack storage).
pub fn luma_histogram_into(frame: &Frame, out: &mut Histogram, tier: KernelTier) {
    out.reset();
    let mut counts = [0u32; 256];
    luma_counts(frame.as_bytes(), &mut counts, tier);
    out.add_bin_counts(&counts);
}

// ---------------------------------------------------------------------------
// Clip-mask pixel counting (shared by the compensation and HEBS kernels)
// ---------------------------------------------------------------------------

/// Bits 0, 3, 6, … 45 — the pixel-start positions inside a 48-bit
/// (16-pixel) channel mask.
#[cfg(target_arch = "x86_64")]
const PX_BITS_48: u64 = 0x2492_4924_9249;

/// Counts pixels with *any* set channel bit in a 48-bit channel mask.
#[cfg(target_arch = "x86_64")]
#[inline]
fn count_clipped_pixels_48(m: u64) -> u64 {
    u64::from(((m | (m >> 1) | (m >> 2)) & PX_BITS_48).count_ones())
}

// ---------------------------------------------------------------------------
// Compensation LUT application
// ---------------------------------------------------------------------------

/// Applies `lut` to `frame` in place at `tier`, returning clip stats
/// byte-identical to the scalar reference.
pub fn compensation_apply(lut: &CompensationLut, frame: &mut Frame, tier: KernelTier) -> ClipStats {
    // k >= 128 would overflow the positive-i16 lane argument; no real
    // backlight ratio gets near it. The scalar reference is exact for
    // every factor.
    let vector_ok = lut.k_fixed < (128u64 << 16);
    match tier.clamped() {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Sse2 if vector_ok => compensation_apply_sse2(lut, frame),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 if vector_ok => compensation_apply_avx2(lut, frame),
        _ => lut.apply_scalar(frame),
    }
}

/// The smallest channel value that clips under `lut`, if any. The
/// clipped set is upward-closed (`raw = c·k` is monotone in `c`), so a
/// single unsigned `>=` compare per lane classifies every byte.
#[cfg(target_arch = "x86_64")]
fn clip_threshold(lut: &CompensationLut) -> Option<u8> {
    lut.clipped.iter().position(|&c| c).map(|i| i as u8)
}

/// Scalar per-channel update for the ragged tail of the vector kernels:
/// tracks the max *clipped channel value* instead of the overshoot so
/// the final overshoot lookup matches the vector path bit-for-bit.
#[cfg(target_arch = "x86_64")]
#[inline]
fn comp_tail(lut: &CompensationLut, tail: &mut [u8], clipped_px: &mut u64, max_c: &mut u8, any: &mut bool) {
    for px in tail.chunks_exact_mut(3) {
        let mut clipped = false;
        for ch in px.iter_mut() {
            let i = *ch as usize;
            if lut.clipped[i] {
                clipped = true;
                *any = true;
                if *ch > *max_c {
                    *max_c = *ch;
                }
            }
            *ch = lut.values[i];
        }
        if clipped {
            *clipped_px += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn compensation_apply_sse2(lut: &CompensationLut, frame: &mut Frame) -> ClipStats {
    use std::arch::x86_64::*;
    let total_pixels = frame.pixel_count() as u64;
    let kh = (lut.k_fixed >> 16) as u16;
    let kl = (lut.k_fixed & 0xFFFF) as u16;
    let threshold = clip_threshold(lut);
    let data = frame.as_bytes_mut();
    let blocks = data.len() / 48;
    let mut clipped_px = 0u64;
    let mut max_c = 0u8;
    let mut any = false;
    // SAFETY: every load/store covers a bounds-checked 16-byte subslice
    // of the frame buffer (the block loop stops at `48·blocks <= len`);
    // all accesses are explicitly unaligned; SSE2 is baseline on x86-64.
    unsafe {
        let khv = _mm_set1_epi16(kh as i16);
        let klv = _mm_set1_epi16(kl as i16);
        let zero = _mm_setzero_si128();
        let thr = threshold.map(|t| _mm_set1_epi8(t as i8));
        let mut maxv = _mm_setzero_si128();
        for blk in 0..blocks {
            let base = blk * 48;
            let mut mask48 = 0u64;
            for part in 0..3 {
                let off = base + part * 16;
                let v = _mm_loadu_si128(data[off..off + 16].as_ptr().cast());
                // value(c) = c·kh + mulhi_u16(c, kl) + (mullo(c, kl) >> 15)
                // — exactly (c·k + 32768) >> 16 for kh <= 127.
                let lo = _mm_unpacklo_epi8(v, zero);
                let hi = _mm_unpackhi_epi8(v, zero);
                let val_lo = _mm_add_epi16(
                    _mm_mullo_epi16(lo, khv),
                    _mm_add_epi16(
                        _mm_mulhi_epu16(lo, klv),
                        _mm_srli_epi16(_mm_mullo_epi16(lo, klv), 15),
                    ),
                );
                let val_hi = _mm_add_epi16(
                    _mm_mullo_epi16(hi, khv),
                    _mm_add_epi16(
                        _mm_mulhi_epu16(hi, klv),
                        _mm_srli_epi16(_mm_mullo_epi16(hi, klv), 15),
                    ),
                );
                // Clipped lanes exceed 255 and saturate — the scalar
                // clip-to-255 lane, exactly.
                let out = _mm_packus_epi16(val_lo, val_hi);
                _mm_storeu_si128(data[off..off + 16].as_mut_ptr().cast(), out);
                if let Some(t) = thr {
                    // v >= threshold, unsigned: max(v, t) == v.
                    let ge = _mm_cmpeq_epi8(_mm_max_epu8(v, t), v);
                    maxv = _mm_max_epu8(maxv, _mm_and_si128(v, ge));
                    let bits = _mm_movemask_epi8(ge) as u32 as u64;
                    mask48 |= bits << (16 * part);
                }
            }
            if mask48 != 0 {
                any = true;
                clipped_px += count_clipped_pixels_48(mask48);
            }
        }
        if any {
            let mut bytes = [0u8; 16];
            _mm_storeu_si128(bytes.as_mut_ptr().cast(), maxv);
            max_c = bytes.iter().copied().max().expect("non-empty");
        }
    }
    comp_tail(lut, &mut data[blocks * 48..], &mut clipped_px, &mut max_c, &mut any);
    ClipStats {
        clipped_pixels: clipped_px,
        total_pixels,
        max_overshoot: if any { lut.overshoot[max_c as usize] } else { 0.0 },
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn compensation_apply_avx2(lut: &CompensationLut, frame: &mut Frame) -> ClipStats {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return compensation_apply_sse2(lut, frame);
    }
    // SAFETY: AVX2 availability checked immediately above.
    unsafe { compensation_apply_avx2_inner(lut, frame) }
}

/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
unsafe fn compensation_apply_avx2_inner(lut: &CompensationLut, frame: &mut Frame) -> ClipStats {
    use std::arch::x86_64::*;
    let total_pixels = frame.pixel_count() as u64;
    let kh = (lut.k_fixed >> 16) as u16;
    let kl = (lut.k_fixed & 0xFFFF) as u16;
    let threshold = clip_threshold(lut);
    let data = frame.as_bytes_mut();
    let blocks = data.len() / 96; // 32 pixels per block
    let mut clipped_px = 0u64;
    let mut max_c = 0u8;
    let mut any = false;
    // SAFETY: every load/store covers a bounds-checked 32-byte subslice;
    // all accesses are explicitly unaligned.
    unsafe {
        let khv = _mm256_set1_epi16(kh as i16);
        let klv = _mm256_set1_epi16(kl as i16);
        let zero = _mm256_setzero_si256();
        let thr = threshold.map(|t| _mm256_set1_epi8(t as i8));
        let mut maxv = _mm256_setzero_si256();
        for blk in 0..blocks {
            let base = blk * 96;
            let mut mask96 = 0u128;
            for part in 0..3 {
                let off = base + part * 32;
                let v = _mm256_loadu_si256(data[off..off + 32].as_ptr().cast());
                let lo = _mm256_unpacklo_epi8(v, zero);
                let hi = _mm256_unpackhi_epi8(v, zero);
                let val_lo = _mm256_add_epi16(
                    _mm256_mullo_epi16(lo, khv),
                    _mm256_add_epi16(
                        _mm256_mulhi_epu16(lo, klv),
                        _mm256_srli_epi16(_mm256_mullo_epi16(lo, klv), 15),
                    ),
                );
                let val_hi = _mm256_add_epi16(
                    _mm256_mullo_epi16(hi, khv),
                    _mm256_add_epi16(
                        _mm256_mulhi_epu16(hi, klv),
                        _mm256_srli_epi16(_mm256_mullo_epi16(hi, klv), 15),
                    ),
                );
                // packus is in-lane and unpack lo/hi are in-lane, so the
                // byte order round-trips exactly.
                let out = _mm256_packus_epi16(val_lo, val_hi);
                _mm256_storeu_si256(data[off..off + 32].as_mut_ptr().cast(), out);
                if let Some(t) = thr {
                    let ge = _mm256_cmpeq_epi8(_mm256_max_epu8(v, t), v);
                    maxv = _mm256_max_epu8(maxv, _mm256_and_si256(v, ge));
                    let bits = _mm256_movemask_epi8(ge) as u32 as u128;
                    mask96 |= bits << (32 * part);
                }
            }
            if mask96 != 0 {
                any = true;
                // Same pixel-start trick as the 48-bit form, widened to
                // 96 bits (32 pixels).
                const PX_BITS_96: u128 = 0x0024_9249_2492_4924_9249_2492_4924_9249;
                clipped_px += u128::count_ones(
                    (mask96 | (mask96 >> 1) | (mask96 >> 2)) & PX_BITS_96,
                ) as u64;
            }
        }
        if any {
            let mut bytes = [0u8; 32];
            _mm256_storeu_si256(bytes.as_mut_ptr().cast(), maxv);
            max_c = bytes.iter().copied().max().expect("non-empty");
        }
    }
    comp_tail(lut, &mut data[blocks * 96..], &mut clipped_px, &mut max_c, &mut any);
    ClipStats {
        clipped_pixels: clipped_px,
        total_pixels,
        max_overshoot: if any { lut.overshoot[max_c as usize] } else { 0.0 },
    }
}

// ---------------------------------------------------------------------------
// HEBS remap application
// ---------------------------------------------------------------------------

/// Applies the HEBS remap to `frame` in place at `tier`, returning clip
/// stats byte-identical to the scalar reference.
pub fn hebs_apply(lut: &HebsLut, frame: &mut Frame, tier: KernelTier) -> ClipStats {
    match tier.clamped() {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Sse2 => hebs_apply_sse2(lut, frame),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => hebs_apply_avx2(lut, frame),
        _ => lut.apply_scalar(frame),
    }
}

/// HEBS clipping threshold: channels strictly above the effective max
/// clip, i.e. `c >= eff + 1`; `None` when nothing can clip (`eff` is 0
/// or 255).
#[cfg(target_arch = "x86_64")]
fn hebs_threshold(lut: &HebsLut) -> Option<u8> {
    if lut.effective_max == 0 || lut.effective_max == 255 {
        None
    } else {
        Some(lut.effective_max + 1)
    }
}

/// Scalar tail for the HEBS vector kernels (same max-clipped-channel
/// tracking as [`comp_tail`]).
#[cfg(target_arch = "x86_64")]
#[inline]
fn hebs_tail(lut: &HebsLut, tail: &mut [u8], clipped_px: &mut u64, max_c: &mut u8, any: &mut bool) {
    for px in tail.chunks_exact_mut(3) {
        let mut clipped = false;
        for ch in px.iter_mut() {
            if lut.is_clipped(*ch) {
                clipped = true;
                *any = true;
                if *ch > *max_c {
                    *max_c = *ch;
                }
            }
            *ch = lut.remap[*ch as usize];
        }
        if clipped {
            *clipped_px += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn hebs_stats_to_clipstats(lut: &HebsLut, clipped_px: u64, max_c: u8, any: bool, total: u64) -> ClipStats {
    ClipStats {
        clipped_pixels: clipped_px,
        total_pixels: total,
        // The scalar kernel's overshoot is `c − eff` of the largest
        // clipped channel (monotone in `c`), as exact `f32` arithmetic
        // on small integers.
        max_overshoot: if any {
            f32::from(max_c) - f32::from(lut.effective_max)
        } else {
            0.0
        },
    }
}

/// SSE2 tier: vectorised clip statistics, unrolled scalar table gather
/// (SSE2 has no byte gather; the stats masks are where the scalar loop
/// spends its branches).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn hebs_apply_sse2(lut: &HebsLut, frame: &mut Frame) -> ClipStats {
    use std::arch::x86_64::*;
    let total_pixels = frame.pixel_count() as u64;
    let threshold = hebs_threshold(lut);
    let data = frame.as_bytes_mut();
    let blocks = data.len() / 48;
    let mut clipped_px = 0u64;
    let mut max_c = 0u8;
    let mut any = false;
    // SAFETY: loads cover bounds-checked 16-byte subslices; SSE2 is
    // baseline on x86-64.
    unsafe {
        let thr = threshold.map(|t| _mm_set1_epi8(t as i8));
        let mut maxv = _mm_setzero_si128();
        for blk in 0..blocks {
            let base = blk * 48;
            if let Some(t) = thr {
                let mut mask48 = 0u64;
                for part in 0..3 {
                    let off = base + part * 16;
                    let v = _mm_loadu_si128(data[off..off + 16].as_ptr().cast());
                    let ge = _mm_cmpeq_epi8(_mm_max_epu8(v, t), v);
                    maxv = _mm_max_epu8(maxv, _mm_and_si128(v, ge));
                    let bits = _mm_movemask_epi8(ge) as u32 as u64;
                    mask48 |= bits << (16 * part);
                }
                if mask48 != 0 {
                    any = true;
                    clipped_px += count_clipped_pixels_48(mask48);
                }
            }
            // Table gather, unrolled over the block.
            for byte in &mut data[base..base + 48] {
                *byte = lut.remap[*byte as usize];
            }
        }
        if any {
            let mut bytes = [0u8; 16];
            _mm_storeu_si128(bytes.as_mut_ptr().cast(), maxv);
            max_c = bytes.iter().copied().max().expect("non-empty");
        }
    }
    hebs_tail(lut, &mut data[blocks * 48..], &mut clipped_px, &mut max_c, &mut any);
    hebs_stats_to_clipstats(lut, clipped_px, max_c, any, total_pixels)
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn hebs_apply_avx2(lut: &HebsLut, frame: &mut Frame) -> ClipStats {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return hebs_apply_sse2(lut, frame);
    }
    // SAFETY: AVX2 availability checked immediately above.
    unsafe { hebs_apply_avx2_inner(lut, frame) }
}

/// AVX2 tier: full-vector remap. Each 32-byte vector is remapped through
/// 16 nibble-row `vpshufb` lookups — byte `c` selects table row
/// `c >> 4` (a `cmpeq` mask against the row index) and entry `c & 15`
/// (the shuffle index), which is exactly `remap[c]`.
///
/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
unsafe fn hebs_apply_avx2_inner(lut: &HebsLut, frame: &mut Frame) -> ClipStats {
    use std::arch::x86_64::*;
    let total_pixels = frame.pixel_count() as u64;
    let threshold = hebs_threshold(lut);
    let data = frame.as_bytes_mut();
    let blocks = data.len() / 96;
    let mut clipped_px = 0u64;
    let mut max_c = 0u8;
    let mut any = false;
    // SAFETY: loads/stores cover bounds-checked 32-byte subslices; the
    // row loads cover 16-byte subslices of the 256-entry table.
    unsafe {
        // The 16 table rows, each broadcast to both 128-bit lanes.
        let mut rows = [_mm256_setzero_si256(); 16];
        for (r, row) in rows.iter_mut().enumerate() {
            *row = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                lut.remap[r * 16..r * 16 + 16].as_ptr().cast(),
            ));
        }
        let low_nib = _mm256_set1_epi8(0x0F);
        let thr = threshold.map(|t| _mm256_set1_epi8(t as i8));
        let mut maxv = _mm256_setzero_si256();
        for blk in 0..blocks {
            let base = blk * 96;
            let mut mask96 = 0u128;
            for part in 0..3 {
                let off = base + part * 32;
                let v = _mm256_loadu_si256(data[off..off + 32].as_ptr().cast());
                if let Some(t) = thr {
                    let ge = _mm256_cmpeq_epi8(_mm256_max_epu8(v, t), v);
                    maxv = _mm256_max_epu8(maxv, _mm256_and_si256(v, ge));
                    let bits = _mm256_movemask_epi8(ge) as u32 as u128;
                    mask96 |= bits << (32 * part);
                }
                let lo = _mm256_and_si256(v, low_nib);
                let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_nib);
                let mut out = _mm256_setzero_si256();
                for (r, row) in rows.iter().enumerate() {
                    let sel = _mm256_cmpeq_epi8(hi, _mm256_set1_epi8(r as i8));
                    out = _mm256_or_si256(out, _mm256_and_si256(_mm256_shuffle_epi8(*row, lo), sel));
                }
                _mm256_storeu_si256(data[off..off + 32].as_mut_ptr().cast(), out);
            }
            if mask96 != 0 {
                any = true;
                const PX_BITS_96: u128 = 0x0024_9249_2492_4924_9249_2492_4924_9249;
                clipped_px += u128::count_ones(
                    (mask96 | (mask96 >> 1) | (mask96 >> 2)) & PX_BITS_96,
                ) as u64;
            }
        }
        if any {
            let mut bytes = [0u8; 32];
            _mm256_storeu_si256(bytes.as_mut_ptr().cast(), maxv);
            max_c = bytes.iter().copied().max().expect("non-empty");
        }
    }
    hebs_tail(lut, &mut data[blocks * 96..], &mut clipped_px, &mut max_c, &mut any);
    hebs_stats_to_clipstats(lut, clipped_px, max_c, any, total_pixels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_support::rng::SmallRng;

    fn random_frame(rng: &mut SmallRng, w: u32, h: u32) -> Frame {
        Frame::from_fn(w, h, |_, _| {
            [
                (rng.next_u64() % 256) as u8,
                (rng.next_u64() % 256) as u8,
                (rng.next_u64() % 256) as u8,
            ]
        })
    }

    /// Geometries that exercise every vector-width boundary: below one
    /// SSE2 block, exactly one block, ragged tails on both sides of the
    /// AVX2 width, and a larger frame.
    const GEOMETRIES: [(u32, u32); 8] =
        [(1, 1), (3, 1), (4, 4), (5, 3), (16, 1), (17, 3), (31, 2), (64, 33)];

    #[test]
    fn tier_parsing_and_clamping() {
        assert_eq!(KernelTier::parse("scalar"), Some(KernelTier::Scalar));
        assert_eq!(KernelTier::parse("SSE2"), Some(KernelTier::Sse2));
        assert_eq!(KernelTier::parse("Avx2"), Some(KernelTier::Avx2));
        assert_eq!(KernelTier::parse("neon"), None);
        assert!(KernelTier::Scalar.is_available());
        // The clamped tier is always available.
        for t in KernelTier::ALL {
            assert!(t.clamped().is_available(), "{t:?}");
        }
        assert!(kernel_tier().is_available());
    }

    #[test]
    fn luma_histogram_matches_scalar_on_all_tiers() {
        let mut rng = SmallRng::seed_from_u64(0x51D0);
        for (w, h) in GEOMETRIES {
            let f = random_frame(&mut rng, w, h);
            let reference = luma_histogram(&f, KernelTier::Scalar);
            for tier in KernelTier::ALL {
                let got = luma_histogram(&f, tier);
                assert_eq!(reference, got, "{w}x{h} tier={tier:?}");
            }
        }
    }

    #[test]
    fn compensation_matches_scalar_on_all_tiers() {
        let mut rng = SmallRng::seed_from_u64(0x51D1);
        for (w, h) in GEOMETRIES {
            for k in [0.0f32, 0.5, 1.0, 1.2, 1.7, 2.5, 6.375, 127.9, 200.0] {
                let lut = CompensationLut::new(k);
                let orig = random_frame(&mut rng, w, h);
                let mut want = orig.clone();
                let want_stats = lut.apply_scalar(&mut want);
                for tier in KernelTier::ALL {
                    let mut got = orig.clone();
                    let got_stats = compensation_apply(&lut, &mut got, tier);
                    assert_eq!(want, got, "{w}x{h} k={k} tier={tier:?}");
                    assert_eq!(want_stats, got_stats, "{w}x{h} k={k} tier={tier:?}");
                }
            }
        }
    }

    #[test]
    fn hebs_matches_scalar_on_all_tiers() {
        let mut rng = SmallRng::seed_from_u64(0x51D2);
        for (w, h) in GEOMETRIES {
            let sample = random_frame(&mut rng, 16, 16);
            let hist = sample.luma_histogram();
            for eff in [0u8, 1, 40, 128, 200, 254, 255] {
                let lut = HebsLut::from_histogram(&hist, eff);
                let orig = random_frame(&mut rng, w, h);
                let mut want = orig.clone();
                let want_stats = lut.apply_scalar(&mut want);
                for tier in KernelTier::ALL {
                    let mut got = orig.clone();
                    let got_stats = hebs_apply(&lut, &mut got, tier);
                    assert_eq!(want, got, "{w}x{h} eff={eff} tier={tier:?}");
                    assert_eq!(want_stats, got_stats, "{w}x{h} eff={eff} tier={tier:?}");
                }
            }
        }
    }
}
