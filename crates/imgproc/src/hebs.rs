//! HEBS — histogram-equalization backlight scaling (after Iranli, Fatemi
//! and Pedram).
//!
//! Where the paper's peak-clipping policy derives the pixel
//! transformation from a single scalar (the effective maximum
//! luminance), HEBS derives it from the **full luminance histogram**: the
//! darker a scene's mass sits, the more aggressively midtones can be
//! brightened, which lets the backlight drop further than the pure
//! contrast stretch allows while the perceived image stays comparable.
//!
//! The transformation built here is a monotone 256-entry remap
//! ([`HebsLut`]), the pointwise **maximum** of two monotone curves:
//!
//! * the **contrast stretch** `v ↦ min(255, v·255/eff)` — the same
//!   clipping-budget bound the peak-clip policy applies, evaluated in
//!   the crate's 16.16 fixed-point discipline
//!   ([`scale_channel_fixed`](crate::compensate::scale_channel_fixed)
//!   rounding, exact integer arithmetic); and
//! * the **histogram equalization** curve `v ↦ round(255·F(v))` with
//!   `F` the *mid-distribution* CDF (mass strictly below `v` plus half
//!   the mass at `v`) of the histogram restricted to values at or below
//!   the effective maximum — the midpoint convention both keeps a
//!   sparsely-populated black level near 0 **and** lifts a dominant
//!   dark bin to its mass midpoint, which is where the backlight gain
//!   comes from.
//!
//! Taking the max keeps the two invariants the conformance tier pins
//! down: the remap is monotone (max of two monotone curves), and it is
//! **never darker than the clipping bound** — HEBS only ever brightens
//! relative to peak-clip compensation, so its backlight level can only
//! be lower. Everything above the effective maximum maps to full scale,
//! exactly like the clipped lane of the peak policy.
//!
//! Like [`CompensationLut`](crate::compensate::CompensationLut), the
//! table is pure integer arithmetic built once per scene;
//! [`hebs_remap_scalar`] recomputes any single entry from first
//! principles and is the 0-ULP oracle the property tests compare the
//! table against.

use crate::compensate::ClipStats;
use crate::compensate::{COMPENSATION_FIXED_ONE, COMPENSATION_FIXED_SHIFT};
use crate::frame::Frame;
use crate::histogram::Histogram;

/// The 16.16 fixed-point contrast-stretch factor `255/eff`, rounded to
/// nearest.
///
/// # Panics
///
/// Panics if `effective_max` is zero (a black scene has no stretch).
#[must_use]
pub fn hebs_stretch_fixed(effective_max: u8) -> u64 {
    assert!(effective_max > 0, "black scene has no contrast stretch");
    let e = u64::from(effective_max);
    ((255u64 << COMPENSATION_FIXED_SHIFT) + e / 2) / e
}

/// The contrast-stretch value for channel input `v` at `effective_max`:
/// `min(255, round_fixed(v·255/eff))`, the clipping-bound lower envelope
/// of the HEBS remap. Exact integer arithmetic.
#[must_use]
pub fn hebs_stretch_value(effective_max: u8, v: u8) -> u8 {
    if effective_max == 0 {
        return v; // black scene: identity, consistent with the remap
    }
    let raw = u64::from(v) * hebs_stretch_fixed(effective_max);
    if raw > 255 * COMPENSATION_FIXED_ONE {
        255
    } else {
        ((raw + COMPENSATION_FIXED_ONE / 2) >> COMPENSATION_FIXED_SHIFT) as u8
    }
}

/// Recomputes one HEBS remap entry from first principles — the scalar
/// oracle the table-driven [`HebsLut`] is property-tested against
/// (exact equality, not approximate).
///
/// For `v ≥ eff` the entry is 255 (the clipped lane). Below, it is the
/// max of [`hebs_stretch_value`] and the equalization curve
/// `round(255·(mass_below(v) + mass_at(v)/2) / mass_at_or_below(eff))`
/// (mid-distribution CDF, integer rounding to nearest). An empty
/// histogram (or `eff == 0`) degenerates to the identity remap.
#[must_use]
pub fn hebs_remap_scalar(hist: &Histogram, effective_max: u8, v: u8) -> u8 {
    if effective_max == 0 {
        return v;
    }
    if v >= effective_max {
        return 255;
    }
    let total: u64 = (0..=effective_max).map(|u| hist.bin(u)).sum();
    let stretch = hebs_stretch_value(effective_max, v);
    if total == 0 {
        return stretch;
    }
    let below: u64 = (0..v).map(|u| hist.bin(u)).sum();
    let eq = (((2 * below + hist.bin(v)) * 255 + total) / (2 * total)) as u8;
    stretch.max(eq)
}

/// A per-scene 256-entry HEBS remap table.
///
/// Built once per scene from the scene's merged luminance histogram and
/// the quality level's effective maximum (the same `clip_level` the
/// peak-clip policy uses, so both policies spend the identical clipping
/// budget). Applied per channel as pure table look-ups — bit-for-bit
/// deterministic across chunkings, worker counts and platforms.
///
/// # Example
///
/// ```
/// use annolight_imgproc::{HebsLut, Histogram};
/// let mut h = Histogram::new();
/// for v in [10u8, 10, 20, 40, 40, 40, 200] {
///     h.add(v);
/// }
/// let lut = HebsLut::from_histogram(&h, 40);
/// assert_eq!(lut.value(40), 255); // effective max stretches to full scale
/// assert_eq!(lut.value(200), 255); // clipped lane
/// assert!(lut.value(20) >= lut.value(10)); // monotone
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HebsLut {
    pub(crate) effective_max: u8,
    pub(crate) remap: [u8; 256],
}

impl HebsLut {
    /// Builds the remap for `hist` at the given effective maximum.
    #[must_use]
    pub fn from_histogram(hist: &Histogram, effective_max: u8) -> Self {
        let mut remap = [0u8; 256];
        if effective_max == 0 {
            for (v, slot) in remap.iter_mut().enumerate() {
                *slot = v as u8;
            }
            return Self { effective_max, remap };
        }
        let total: u64 = (0..=effective_max).map(|u| hist.bin(u)).sum();
        let mut below = 0u64;
        for v in 0..256usize {
            let vu = v as u8;
            remap[v] = if vu >= effective_max {
                255
            } else {
                let stretch = hebs_stretch_value(effective_max, vu);
                if total == 0 {
                    stretch
                } else {
                    let eq = (((2 * below + hist.bin(vu)) * 255 + total) / (2 * total)) as u8;
                    stretch.max(eq)
                }
            };
            if vu <= effective_max {
                below += hist.bin(vu);
            }
        }
        Self { effective_max, remap }
    }

    /// The effective maximum luminance the table was built for.
    #[must_use]
    pub fn effective_max(&self) -> u8 {
        self.effective_max
    }

    /// The remapped value for channel input `v`.
    #[must_use]
    pub fn value(&self, v: u8) -> u8 {
        self.remap[v as usize]
    }

    /// The full 256-entry table.
    #[must_use]
    pub fn table(&self) -> &[u8; 256] {
        &self.remap
    }

    /// The clipping-bound lower envelope at `v` (what peak-clip
    /// compensation at the full stretch would produce).
    #[must_use]
    pub fn stretch_value(&self, v: u8) -> u8 {
        hebs_stretch_value(self.effective_max, v)
    }

    /// Whether channel input `v` lies in the clipped lane (strictly
    /// above the effective maximum — the quality budget spent).
    #[must_use]
    pub fn is_clipped(&self, v: u8) -> bool {
        self.effective_max > 0 && v > self.effective_max
    }

    /// Applies the remap to every channel of every pixel, in place,
    /// reporting clipping statistics (a pixel counts as clipped when any
    /// channel sat strictly above the effective maximum — the same
    /// budget the quality level bounds).
    ///
    /// Dispatches to the widest SIMD kernel the host supports (see
    /// [`crate::simd::kernel_tier`]); every tier is byte-identical to
    /// [`Self::apply_scalar`], stats included.
    pub fn apply(&self, frame: &mut Frame) -> ClipStats {
        crate::simd::hebs_apply(self, frame, crate::simd::kernel_tier())
    }

    /// [`Self::apply`] at an explicit [`KernelTier`](crate::simd::KernelTier)
    /// (clamped to host capability) — the hook the differential
    /// conformance tier sweeps.
    pub fn apply_with(&self, frame: &mut Frame, tier: crate::simd::KernelTier) -> ClipStats {
        crate::simd::hebs_apply(self, frame, tier)
    }

    /// The retained scalar reference kernel — the 0-ULP oracle every
    /// SIMD tier is tested against.
    pub fn apply_scalar(&self, frame: &mut Frame) -> ClipStats {
        let mut stats =
            ClipStats { total_pixels: frame.pixel_count() as u64, ..Default::default() };
        for px in frame.as_bytes_mut().chunks_exact_mut(3) {
            let mut clipped = false;
            for ch in px.iter_mut() {
                if self.is_clipped(*ch) {
                    clipped = true;
                    let over = f32::from(*ch) - f32::from(self.effective_max);
                    if over > stats.max_overshoot {
                        stats.max_overshoot = over;
                    }
                }
                *ch = self.remap[*ch as usize];
            }
            if clipped {
                stats.clipped_pixels += 1;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb8;
    use annolight_support::rng::SmallRng;

    fn random_hist(rng: &mut SmallRng) -> Histogram {
        let mut h = Histogram::new();
        let n = 50 + (rng.next_u64() % 2000) as usize;
        for _ in 0..n {
            h.add((rng.next_u64() % 256) as u8);
        }
        h
    }

    #[test]
    fn table_matches_scalar_oracle_exactly() {
        let mut rng = SmallRng::seed_from_u64(0x4EB5);
        for _ in 0..32 {
            let h = random_hist(&mut rng);
            for eff in [0u8, 1, 17, 40, 128, 200, 254, 255] {
                let lut = HebsLut::from_histogram(&h, eff);
                for v in 0..=255u8 {
                    assert_eq!(
                        lut.value(v),
                        hebs_remap_scalar(&h, eff, v),
                        "eff={eff} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn remap_is_monotone_and_never_below_stretch() {
        let mut rng = SmallRng::seed_from_u64(0x4EB6);
        for _ in 0..32 {
            let h = random_hist(&mut rng);
            for eff in [1u8, 40, 128, 255] {
                let lut = HebsLut::from_histogram(&h, eff);
                for v in 0..=255u8 {
                    assert!(lut.value(v) >= lut.stretch_value(v), "eff={eff} v={v}");
                    if v > 0 {
                        assert!(lut.value(v) >= lut.value(v - 1), "eff={eff} v={v}");
                    }
                }
                assert_eq!(lut.value(eff), 255, "effective max reaches full scale");
            }
        }
    }

    #[test]
    fn dark_mass_brightens_midtones_beyond_stretch() {
        // All mass at 10–20, effective max 200: equalization lifts the
        // midtones far above the gentle 255/200 stretch.
        let mut h = Histogram::new();
        for _ in 0..500 {
            h.add(10);
        }
        for _ in 0..500 {
            h.add(20);
        }
        let lut = HebsLut::from_histogram(&h, 200);
        assert!(
            lut.value(30) > lut.stretch_value(30) + 50,
            "equalized {} vs stretch {}",
            lut.value(30),
            lut.stretch_value(30)
        );
    }

    #[test]
    fn black_scene_is_identity() {
        let h = Histogram::new();
        let lut = HebsLut::from_histogram(&h, 0);
        for v in 0..=255u8 {
            assert_eq!(lut.value(v), v);
        }
        assert!(!lut.is_clipped(255));
    }

    #[test]
    fn empty_histogram_degenerates_to_stretch() {
        let h = Histogram::new();
        let lut = HebsLut::from_histogram(&h, 100);
        for v in 0..=255u8 {
            assert_eq!(lut.value(v), lut.stretch_value(v).max(if v >= 100 { 255 } else { 0 }));
        }
    }

    #[test]
    fn apply_counts_budget_pixels_once() {
        let mut h = Histogram::new();
        for v in [40u8, 40, 40, 250] {
            h.add(v);
        }
        let lut = HebsLut::from_histogram(&h, 40);
        let mut f = Frame::filled(2, 2, Rgb8::gray(40));
        f.set_pixel(0, 0, Rgb8::new(250, 250, 250));
        let stats = lut.apply(&mut f);
        assert_eq!(stats.clipped_pixels, 1);
        assert_eq!(stats.total_pixels, 4);
        assert_eq!(f.pixel(0, 0), Rgb8::gray(255));
        assert_eq!(f.pixel(1, 1), Rgb8::gray(255), "effective max stretches to full scale");
        assert!((stats.max_overshoot - 210.0).abs() < 1e-6);
    }

    #[test]
    fn gray_stays_gray() {
        let mut h = Histogram::new();
        for v in 0..=255u8 {
            h.add(v);
        }
        let lut = HebsLut::from_histogram(&h, 180);
        let mut f = Frame::filled(2, 2, Rgb8::gray(90));
        lut.apply(&mut f);
        let p = f.pixel(0, 0);
        assert!(p.r == p.g && p.g == p.b);
    }
}
