//! Pixel color types and luminance conversion.
//!
//! The paper computes pixel luminance from RGB through
//! `Y = r·R + g·G + b·B` with "known constants" `r`, `g`, `b` (§4.1).
//! We use the ITU-R BT.601 coefficients (`0.299`, `0.587`, `0.114`), the
//! standard choice for the MPEG-1-era material the paper evaluates.


/// BT.601 red luminance weight.
pub const LUMA_R: f32 = 0.299;
/// BT.601 green luminance weight.
pub const LUMA_G: f32 = 0.587;
/// BT.601 blue luminance weight.
pub const LUMA_B: f32 = 0.114;

/// An 8-bit RGB pixel.
///
/// # Example
///
/// ```
/// use annolight_imgproc::Rgb8;
/// let white = Rgb8::new(255, 255, 255);
/// assert_eq!(white.luma(), 255);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb8 {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

annolight_support::impl_json!(struct Rgb8 { r, g, b });

impl Rgb8 {
    /// Creates a pixel from its three channels.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Self { r, g, b }
    }

    /// Creates a gray pixel with all channels equal to `v`.
    pub const fn gray(v: u8) -> Self {
        Self { r: v, g: v, b: v }
    }

    /// BT.601 luminance of the pixel, rounded to the nearest 8-bit value.
    pub fn luma(self) -> u8 {
        luma_u8(self.r, self.g, self.b)
    }

    /// Luminance normalised to `[0, 1]`.
    pub fn luma_norm(self) -> f32 {
        f32::from(self.luma()) / 255.0
    }

    /// Converts to BT.601 YUV (full-range, i.e. Y ∈ [0, 255], U/V offset
    /// by 128).
    pub fn to_yuv(self) -> Yuv8 {
        let r = f32::from(self.r);
        let g = f32::from(self.g);
        let b = f32::from(self.b);
        let y = LUMA_R * r + LUMA_G * g + LUMA_B * b;
        let u = 0.492 * (b - y) + 128.0;
        let v = 0.877 * (r - y) + 128.0;
        Yuv8 {
            y: clamp_u8(y),
            u: clamp_u8(u),
            v: clamp_u8(v),
        }
    }

    /// Per-channel saturating scale by `k ≥ 0`; this is the paper's
    /// contrast-enhancement operator applied to one pixel.
    pub fn scale(self, k: f32) -> Self {
        Self {
            r: scale_channel(self.r, k),
            g: scale_channel(self.g, k),
            b: scale_channel(self.b, k),
        }
    }

    /// Per-channel saturating add of `delta`; the paper's brightness
    /// compensation operator applied to one pixel.
    pub fn offset(self, delta: u8) -> Self {
        Self {
            r: self.r.saturating_add(delta),
            g: self.g.saturating_add(delta),
            b: self.b.saturating_add(delta),
        }
    }

    /// Returns the channel array `[r, g, b]`.
    pub const fn to_array(self) -> [u8; 3] {
        [self.r, self.g, self.b]
    }
}

impl From<[u8; 3]> for Rgb8 {
    fn from(a: [u8; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl From<Rgb8> for [u8; 3] {
    fn from(p: Rgb8) -> Self {
        p.to_array()
    }
}

/// A full-range BT.601 YUV pixel (Y luminance plus offset-binary chroma).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Yuv8 {
    /// Luminance.
    pub y: u8,
    /// Blue-difference chroma, offset by 128.
    pub u: u8,
    /// Red-difference chroma, offset by 128.
    pub v: u8,
}

annolight_support::impl_json!(struct Yuv8 { y, u, v });

impl Yuv8 {
    /// Creates a YUV pixel from its three components.
    pub const fn new(y: u8, u: u8, v: u8) -> Self {
        Self { y, u, v }
    }

    /// Converts back to RGB (inverse of [`Rgb8::to_yuv`], within
    /// quantisation error).
    pub fn to_rgb(self) -> Rgb8 {
        let y = f32::from(self.y);
        let u = f32::from(self.u) - 128.0;
        let v = f32::from(self.v) - 128.0;
        let r = y + v / 0.877;
        let b = y + u / 0.492;
        let g = (y - LUMA_R * r - LUMA_B * b) / LUMA_G;
        Rgb8 {
            r: clamp_u8(r),
            g: clamp_u8(g),
            b: clamp_u8(b),
        }
    }
}

// Fixed-point luminance weights, scaled by 2^16 and rounded. The SIMD
// luma kernels (`crate::simd`) use the same weights, so they are
// crate-visible.
pub(crate) const WR: u32 = (LUMA_R * 65536.0) as u32; // 19595
pub(crate) const WG: u32 = (LUMA_G * 65536.0) as u32; // 38469
pub(crate) const WB: u32 = 65536 - WR - WG; // ensures white maps to exactly 255

/// BT.601 luminance of an `(r, g, b)` triple, rounded to `u8`.
///
/// ```
/// use annolight_imgproc::luma_u8;
/// assert_eq!(luma_u8(0, 0, 0), 0);
/// assert_eq!(luma_u8(255, 255, 255), 255);
/// assert!(luma_u8(0, 255, 0) > luma_u8(255, 0, 0));
/// ```
pub fn luma_u8(r: u8, g: u8, b: u8) -> u8 {
    let y = WR * u32::from(r) + WG * u32::from(g) + WB * u32::from(b);
    ((y + 32768) >> 16) as u8
}

/// `w·c` for every 8-bit channel value, evaluated at compile time.
const fn weight_table(w: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut c = 0usize;
    while c < 256 {
        t[c] = w * c as u32;
        c += 1;
    }
    t
}

/// Per-channel products `WR·c`, `WG·c`, `WB·c` — the histogram kernel's
/// look-up tables, built at compile time.
static LUMA_TABLE_R: [u32; 256] = weight_table(WR);
static LUMA_TABLE_G: [u32; 256] = weight_table(WG);
static LUMA_TABLE_B: [u32; 256] = weight_table(WB);

/// Table-driven form of [`luma_u8`]: the three per-channel fixed-point
/// products come from compile-time 256-entry tables instead of
/// multiplies. Exactly equal to [`luma_u8`] for every input (same
/// integer arithmetic — the histogram property tests assert this
/// exhaustively), and measurably faster in the per-frame histogram
/// loop, which is the profiling stage's inner kernel.
pub fn luma_u8_lut(r: u8, g: u8, b: u8) -> u8 {
    let y = LUMA_TABLE_R[r as usize] + LUMA_TABLE_G[g as usize] + LUMA_TABLE_B[b as usize];
    ((y + 32768) >> 16) as u8
}

fn clamp_u8(v: f32) -> u8 {
    v.round().clamp(0.0, 255.0) as u8
}

fn scale_channel(c: u8, k: f32) -> u8 {
    clamp_u8(f32::from(c) * k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luma_extremes() {
        assert_eq!(luma_u8(0, 0, 0), 0);
        assert_eq!(luma_u8(255, 255, 255), 255);
        assert_eq!(luma_u8_lut(0, 0, 0), 0);
        assert_eq!(luma_u8_lut(255, 255, 255), 255);
    }

    #[test]
    fn luma_lut_equals_scalar_exhaustively() {
        // 256^3 inputs: the table kernel must agree with the multiply
        // kernel on every one — they are the same integer arithmetic.
        for r in 0..=255u8 {
            for g in 0..=255u8 {
                for b in 0..=255u8 {
                    debug_assert_eq!(luma_u8_lut(r, g, b), luma_u8(r, g, b));
                    // debug_assert keeps the release-mode loop cheap; in
                    // test builds (debug assertions on) this is exhaustive.
                }
            }
            // Always-on spot checks so the test bites even with
            // debug-assertions off.
            assert_eq!(luma_u8_lut(r, r ^ 0x5a, r.wrapping_mul(3)), luma_u8(r, r ^ 0x5a, r.wrapping_mul(3)));
        }
    }

    #[test]
    fn luma_gray_is_identity() {
        for v in 0..=255u8 {
            assert_eq!(luma_u8(v, v, v), v, "gray {v}");
        }
    }

    #[test]
    fn luma_channel_ordering() {
        // Green dominates, then red, then blue (BT.601 weights).
        let g = luma_u8(0, 255, 0);
        let r = luma_u8(255, 0, 0);
        let b = luma_u8(0, 0, 255);
        assert!(g > r && r > b);
    }

    #[test]
    fn luma_monotone_in_each_channel() {
        for v in 0..255u8 {
            assert!(luma_u8(v + 1, 10, 10) >= luma_u8(v, 10, 10));
            assert!(luma_u8(10, v + 1, 10) >= luma_u8(10, v, 10));
            assert!(luma_u8(10, 10, v + 1) >= luma_u8(10, 10, v));
        }
    }

    #[test]
    fn yuv_roundtrip_close() {
        for &(r, g, b) in &[(0u8, 0u8, 0u8), (255, 255, 255), (200, 30, 90), (12, 250, 3)] {
            let p = Rgb8::new(r, g, b);
            let q = p.to_yuv().to_rgb();
            assert!((i16::from(p.r) - i16::from(q.r)).abs() <= 2, "{p:?} vs {q:?}");
            assert!((i16::from(p.g) - i16::from(q.g)).abs() <= 2, "{p:?} vs {q:?}");
            assert!((i16::from(p.b) - i16::from(q.b)).abs() <= 2, "{p:?} vs {q:?}");
        }
    }

    #[test]
    fn scale_saturates() {
        let p = Rgb8::new(200, 100, 10);
        let s = p.scale(2.0);
        assert_eq!(s, Rgb8::new(255, 200, 20));
    }

    #[test]
    fn scale_by_one_is_identity() {
        let p = Rgb8::new(17, 201, 99);
        assert_eq!(p.scale(1.0), p);
    }

    #[test]
    fn offset_saturates() {
        let p = Rgb8::new(250, 0, 128);
        assert_eq!(p.offset(10), Rgb8::new(255, 10, 138));
    }

    #[test]
    fn gray_constructor() {
        assert_eq!(Rgb8::gray(77), Rgb8::new(77, 77, 77));
    }

    #[test]
    fn array_conversions() {
        let p = Rgb8::from([1, 2, 3]);
        assert_eq!(<[u8; 3]>::from(p), [1, 2, 3]);
    }
}
