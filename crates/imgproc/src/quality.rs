//! Perceptual quality metrics.
//!
//! The paper validates with histograms; SSIM is the modern structural
//! complement — it penalises exactly the artefacts histogram comparison
//! can miss (texture crushed by clipping while the global distribution
//! stays similar). Used alongside the histogram metrics in the validation
//! report.

use crate::frame::LumaFrame;

const C1: f64 = 6.5025; // (0.01 * 255)^2
const C2: f64 = 58.5225; // (0.03 * 255)^2
const WINDOW: u32 = 8;

/// Mean SSIM between two luminance planes over non-overlapping 8×8
/// windows, in `[-1, 1]` (1 = identical).
///
/// ```
/// use annolight_imgproc::{ssim_luma, Frame};
/// let a = Frame::from_fn(16, 16, |x, y| [(x * 16) as u8, (y * 16) as u8, 0]).to_luma();
/// assert_eq!(ssim_luma(&a, &a), 1.0);
/// ```
///
/// # Panics
///
/// Panics if the planes differ in size or are smaller than one window.
pub fn ssim_luma(a: &LumaFrame, b: &LumaFrame) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "SSIM requires equal dimensions"
    );
    assert!(
        a.width() >= WINDOW && a.height() >= WINDOW,
        "SSIM needs at least one {WINDOW}x{WINDOW} window"
    );
    let mut acc = 0.0;
    let mut windows = 0u32;
    for wy in 0..(a.height() / WINDOW) {
        for wx in 0..(a.width() / WINDOW) {
            acc += window_ssim(a, b, wx * WINDOW, wy * WINDOW);
            windows += 1;
        }
    }
    acc / f64::from(windows)
}

fn window_ssim(a: &LumaFrame, b: &LumaFrame, ox: u32, oy: u32) -> f64 {
    let n = f64::from(WINDOW * WINDOW);
    let (mut sa, mut sb) = (0.0f64, 0.0f64);
    for y in 0..WINDOW {
        for x in 0..WINDOW {
            sa += f64::from(a.sample(ox + x, oy + y));
            sb += f64::from(b.sample(ox + x, oy + y));
        }
    }
    let (ma, mb) = (sa / n, sb / n);
    let (mut va, mut vb, mut cov) = (0.0f64, 0.0f64, 0.0f64);
    for y in 0..WINDOW {
        for x in 0..WINDOW {
            let da = f64::from(a.sample(ox + x, oy + y)) - ma;
            let db = f64::from(b.sample(ox + x, oy + y)) - mb;
            va += da * da;
            vb += db * db;
            cov += da * db;
        }
    }
    let (va, vb, cov) = (va / (n - 1.0), vb / (n - 1.0), cov / (n - 1.0));
    ((2.0 * ma * mb + C1) * (2.0 * cov + C2)) / ((ma * ma + mb * mb + C1) * (va + vb + C2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    fn textured(seed: u32) -> LumaFrame {
        Frame::from_fn(32, 32, |x, y| {
            let v = ((x * 13 + y * 7 + seed) % 200 + 20) as u8;
            [v, v, v]
        })
        .to_luma()
    }

    #[test]
    fn identical_planes_score_one() {
        let a = textured(0);
        assert!((ssim_luma(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unrelated_planes_score_low() {
        let a = textured(0);
        let b = textured(97);
        assert!(ssim_luma(&a, &b) < 0.5);
    }

    #[test]
    fn small_noise_scores_high() {
        let a = textured(0);
        let mut noisy = a.clone();
        for (i, s) in noisy.samples_mut().iter_mut().enumerate() {
            if i % 3 == 0 {
                *s = s.saturating_add(2);
            }
        }
        assert!(ssim_luma(&a, &noisy) > 0.95);
    }

    #[test]
    fn crushing_texture_hurts_more_than_brightness_shift() {
        // A +10 global shift keeps structure; flattening an area kills it.
        let a = textured(0);
        let mut shifted = a.clone();
        for s in shifted.samples_mut() {
            *s = s.saturating_add(10);
        }
        let mut crushed = a.clone();
        for s in crushed.samples_mut().iter_mut().take(512) {
            *s = 128;
        }
        assert!(ssim_luma(&a, &shifted) > ssim_luma(&a, &crushed));
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = textured(0);
        let b = textured(5);
        assert!((ssim_luma(&a, &b) - ssim_luma(&b, &a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn dimension_mismatch_panics() {
        let a = Frame::new(16, 16).to_luma();
        let b = Frame::new(32, 16).to_luma();
        let _ = ssim_luma(&a, &b);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn too_small_panics() {
        let a = Frame::new(4, 4).to_luma();
        let _ = ssim_luma(&a, &a);
    }
}
