//! Error type for image operations.

use std::error::Error;
use std::fmt;

/// Errors produced by frame construction and plane manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// The provided buffer length does not match `width × height` (times
    /// the per-pixel stride).
    BufferSizeMismatch {
        /// Expected buffer length in bytes.
        expected: usize,
        /// Actual buffer length in bytes.
        actual: usize,
    },
    /// A dimension was zero or otherwise unusable.
    InvalidDimensions {
        /// Requested width.
        width: u32,
        /// Requested height.
        height: u32,
    },
    /// 4:2:0 chroma subsampling requires even dimensions.
    OddDimensions {
        /// Requested width.
        width: u32,
        /// Requested height.
        height: u32,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BufferSizeMismatch { expected, actual } => {
                write!(f, "buffer length {actual} does not match expected {expected}")
            }
            ImageError::InvalidDimensions { width, height } => {
                write!(f, "invalid frame dimensions {width}x{height}")
            }
            ImageError::OddDimensions { width, height } => {
                write!(f, "4:2:0 frames require even dimensions, got {width}x{height}")
            }
        }
    }
}

impl Error for ImageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs = [
            ImageError::BufferSizeMismatch { expected: 12, actual: 10 },
            ImageError::InvalidDimensions { width: 0, height: 4 },
            ImageError::OddDimensions { width: 3, height: 4 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
