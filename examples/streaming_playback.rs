//! A full streaming session: server → 802.11b → iPAQ 5555 client, with
//! energy accounting (the Fig. 10 pipeline, one clip).
//!
//! ```text
//! cargo run --release --example streaming_playback [clip] [quality%]
//! ```

use annolight::core::QualityLevel;
use annolight::stream::{run_session, SessionConfig};
use annolight::video::ClipLibrary;

fn main() {
    let mut args = std::env::args().skip(1);
    let clip_name = args.next().unwrap_or_else(|| "returnoftheking".to_owned());
    let quality = QualityLevel::from_percent(
        args.next().and_then(|s| s.parse().ok()).unwrap_or(10.0),
    );

    let clip = ClipLibrary::paper_clip(&clip_name)
        .unwrap_or_else(|| panic!("unknown clip {clip_name:?}; see ClipLibrary::PAPER_CLIP_NAMES"))
        .preview(20.0);
    println!("streaming {} ({:.0} s preview) at quality {quality}", clip.name(), clip.duration_s());

    let report = run_session(SessionConfig::new(clip, quality)).expect("session succeeds");

    println!("\n--- delivery -------------------------------------------");
    println!("stream size      : {} bytes in {} packets", report.stream_bytes, report.packets);
    println!("annotation track : {} bytes", report.annotation_bytes);
    println!("transfer time    : {:.2} s (real-time: {})", report.transfer_time_s, report.real_time);

    let p = &report.playback;
    println!("\n--- playback on the iPAQ 5555 ---------------------------");
    println!("frames decoded   : {} ({:.1} s)", p.frames, p.duration_s);
    println!("mean backlight   : {:.0}/255", p.mean_backlight);
    println!("backlight writes : {} (suppressed: {})", p.switches.switches, p.switches.suppressed);
    println!("device energy    : {:.1} J (baseline {:.1} J)", p.energy_j, p.baseline_energy_j);
    println!("average power    : {:.2} W", p.avg_power_w);
    println!("TOTAL SAVINGS    : {:.1}%", p.total_savings() * 100.0);

    println!("\n--- energy breakdown ------------------------------------");
    for (component, joules) in &report.energy_breakdown {
        println!("{component:<12}: {joules:.1} J");
    }
}
