//! Annotation extensions: per-scene DVFS hints and the end-credits guard.
//!
//! §3 notes that "optimizations like frequency/voltage scaling can be
//! applied before decoding is finished, because the annotated information
//! is available early from the data stream"; §4.3 flags end credits as
//! the clipping heuristic's failure mode. This example exercises both
//! extensions on a trailer that ends in a credits crawl.
//!
//! ```text
//! cargo run --release --example dvfs_hints
//! ```

use annolight::core::extensions::{dvfs_hints, CreditsGuard};
use annolight::core::{Annotator, LuminanceProfile, QualityLevel, SceneDetector};
use annolight::display::DeviceProfile;
use annolight::video::ClipLibrary;

fn main() {
    let clip = ClipLibrary::paper_clip("shrek2").expect("library clip");
    let profile = LuminanceProfile::of_clip(&clip).expect("non-empty clip");
    let spans = SceneDetector::default().detect(&profile);
    let device = DeviceProfile::ipaq_5555();

    // --- DVFS hints per scene --------------------------------------
    let hints = dvfs_hints(&profile, &spans);
    println!("DVFS hints for {} ({} scenes):", clip.name(), spans.len());
    println!("{:<14} {:>12} {:>10} {:>12}", "scene (s)", "complexity", "freq", "rel. power");
    for h in hints.iter().take(12) {
        println!(
            "{:<14} {:>12.2} {:>7} MHz {:>12.2}",
            format!(
                "{:.1}-{:.1}",
                f64::from(h.span.start) / clip.fps(),
                f64::from(h.span.end) / clip.fps()
            ),
            h.complexity,
            h.frequency.mhz(),
            h.frequency.relative_power()
        );
    }
    let mean_rel: f64 =
        hints.iter().map(|h| h.frequency.relative_power()).sum::<f64>() / hints.len() as f64;
    println!("… mean relative CPU power with hints: {:.2} (1.00 = always 400 MHz)\n", mean_rel);

    // --- Credits guard ----------------------------------------------
    let quality = QualityLevel::Q20;
    let plain = Annotator::new(device.clone(), quality)
        .annotate_profile(&profile)
        .expect("non-empty profile");
    let guarded = Annotator::new(device.clone(), quality)
        .with_credits_guard(CreditsGuard::default())
        .annotate_profile(&profile)
        .expect("non-empty profile");

    println!("credits guard at quality {quality}:");
    println!(
        "  unguarded: {:.1}% backlight saved, worst-scene clipping {:.1}%",
        plain.plan().mean_backlight_savings() * 100.0,
        plain
            .plan()
            .scenes()
            .iter()
            .map(|s| s.clipped_fraction)
            .fold(0.0f64, f64::max)
            * 100.0
    );
    println!(
        "  guarded  : {:.1}% backlight saved, worst-scene clipping {:.1}%",
        guarded.plan().mean_backlight_savings() * 100.0,
        guarded
            .plan()
            .scenes()
            .iter()
            .map(|s| s.clipped_fraction)
            .fold(0.0f64, f64::max)
            * 100.0
    );
    println!("  (the guard trades a little power for readable end credits)");
}
