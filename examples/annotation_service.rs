//! A multi-tenant annotation service under concurrent load.
//!
//! The paper's Fig. 1 server "stores profiled clips" so that annotation
//! cost is paid once and amortised across every client. This example
//! runs that tier at small scale: one shared [`AnnotationService`] with a
//! threaded work-stealing pool, eight client threads spread across the
//! three paper device classes, each requesting clips at its own quality
//! point. The service content-addresses the tracks, so the first request
//! per `(clip, device, quality, mode)` key profiles and plans; every
//! later one is a cache hit. At the end we print the counters report —
//! the same JSON the ops side would scrape.
//!
//! ```text
//! cargo run --release --example annotation_service
//! ```

use annolight::core::track::AnnotationMode;
use annolight::core::QualityLevel;
use annolight::display::DeviceProfile;
use annolight::serve::{AnnotationRequest, AnnotationService, Service, ServiceConfig};
use annolight::video::ClipLibrary;
use std::sync::Arc;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 12;

fn main() {
    // One service for the whole server tier: 2 workers, 8 cache shards.
    let service = AnnotationService::new(ServiceConfig {
        workers: 2,
        cache_shards: 8,
        cache_bytes: 8 << 20,
        tenant_queue_depth: 32,
        ..ServiceConfig::default()
    });

    // The catalogue: four of the paper's clips, profiled on demand.
    let clips = ["themovie", "spiderman2", "ice_age", "catwoman"];
    for name in clips {
        let clip = ClipLibrary::paper_clip(name).expect("library clip").preview(6.0);
        let digest = service.register_clip(clip);
        println!("registered {name:<12} digest {digest:016x}");
    }

    let devices =
        [DeviceProfile::ipaq_5555(), DeviceProfile::ipaq_3650(), DeviceProfile::zaurus_sl5600()];
    let qualities = [QualityLevel::Q5, QualityLevel::Q10, QualityLevel::Q15, QualityLevel::Q20];

    // Eight clients hammer the service concurrently. Each is its own
    // tenant (its own bounded admission queue).
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let service = Arc::clone(&service);
            let device = devices[c % devices.len()].clone();
            std::thread::spawn(move || {
                let mut hits = 0u32;
                for r in 0..REQUESTS_PER_CLIENT {
                    let req = AnnotationRequest {
                        tenant: format!("client-{c}"),
                        clip: clips[(c + r) % clips.len()].to_owned(),
                        device: device.clone(),
                        quality: qualities[r % qualities.len()],
                        mode: AnnotationMode::PerScene,
                        policy: annolight_core::PolicyKind::PeakClip,
                    };
                    let resp = service.call(req).expect("catalogue clips annotate");
                    hits += u32::from(resp.cache_hit);
                }
                (c, device, hits)
            })
        })
        .collect();

    println!();
    for h in handles {
        let (c, device, hits) = h.join().expect("client thread");
        println!(
            "client-{c} ({:<22}) {REQUESTS_PER_CLIENT} requests, {hits} cache hits",
            device.name()
        );
    }

    // The ops view: everything the service counted, as JSON.
    let report = service.report();
    println!(
        "\nservice totals: {} completed  {} hits / {} misses  ({} clip profiles, {:.0} us mean cold latency)",
        report.completed,
        report.hits,
        report.misses,
        report.clip_profiles,
        report.profile_latency_mean_us,
    );
    println!("\ncounters report:\n{}", report.to_json_string());
}
