//! Live annotation at the proxy: the videoconferencing scenario of Fig. 1.
//!
//! A live camera feed has no finished clip to profile, so the proxy runs
//! the [`OnlineAnnotator`]: frames are annotated on the fly with a bounded
//! lookahead (= added latency), and each scene's entry is pushed to the
//! client the moment the scene closes.
//!
//! ```text
//! cargo run --release --example videoconference
//! ```

use annolight::core::online::OnlineAnnotator;
use annolight::core::QualityLevel;
use annolight::display::{BacklightController, ControllerConfig, DeviceProfile};
use annolight::power::SystemPowerModel;
use annolight::video::{Clip, ClipSpec, ContentKind, SceneSpec};

fn main() {
    // A "call": talking head (mid tones) with occasional screen-share
    // (bright) and a dim room at the end.
    let call = Clip::new(ClipSpec {
        name: "videocall".into(),
        width: 128,
        height: 96,
        fps: 12.0,
        seed: 77,
        scenes: vec![
            SceneSpec::new(
                ContentKind::Mid { base: 110, spread: 25, highlight_fraction: 0.004 },
                8.0,
            ),
            SceneSpec::new(ContentKind::Bright { base: 215, spread: 20 }, 5.0), // screen share
            SceneSpec::new(
                ContentKind::Mid { base: 110, spread: 25, highlight_fraction: 0.004 },
                6.0,
            ),
            SceneSpec::new(
                ContentKind::Dark { base: 50, spread: 12, highlight_fraction: 0.002, highlight: 180 },
                6.0,
            ),
        ],
    })
    .expect("valid call script");

    let device = DeviceProfile::ipaq_5555();
    let system = SystemPowerModel::ipaq_5555();
    let mut live = OnlineAnnotator::new(device.clone(), QualityLevel::Q10, call.fps(), 24);
    println!(
        "live annotation, lookahead {} frames → max added latency {:.1} s\n",
        24,
        live.max_latency_s()
    );

    // The proxy annotates as frames arrive; the client applies each entry
    // as it is delivered.
    let mut controller = BacklightController::new(ControllerConfig::default());
    let mut energy = 0.0f64;
    let mut baseline = 0.0f64;
    let dt = 1.0 / call.fps();
    let mut entries = Vec::new();
    for i in 0..call.frame_count() {
        let frame = call.frame(i);
        if let Some(entry) = live.push_frame(&frame) {
            println!(
                "t = {:5.1} s  scene@{:>3}  backlight {:>3}/255  k = {:.3}",
                f64::from(i) * dt,
                entry.start_frame,
                entry.backlight.0,
                entry.compensation
            );
            controller.request(f64::from(i) * dt, entry.backlight);
            entries.push(entry);
        }
        let backlight_w = device.backlight_power().power_w(controller.current());
        energy += system.power_w(0.75, true, backlight_w) * dt;
        let full_w = device.backlight_power().power_w(annolight::display::BacklightLevel::MAX);
        baseline += system.power_w(0.75, true, full_w) * dt;
    }
    if let Some(entry) = live.finish() {
        entries.push(entry);
    }

    println!("\nscenes annotated : {}", entries.len());
    println!("call duration    : {:.1} s", call.duration_s());
    println!("device energy    : {energy:.1} J (full backlight: {baseline:.1} J)");
    println!("TOTAL SAVINGS    : {:.1}%", (1.0 - energy / baseline) * 100.0);
    println!("backlight writes : {}", controller.stats().switches);
}
