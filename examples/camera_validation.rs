//! The paper's camera-based quality validation (Fig. 2/Fig. 4): for each
//! quality level, photograph the original frame at full backlight and the
//! compensated frame at the annotated backlight, then compare histograms.
//!
//! ```text
//! cargo run --release --example camera_validation
//! ```

use annolight::camera::{validate_compensation, DigitalCamera};
use annolight::core::plan::plan_levels;
use annolight::core::QualityLevel;
use annolight::display::{BacklightLevel, DeviceProfile};
use annolight::imgproc::{contrast_enhance, Frame};
use annolight::video::ClipLibrary;

fn main() {
    let device = DeviceProfile::ipaq_5555();
    let camera = DigitalCamera::consumer_compact(2026);

    // A dark frame out of a trailer, as in the paper's news-clip example.
    let clip = ClipLibrary::paper_clip("i_robot").expect("library clip");
    let original: Frame = clip.frame(3);
    let hist = original.luma_histogram();
    println!(
        "frame: mean luminance {:.1}, max {}, dynamic range {}",
        hist.mean(),
        hist.max_nonzero().unwrap_or(0),
        hist.dynamic_range()
    );

    println!(
        "\n{:<8} {:>9} {:>10} {:>12} {:>12} {:>8} {:>10}",
        "quality", "backlight", "saved", "ref mean", "comp mean", "EMD", "verdict"
    );
    for q in QualityLevel::PAPER_LEVELS {
        let effective = hist.clip_level(q.clip_fraction());
        let (k, level) = plan_levels(&device, effective);
        let mut compensated = original.clone();
        contrast_enhance(&mut compensated, k);
        let report = validate_compensation(
            &original,
            &compensated,
            &device,
            BacklightLevel::MAX,
            level,
            &camera,
        );
        println!(
            "{:<8} {:>9} {:>9.1}% {:>12.1} {:>12.1} {:>8.2} {:>10}",
            q.to_string(),
            format!("{}/255", level.0),
            device.backlight_power().savings_vs_full(level) * 100.0,
            report.reference_mean,
            report.compensated_mean,
            report.histogram_emd,
            if report.acceptable() { "ok" } else { "degraded" }
        );
    }
}
