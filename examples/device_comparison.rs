//! Device tailoring: the same clip annotated for all three paper PDAs.
//!
//! "Our scheme allows us to tailor the technique to each PDA for better
//! power savings, by including the display properties in the loop."
//!
//! ```text
//! cargo run --release --example device_comparison
//! ```

use annolight::core::{Annotator, LuminanceProfile, QualityLevel};
use annolight::display::{BacklightLevel, DeviceProfile};
use annolight::video::ClipLibrary;

fn main() {
    let clip = ClipLibrary::paper_clip("catwoman").expect("library clip").preview(30.0);
    let profile = LuminanceProfile::of_clip(&clip).expect("non-empty clip");

    println!("clip: {} ({:.0} s)\n", clip.name(), clip.duration_s());

    // Transfer-curve comparison at a few backlight levels.
    println!("backlight→luminance transfer (relative):");
    print!("{:<16}", "level");
    for d in DeviceProfile::paper_devices() {
        print!("{:>16}", d.name());
    }
    println!();
    for level in [32u8, 64, 128, 192, 255] {
        print!("{:<16}", format!("{level}/255"));
        for d in DeviceProfile::paper_devices() {
            print!("{:>16.3}", d.transfer().luminance(BacklightLevel(level)));
        }
        println!();
    }

    // Savings comparison at 10% quality: same scenes, device-specific
    // backlight levels.
    println!("\nannotated for each device at 10% quality:");
    println!(
        "{:<16} {:>10} {:>14} {:>16}",
        "device", "scenes", "mean level", "backlight saved"
    );
    for device in DeviceProfile::paper_devices() {
        let annotated = Annotator::new(device.clone(), QualityLevel::Q10)
            .annotate_profile(&profile)
            .expect("non-empty profile");
        let track = annotated.track();
        let mean_level: f64 = track
            .entries()
            .iter()
            .map(|e| f64::from(e.backlight.0))
            .sum::<f64>()
            / track.entries().len() as f64;
        println!(
            "{:<16} {:>10} {:>14.0} {:>15.1}%",
            device.name(),
            track.entries().len(),
            mean_level,
            annotated.predicted_backlight_savings(&device) * 100.0
        );
    }
}
