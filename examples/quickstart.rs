//! Quickstart: annotate a clip and inspect the predicted savings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use annolight::core::{Annotator, QualityLevel};
use annolight::display::DeviceProfile;
use annolight::video::ClipLibrary;

fn main() {
    // 1. A clip from the paper's evaluation set and the paper's device.
    let clip = ClipLibrary::paper_clip("themovie").expect("library clip");
    let device = DeviceProfile::ipaq_5555();

    // 2. Profile + annotate at the 10% quality level (done once, at the
    //    server or proxy — the handheld never analyses frames).
    let annotator = Annotator::new(device.clone(), QualityLevel::Q10);
    let annotated = annotator.annotate_clip(&clip).expect("annotation succeeds");

    // 3. What rides in the stream, and what it buys.
    let track = annotated.track();
    println!("clip             : {} ({:.0} s)", clip.name(), clip.duration_s());
    println!("scenes annotated : {}", track.entries().len());
    println!("track overhead   : {} bytes (RLE)", track.overhead_bytes());
    println!(
        "backlight saving : {:.1}% (predicted, {})",
        annotated.predicted_backlight_savings(&device) * 100.0,
        device.name()
    );

    // 4. The first few scene entries.
    println!("\nfirst entries:");
    for e in track.entries().iter().take(5) {
        println!(
            "  frame {:>4}: backlight {:>3}/255, k = {:.3}, effective max = {}",
            e.start_frame, e.backlight.0, e.compensation, e.effective_max_luma
        );
    }
}
