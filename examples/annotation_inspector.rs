//! Inspect the annotation side-channel of an encoded stream.
//!
//! Demonstrates the §3 property that makes annotations powerful: they are
//! readable from the bitstream *before* any picture is decoded. The
//! example serves a clip, then — acting as a client — dumps the embedded
//! track (and its JSON sidecar form) without touching a single macroblock.
//!
//! ```text
//! cargo run --release --example annotation_inspector
//! ```

use annolight::codec::{Decoder, EncoderConfig};
use annolight::core::track::{AnnotationMode, AnnotationTrack};
use annolight::core::QualityLevel;
use annolight::display::DeviceProfile;
use annolight::stream::{MediaServer, ServeRequest};
use annolight::video::ClipLibrary;

fn main() {
    // Server side: encode + annotate.
    let clip = ClipLibrary::paper_clip("theincredibles-tlr2").expect("library clip").preview(15.0);
    let mut server = MediaServer::new(EncoderConfig::default());
    server.add_clip(clip);
    let served = server
        .serve(&ServeRequest {
            clip_name: "theincredibles-tlr2".into(),
            device: DeviceProfile::ipaq_5555(),
            quality: QualityLevel::Q15,
            mode: AnnotationMode::PerScene,
            dvfs: false,
            policy: annolight::core::PolicyKind::PeakClip,
        })
        .expect("serving library clip succeeds");

    // Client side: the decoder surfaces user data without decoding frames.
    let dec = Decoder::new(&served.stream).expect("valid stream");
    println!(
        "stream: {} bytes, {} pictures, {} user-data packet(s)",
        served.stream.len(),
        dec.frame_count(),
        dec.user_data().len()
    );

    let raw = &dec.user_data()[0];
    let track = AnnotationTrack::from_rle_bytes(raw).expect("valid track");
    println!(
        "\ntrack: device {}, quality {}, {} entries, {} bytes on the wire",
        track.device_name(),
        track.quality(),
        track.entries().len(),
        raw.len()
    );

    println!("\nentries:");
    for e in track.entries() {
        println!(
            "  t = {:>6.2} s  backlight {:>3}/255  k = {:.3}  effective max = {:>3}",
            f64::from(e.start_frame) / track.fps(),
            e.backlight.0,
            e.compensation,
            e.effective_max_luma
        );
    }

    println!("\nJSON sidecar (first 400 chars):");
    let json = track.to_json().expect("serialisable");
    println!("{}", &json[..json.len().min(400)]);
}
