#!/usr/bin/env bash
# Tier-1 CI gate: hermetic (offline, empty-registry) build + full test
# suite + bench compilation. Mirrors ROADMAP.md's verify step; run from
# anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build (offline) =="
cargo build --release --offline --workspace

echo "== tier-1: tests (offline) =="
cargo test -q --offline --workspace

echo "== benches compile (offline) =="
cargo bench --offline --workspace --no-run

echo "== serve soak (offline, fixed seed, 64 tenants) =="
cargo test -q -p annolight-serve --release --offline -- soak

echo "== stream crate in isolation (offline) =="
cargo test -q -p annolight-stream --offline

echo "== fault-injection determinism guard (same seed twice, diff logs) =="
FAULT_LOG_A="$(mktemp)"
FAULT_LOG_B="$(mktemp)"
IDENT_LOG_A="$(mktemp)"
IDENT_LOG_B="$(mktemp)"
CODEC_LOG_A="$(mktemp)"
CODEC_LOG_B="$(mktemp)"
SLO_LOG_A="$(mktemp)"
SLO_LOG_B="$(mktemp)"
REACTOR_LOG_A="$(mktemp)"
REACTOR_LOG_B="$(mktemp)"
GOVERNOR_LOG_A="$(mktemp)"
GOVERNOR_LOG_B="$(mktemp)"
POLICY_LOG_A="$(mktemp)"
POLICY_LOG_B="$(mktemp)"
PIPELINE_LOG_A="$(mktemp)"
PIPELINE_LOG_B="$(mktemp)"
trap 'rm -f "$FAULT_LOG_A" "$FAULT_LOG_B" "$IDENT_LOG_A" "$IDENT_LOG_B" "$CODEC_LOG_A" "$CODEC_LOG_B" "$SLO_LOG_A" "$SLO_LOG_B" "$REACTOR_LOG_A" "$REACTOR_LOG_B" "$GOVERNOR_LOG_A" "$GOVERNOR_LOG_B" "$POLICY_LOG_A" "$POLICY_LOG_B" "$PIPELINE_LOG_A" "$PIPELINE_LOG_B"' EXIT
ANNOLIGHT_CHECK_SEED=0xA110 ANNOLIGHT_FAULT_LOG="$FAULT_LOG_A" \
  cargo test -q --release --offline --test fault_injection
ANNOLIGHT_CHECK_SEED=0xA110 ANNOLIGHT_FAULT_LOG="$FAULT_LOG_B" \
  cargo test -q --release --offline --test fault_injection
test -s "$FAULT_LOG_A" || { echo "fault event log was not written"; exit 1; }
cmp "$FAULT_LOG_A" "$FAULT_LOG_B" \
  || { echo "fault event logs diverged between identical runs"; exit 1; }

echo "== parallel-identity determinism guard (same seed twice, diff digest logs) =="
# Single test thread so the digest log's line order is stable; the
# digests themselves are scheduling-independent by construction.
ANNOLIGHT_CHECK_SEED=0xBA61 ANNOLIGHT_IDENTITY_LOG="$IDENT_LOG_A" \
  cargo test -q --release --offline --test parallel_identity -- --test-threads=1
ANNOLIGHT_CHECK_SEED=0xBA61 ANNOLIGHT_IDENTITY_LOG="$IDENT_LOG_B" \
  cargo test -q --release --offline --test parallel_identity -- --test-threads=1
test -s "$IDENT_LOG_A" || { echo "parallel-identity digest log was not written"; exit 1; }
cmp "$IDENT_LOG_A" "$IDENT_LOG_B" \
  || { echo "parallel-identity digest logs diverged between identical runs"; exit 1; }

echo "== codec fast-path identity guard (same seed twice, diff digest logs) =="
# Single test thread so the digest log's line order is stable; the
# digests cover both the bitstream bytes and the decoded YUV planes.
ANNOLIGHT_CHECK_SEED=0xC0DE ANNOLIGHT_CODEC_LOG="$CODEC_LOG_A" \
  cargo test -q --release --offline -p annolight-codec --test fastpath_identity -- --test-threads=1
ANNOLIGHT_CHECK_SEED=0xC0DE ANNOLIGHT_CODEC_LOG="$CODEC_LOG_B" \
  cargo test -q --release --offline -p annolight-codec --test fastpath_identity -- --test-threads=1
test -s "$CODEC_LOG_A" || { echo "codec digest log was not written"; exit 1; }
cmp "$CODEC_LOG_A" "$CODEC_LOG_B" \
  || { echo "codec digest logs diverged between identical runs"; exit 1; }

echo "== workload SLO determinism guard (same seed twice, diff summary logs) =="
ANNOLIGHT_SLO_LOG="$SLO_LOG_A" \
  cargo test -q --release --offline --test workload_slo
ANNOLIGHT_SLO_LOG="$SLO_LOG_B" \
  cargo test -q --release --offline --test workload_slo
test -s "$SLO_LOG_A" || { echo "workload SLO summary log was not written"; exit 1; }
cmp "$SLO_LOG_A" "$SLO_LOG_B" \
  || { echo "workload SLO summaries diverged between identical runs"; exit 1; }

echo "== reactor determinism guard (same seed twice, diff schedule logs) =="
ANNOLIGHT_REACTOR_LOG="$REACTOR_LOG_A" \
  cargo test -q --release --offline --test reactor_determinism
ANNOLIGHT_REACTOR_LOG="$REACTOR_LOG_B" \
  cargo test -q --release --offline --test reactor_determinism
test -s "$REACTOR_LOG_A" || { echo "reactor schedule log was not written"; exit 1; }
cmp "$REACTOR_LOG_A" "$REACTOR_LOG_B" \
  || { echo "reactor schedule logs diverged between identical runs"; exit 1; }

echo "== governor budget-conformance guard (same seed twice, diff decision logs) =="
ANNOLIGHT_GOVERNOR_LOG="$GOVERNOR_LOG_A" \
  cargo test -q --release --offline --test governor_budget
ANNOLIGHT_GOVERNOR_LOG="$GOVERNOR_LOG_B" \
  cargo test -q --release --offline --test governor_budget
test -s "$GOVERNOR_LOG_A" || { echo "governor decision log was not written"; exit 1; }
cmp "$GOVERNOR_LOG_A" "$GOVERNOR_LOG_B" \
  || { echo "governor decision logs diverged between identical runs"; exit 1; }

echo "== policy conformance guard (same matrix twice, diff plan-digest logs) =="
ANNOLIGHT_POLICY_LOG="$POLICY_LOG_A" \
  cargo test -q --release --offline --test policy_conformance
ANNOLIGHT_POLICY_LOG="$POLICY_LOG_B" \
  cargo test -q --release --offline --test policy_conformance
test -s "$POLICY_LOG_A" || { echo "policy plan-digest log was not written"; exit 1; }
cmp "$POLICY_LOG_A" "$POLICY_LOG_B" \
  || { echo "policy plan digests diverged between identical runs"; exit 1; }

echo "== pipeline-identity conformance guard (SIMD tiers + batched scheduling, same seed twice, diff digest logs) =="
# Single test thread so the digest log's line order is stable; the
# digests cover every kernel tier, the batched proxy scheduler, and the
# randomized ragged-geometry properties.
ANNOLIGHT_CHECK_SEED=0x51BD ANNOLIGHT_PIPELINE_LOG="$PIPELINE_LOG_A" \
  cargo test -q --release --offline --test pipeline_identity -- --test-threads=1
ANNOLIGHT_CHECK_SEED=0x51BD ANNOLIGHT_PIPELINE_LOG="$PIPELINE_LOG_B" \
  cargo test -q --release --offline --test pipeline_identity -- --test-threads=1
test -s "$PIPELINE_LOG_A" || { echo "pipeline digest log was not written"; exit 1; }
cmp "$PIPELINE_LOG_A" "$PIPELINE_LOG_B" \
  || { echo "pipeline digest logs diverged between identical runs"; exit 1; }

echo "== allocation-regression guard (0 allocations/frame warm steady state) =="
cargo test -q --release --offline --test alloc_steady

echo "== policy tournament smoke (--test mode, 27 cells, double-run deterministic) =="
cargo run -q --release --offline -p annolight-bench --bin tab_policies -- --test

echo "== governor budget smoke (--test mode, within-budget, double-run deterministic) =="
cargo run -q --release --offline -p annolight-bench --bin ext_governor -- --test

echo "== reactor scale smoke (--test mode, >=100k sessions, double-run deterministic) =="
cargo run -q --release --offline -p annolight-bench --bin reactor_scale -- --test

echo "== fleet SLO smoke (--test mode, double-run deterministic) =="
cargo run -q --release --offline -p annolight-bench --bin serve_slo -- --test

echo "== pipeline throughput smoke (--test mode, >=2x best-SIMD-row floor vs scalar LUT) =="
cargo run -q --release --offline -p annolight-bench --bin pipeline_throughput -- --test

echo "== codec throughput smoke (--test mode, >=3x inline encode floor) =="
cargo run -q --release --offline -p annolight-bench --bin codec_throughput -- --test

echo "CI green."
