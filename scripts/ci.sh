#!/usr/bin/env bash
# Tier-1 CI gate: hermetic (offline, empty-registry) build + full test
# suite + bench compilation. Mirrors ROADMAP.md's verify step; run from
# anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build (offline) =="
cargo build --release --offline --workspace

echo "== tier-1: tests (offline) =="
cargo test -q --offline --workspace

echo "== benches compile (offline) =="
cargo bench --offline --workspace --no-run

echo "== serve soak (offline, fixed seed, 64 tenants) =="
cargo test -q -p annolight-serve --release --offline -- soak

echo "CI green."
